"""The pluggable browser backend interface.

The crawl layers never touch a concrete browser directly: they talk to
a :class:`BrowserSession`, and -- following browser-use's Selenium
backend -- a session is an *event-driven adapter*: it subscribes to the
command events of :mod:`repro.bus.events` (``NavigateToUrl``,
``QueryElements``, ``RunScript``, ``ScrollTo``) and executes them on
its backend.  The simulated backend
(:class:`SimulatedBrowserSession`, wrapping
:class:`~repro.browser.window.Window` +
:class:`~repro.webdriver.driver.WebDriver`) is one implementation; a
real-Selenium adapter can implement the same surface without the crawl
or analysis code changing.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

from repro.browser.navigator import NavigatorProfile
from repro.browser.window import Window
from repro.bus.events import NavigateToUrl, QueryElements, RunScript, ScrollTo
from repro.obs.tracer import NULL_TRACER
from repro.webdriver.driver import WebDriver


class BrowserSession(ABC):
    """One controllable browser, addressable over the event bus.

    ``index`` identifies the session on a shared bus: command events
    carry a ``browser`` field and every session executes only its own
    commands (OpenWPM's browser-slot semantics).
    """

    #: Human-readable backend tag ("simulated", "selenium", ...).
    backend: str = "abstract"

    def __init__(self, index: int) -> None:
        self.index = index
        self._subscriptions: List = []

    # -- backend surface -------------------------------------------------

    @abstractmethod
    def spawn(self) -> None:
        """(Re)create the underlying browser from scratch."""

    @abstractmethod
    def navigate(self, url: str) -> None:
        """Load ``url`` in the session's browser."""

    @abstractmethod
    def query(self, by: str, value: str):
        """Find elements in the current document."""

    @abstractmethod
    def run_script(self, script: str):
        """Execute a script in the page context."""

    @abstractmethod
    def scroll_to(self, x: float, y: float) -> None:
        """Programmatic scroll through the backend's input layer."""

    def close(self) -> None:
        """Release backend resources (nothing to do for simulation)."""

    # -- event-driven adapter --------------------------------------------

    def attach(self, bus) -> None:
        """Subscribe this session's command handlers to ``bus``.

        Handlers are registered in a fixed order, so a bus with several
        sessions attached dispatches deterministically.
        """
        tag = f"session[{self.index}]"
        self._subscriptions = [
            bus.subscribe(NavigateToUrl, self.on_navigate, name=f"{tag}.navigate"),
            bus.subscribe(QueryElements, self.on_query, name=f"{tag}.query"),
            bus.subscribe(RunScript, self.on_run_script, name=f"{tag}.run_script"),
            bus.subscribe(ScrollTo, self.on_scroll_to, name=f"{tag}.scroll_to"),
        ]

    def detach(self, bus) -> None:
        """Remove this session's handlers from ``bus``."""
        for subscription in self._subscriptions:
            bus.unsubscribe(subscription)
        self._subscriptions = []

    def on_navigate(self, event: NavigateToUrl) -> None:
        if event.browser != self.index:
            return
        self.navigate(event.url)
        event.handled = True

    def on_query(self, event: QueryElements) -> None:
        if event.browser != self.index:
            return
        event.result = self.query(event.by, event.value)
        event.handled = True

    def on_run_script(self, event: RunScript) -> None:
        if event.browser != self.index:
            return
        event.result = self.run_script(event.script)
        event.handled = True

    def on_scroll_to(self, event: ScrollTo) -> None:
        if event.browser != self.index:
            return
        self.scroll_to(event.x, event.y)
        event.handled = True


class SimulatedBrowserSession(BrowserSession):
    """The simulated backend: a Window/WebDriver pair plus extension.

    Spawning re-runs the full sequence a real browser restart performs:
    fresh window, fresh driver (with the supervisor's tracer re-wired),
    probe ledger re-attached, extension re-injected.
    """

    backend = "simulated"

    def __init__(
        self, index: int, extension=None, tracer=None, ledger=None
    ) -> None:
        super().__init__(index)
        self.extension = extension
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.ledger = ledger
        self.window: Optional[Window] = None
        self.driver: Optional[WebDriver] = None
        self.spawn()

    def spawn(self) -> None:
        self.window = Window(profile=NavigatorProfile(webdriver=True))
        # Only *attach* the ledger here -- instrumentation happens lazily
        # at probe time (see ``fingerprint._window_ledger``), so spawning,
        # recycling and resume-respawning record no entries and the ledger
        # stays byte-identical across interrupt/resume.
        self.window.probe_ledger = self.ledger
        self.driver = WebDriver(self.window, tracer=self.tracer)
        if self.extension is not None:
            self.extension.inject(self.window)

    def navigate(self, url: str) -> None:
        self.driver.get(url)

    def query(self, by: str, value: str):
        return self.driver.find_elements(by, value)

    def run_script(self, script: str):
        return self.driver.execute_script(script)

    def scroll_to(self, x: float, y: float) -> None:
        self.driver.pipeline.scroll_programmatic(x, y)
