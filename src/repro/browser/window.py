"""The browser window: viewport, scroll position, navigator slot."""

from __future__ import annotations

from typing import Any, Optional

from repro.clock import VirtualClock
from repro.dom.document import Document
from repro.events.dispatch import EventTarget
from repro.events.event import Event
from repro.browser.navigator import NavigatorProfile, make_navigator
from repro.geometry import Point


class Window(EventTarget):
    """A browser window/tab.

    Parameters
    ----------
    document:
        The page's document (a default empty one is created if omitted).
    profile:
        Navigator profile; pass ``NavigatorProfile(webdriver=True)`` (or
        ``profile.automated()``) for a WebDriver-controlled browser.
    viewport_width / viewport_height:
        Inner window size; clicks outside it require scrolling first.
    """

    def __init__(
        self,
        document: Optional[Document] = None,
        *,
        profile: Optional[NavigatorProfile] = None,
        viewport_width: float = 1366.0,
        viewport_height: float = 768.0,
        clock: Optional[VirtualClock] = None,
        smooth_scroll: bool = False,
    ) -> None:
        super().__init__()
        #: Firefox's smooth-scrolling setting: wheel scrolls animate over
        #: several frames instead of jumping a full tick (the refinement
        #: the paper's future work calls out).
        self.smooth_scroll = smooth_scroll
        self.document = document or Document(viewport_width, viewport_height)
        self.document.window = self
        #: The navigator slot.  Spoofing replaces this with a wrapped or
        #: patched object; page scripts read ``window.navigator``.
        self.navigator: Any = make_navigator(profile)
        #: Opt-in :class:`repro.obs.probes.ProbeLedger`.  When set (via
        #: :func:`repro.obs.probes.instrument_window` or a supervisor),
        #: detection probes record every navigator access they make --
        #: and survive spoofing swapping the navigator object out.
        self.probe_ledger: Any = None
        self.viewport_width = viewport_width
        self.viewport_height = viewport_height
        self.scroll_x = 0.0
        self.scroll_y = 0.0
        self.clock = clock or VirtualClock()
        self.has_focus = True

    # -- coordinates ---------------------------------------------------------

    def client_to_page(self, point: Point) -> Point:
        """Viewport coordinates -> page coordinates."""
        return Point(point.x + self.scroll_x, point.y + self.scroll_y)

    def page_to_client(self, point: Point) -> Point:
        """Page coordinates -> viewport coordinates."""
        return Point(point.x - self.scroll_x, point.y - self.scroll_y)

    def is_in_viewport(self, page_point: Point) -> bool:
        """Whether a page point is currently visible."""
        client = self.page_to_client(page_point)
        return (
            0 <= client.x <= self.viewport_width
            and 0 <= client.y <= self.viewport_height
        )

    @property
    def max_scroll_y(self) -> float:
        """Lowest reachable scroll offset."""
        return max(0.0, self.document.scroll_height - self.viewport_height)

    @property
    def max_scroll_x(self) -> float:
        return max(0.0, self.document.width - self.viewport_width)

    # -- scrolling --------------------------------------------------------------

    def scroll_by(self, dx: float, dy: float) -> bool:
        """Scroll the viewport, clamped to the page; fires ``scroll``.

        Returns whether the scroll position actually changed.  No ``wheel``
        event is fired here -- that is the input pipeline's job; the
        asymmetry is exactly what makes Selenium's wheel-less scrolling
        recognisable (Section 4.1).
        """
        new_x = min(max(self.scroll_x + dx, 0.0), self.max_scroll_x)
        new_y = min(max(self.scroll_y + dy, 0.0), self.max_scroll_y)
        if new_x == self.scroll_x and new_y == self.scroll_y:
            return False
        self.scroll_x, self.scroll_y = new_x, new_y
        self.document.dispatch_event(
            Event(
                "scroll",
                timestamp=self.clock.event_timestamp(),
                target=self.document,
                page_x=self.scroll_x,
                page_y=self.scroll_y,
            )
        )
        return True

    def scroll_to(self, x: float, y: float) -> bool:
        """Scroll to an absolute page offset (clamped)."""
        return self.scroll_by(x - self.scroll_x, y - self.scroll_y)

    #: Animation parameters for smooth scrolling (Firefox-like).
    SMOOTH_SCROLL_DURATION_MS = 150.0
    SMOOTH_SCROLL_FRAMES = 6

    def smooth_scroll_by(self, dx: float, dy: float) -> bool:
        """Animate a scroll over several frames (smooth scrolling).

        Fires one ``scroll`` event per frame with an ease-out profile, as
        Firefox does when ``general.smoothScroll`` is enabled.  Returns
        whether the position changed at all.
        """
        frames = self.SMOOTH_SCROLL_FRAMES
        frame_ms = self.SMOOTH_SCROLL_DURATION_MS / frames
        target_x = min(max(self.scroll_x + dx, 0.0), self.max_scroll_x)
        target_y = min(max(self.scroll_y + dy, 0.0), self.max_scroll_y)
        if target_x == self.scroll_x and target_y == self.scroll_y:
            return False
        start_x, start_y = self.scroll_x, self.scroll_y
        moved = False
        for frame in range(1, frames + 1):
            tau = frame / frames
            ease = 1.0 - (1.0 - tau) ** 2  # ease-out
            self.clock.advance(frame_ms)
            moved |= self.scroll_to(
                start_x + (target_x - start_x) * ease,
                start_y + (target_y - start_y) * ease,
            )
        return moved

    # -- visibility ----------------------------------------------------------------

    def set_visibility(self, state: str) -> None:
        """Change page visibility ("visible"/"hidden"); fires events.

        Appendix D: minimising a headful browser fires visibilitychange,
        after which no further interaction should occur -- a trap for
        naive automation.
        """
        if state not in ("visible", "hidden"):
            raise ValueError(f"unknown visibility state {state!r}")
        if state == self.document.visibility_state:
            return
        self.document.visibility_state = state
        self.document.dispatch_event(
            Event(
                "visibilitychange",
                timestamp=self.clock.event_timestamp(),
                target=self.document,
                extra={"visibility_state": state},
            )
        )
        self.has_focus = state == "visible"
        self.dispatch_event(
            Event(
                "focus" if self.has_focus else "blur",
                timestamp=self.clock.event_timestamp(),
                target=self,
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Window {self.viewport_width:.0f}x{self.viewport_height:.0f} "
            f"scroll=({self.scroll_x:.0f},{self.scroll_y:.0f})>"
        )
