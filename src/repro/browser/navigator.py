"""The ``navigator`` object, built on the JavaScript object model.

Structure mirrors Firefox:

- ``Object.prototype`` holds the universal methods (``toString``,
  ``hasOwnProperty``, ...) as named :class:`NativeFunction`\\ s -- the
  ``toString`` name is what the Listing 1 probe inspects.
- ``Navigator.prototype`` holds every navigator attribute as an
  **enumerable accessor property with a WebIDL brand check**, in Firefox's
  canonical order.  Reading ``Navigator.prototype.webdriver`` directly
  (i.e. with the prototype as ``this``) raises a ``TypeError``, exactly the
  behaviour spoofing method 3 cannot preserve.
- The ``navigator`` *instance* has **no own properties**; everything is
  inherited.  ``Object.keys(navigator)`` is empty and ``for-in`` yields the
  prototype's canonical order -- any own shadow property created by a
  spoofing attempt perturbs one of these observables.

``navigator.webdriver`` reflects whether the browser is WebDriver-
controlled (W3C WebDriver spec), which the paper identifies as the
single most load-bearing bot signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.jsobject import (
    JSObject,
    NativeAccessor,
    NativeFunction,
    PropertyDescriptor,
)


@dataclass
class NavigatorProfile:
    """The values a navigator reports; defaults model Firefox 88 on Linux."""

    user_agent: str = (
        "Mozilla/5.0 (X11; Linux x86_64; rv:88.0) Gecko/20100101 Firefox/88.0"
    )
    app_version: str = "5.0 (X11)"
    platform: str = "Linux x86_64"
    oscpu: str = "Linux x86_64"
    vendor: str = ""
    vendor_sub: str = ""
    product: str = "Gecko"
    product_sub: str = "20100101"
    app_code_name: str = "Mozilla"
    app_name: str = "Netscape"
    language: str = "en-US"
    languages: Tuple[str, ...] = ("en-US", "en")
    hardware_concurrency: int = 8
    max_touch_points: int = 0
    cookie_enabled: bool = True
    on_line: bool = True
    do_not_track: str = "unspecified"
    build_id: str = "20181001000000"
    pdf_viewer_enabled: bool = True
    #: True iff the browser is WebDriver-controlled (Selenium/OpenWPM).
    webdriver: bool = False

    def automated(self) -> "NavigatorProfile":
        """A copy of this profile as a WebDriver-controlled browser."""
        values = self.__dict__.copy()
        values["webdriver"] = True
        return NavigatorProfile(**values)


#: Navigator attributes in Firefox's canonical WebIDL declaration order.
#: (name, profile attribute) pairs; order is observable via for-in and is
#: one of the Table 1 side-effect probes.
NAVIGATOR_ATTRIBUTES: Tuple[Tuple[str, str], ...] = (
    ("vendorSub", "vendor_sub"),
    ("productSub", "product_sub"),
    ("vendor", "vendor"),
    ("maxTouchPoints", "max_touch_points"),
    ("hardwareConcurrency", "hardware_concurrency"),
    ("cookieEnabled", "cookie_enabled"),
    ("appCodeName", "app_code_name"),
    ("appName", "app_name"),
    ("appVersion", "app_version"),
    ("platform", "platform"),
    ("userAgent", "user_agent"),
    ("product", "product"),
    ("language", "language"),
    ("languages", "languages"),
    ("onLine", "on_line"),
    ("webdriver", "webdriver"),
    ("oscpu", "oscpu"),
    ("doNotTrack", "do_not_track"),
    ("buildID", "build_id"),
    ("pdfViewerEnabled", "pdf_viewer_enabled"),
)

#: Navigator methods (WebIDL operations), declared after the attributes.
NAVIGATOR_METHODS: Tuple[str, ...] = (
    "javaEnabled",
    "taintEnabled",
    "vibrate",
    "sendBeacon",
    "registerProtocolHandler",
)


def make_object_prototype() -> JSObject:
    """Build a fresh ``Object.prototype`` with named native methods.

    Methods are non-enumerable (as in real engines), so they do not show
    up in ``for-in``/``Object.keys`` but *are* reachable -- the
    ``toString``-name probe of Listing 1 depends on them.
    """
    proto = JSObject(proto=None, js_class="Object")

    def _to_string(this) -> str:
        js_class = getattr(this, "js_class", "Object")
        return f"[object {js_class}]"

    def _has_own_property(this, name: str) -> bool:
        return bool(getattr(this, "has_own")(name))

    def _property_is_enumerable(this, name: str) -> bool:
        desc = this.get_own_property(name)
        return bool(desc is not None and desc.enumerable)

    def _value_of(this):
        return this

    methods = {
        "toString": _to_string,
        "hasOwnProperty": _has_own_property,
        "propertyIsEnumerable": _property_is_enumerable,
        "valueOf": _value_of,
    }
    for name, fn in methods.items():
        proto.define_property(
            name,
            PropertyDescriptor.data(
                NativeFunction(fn, name=name),
                writable=True,
                enumerable=False,
                configurable=True,
            ),
        )
    return proto


def make_navigator_prototype(object_prototype: JSObject) -> JSObject:
    """Build ``Navigator.prototype`` with brand-checked accessors.

    Each attribute getter reads the *instance's* internal slots; invoking
    it with any ``this`` that is not a genuine Navigator raises
    ``JSTypeError`` (Firefox: "called on an object that does not implement
    interface Navigator").
    """
    proto = JSObject(proto=object_prototype, js_class="NavigatorPrototype")
    for name, slot in NAVIGATOR_ATTRIBUTES:
        accessor = NativeAccessor(
            name,
            getter=_slot_getter(slot),
            brand="Navigator",
        )
        proto.define_property(
            name,
            PropertyDescriptor.accessor(
                get=accessor, enumerable=True, configurable=True
            ),
        )
    for name in NAVIGATOR_METHODS:
        proto.define_property(
            name,
            PropertyDescriptor.data(
                NativeFunction(_method_stub(name), name=name, brand="Navigator"),
                writable=True,
                enumerable=True,
                configurable=True,
            ),
        )
    return proto


def _slot_getter(slot: str):
    def _get(this):
        return this.slots[slot]

    return _get


def _method_stub(name: str):
    def _call(this, *args):
        if name == "javaEnabled":
            return False
        if name == "taintEnabled":
            return False
        if name == "vibrate":
            return False
        if name == "sendBeacon":
            return True
        return None

    return _call


class Navigator(JSObject):
    """A Navigator platform object: brand + internal slots, no own props."""

    def __init__(self, proto: JSObject, profile: NavigatorProfile) -> None:
        super().__init__(proto=proto, js_class="Navigator")
        #: WebIDL internal slots the prototype's getters read.
        self.slots = {
            slot: getattr(profile, slot) for _, slot in NAVIGATOR_ATTRIBUTES
        }
        self.profile = profile


def make_navigator(
    profile: NavigatorProfile = None, ledger=None, label: str = "navigator"
) -> Navigator:
    """Build a complete navigator (fresh prototype chain each call).

    A fresh chain per browser instance keeps spoofing experiments
    independent: patching one browser's ``Navigator.prototype`` must not
    leak into another's.

    ``ledger`` (a :class:`repro.obs.probes.ProbeLedger`) instruments the
    fresh chain before it is returned: the navigator, its prototypes and
    every method/accessor record their fundamental operations under
    ``label``.  Attachment itself records nothing.
    """
    profile = profile or NavigatorProfile()
    object_proto = make_object_prototype()
    navigator_proto = make_navigator_prototype(object_proto)
    navigator = Navigator(navigator_proto, profile)
    if ledger is not None:
        from repro.obs.probes import instrument

        instrument(navigator, ledger, label)
    return navigator
