"""OS-level input -> DOM events, with Firefox's quirks.

Every agent in the reproduction -- Selenium, HLISA, the naive baselines,
the generative human and the Appendix G tools -- ultimately produces input
through this pipeline, so detectors observe all of them through the *same*
channel, exactly as a website observes all visitors through the same event
API.

Quirks reproduced from the paper's Appendix D:

- **Wheel ticks**: one wheel `click` scrolls :data:`WHEEL_TICK_PX` = 57 px
  ("the amount scrolled by a scroll-wheel 'click' is fixed (57 pixels in
  our setup)").
- **Double-click interval**: Firefox asks its environment for the maximal
  interval between two clicks of a double click -- 500 ms by default on
  desktop, but 600 ms was observed under Selenium.  The pipeline takes the
  interval as a constructor parameter so a WebDriver-controlled browser
  can exhibit the Selenium value.
- **Mousemove coalescing**: mousemove granularity varies and does not
  correlate with speed; the pipeline rate-limits mousemove dispatch.
- **Keyboard timestamps** are quantised to 1 ms by the clock.
- **Programmatic scrolling** (``window.scrollTo``) fires ``scroll``
  without any ``wheel`` event and with arbitrary distance -- Selenium's
  recognisable scrolling style.
"""

from __future__ import annotations

from typing import Optional

from repro.browser.window import Window
from repro.dom.element import Element
from repro.events.event import Event
from repro.geometry import Point

#: Pixels scrolled per mouse-wheel click (paper, Section 4.1/Appendix D).
WHEEL_TICK_PX = 57.0

#: Default maximal interval between two clicks of a double click (ms).
DEFAULT_DOUBLE_CLICK_INTERVAL_MS = 500.0

#: The interval observed when Firefox runs under Selenium (Appendix D).
SELENIUM_DOUBLE_CLICK_INTERVAL_MS = 600.0

#: Minimal time between two dispatched mousemove events (coalescing).
MOUSEMOVE_MIN_INTERVAL_MS = 5.0

#: Mouse buttons, as in ``MouseEvent.button``.
LEFT_BUTTON, MIDDLE_BUTTON, RIGHT_BUTTON = 0, 1, 2

_BUTTON_MASKS = {LEFT_BUTTON: 1, RIGHT_BUTTON: 2, MIDDLE_BUTTON: 4}

#: Modifier key names -> Event attribute.
_MODIFIERS = {
    "Shift": "shift_key",
    "Control": "ctrl_key",
    "Alt": "alt_key",
    # AltGr (ISO layouts) reports as the AltGraph key; browsers surface
    # it through the alt modifier flag.
    "AltGraph": "alt_key",
    "Meta": "meta_key",
}


def key_code_for(key: str) -> str:
    """Physical ``code`` value for a logical key (US layout)."""
    if len(key) == 1:
        if key.isalpha():
            return f"Key{key.upper()}"
        if key.isdigit():
            return f"Digit{key}"
        specials = {
            " ": "Space",
            ".": "Period",
            ",": "Comma",
            ";": "Semicolon",
            "'": "Quote",
            "/": "Slash",
            "\\": "Backslash",
            "-": "Minus",
            "=": "Equal",
        }
        return specials.get(key, "Unidentified")
    if key == "AltGraph":
        return "AltRight"
    if key in ("Shift", "Control", "Alt", "Meta"):
        return f"{key}Left"
    return key  # Enter, Tab, Backspace, ...


class InputPipeline:
    """Synthesises trusted DOM events from OS-level input primitives."""

    def __init__(
        self,
        window: Window,
        *,
        double_click_interval_ms: float = DEFAULT_DOUBLE_CLICK_INTERVAL_MS,
        mousemove_min_interval_ms: float = MOUSEMOVE_MIN_INTERVAL_MS,
    ) -> None:
        self.window = window
        self.double_click_interval_ms = double_click_interval_ms
        self.mousemove_min_interval_ms = mousemove_min_interval_ms
        #: Running count of synthesised events (always on; one int add).
        #: The observability layer reads deltas around action batches.
        self.events_dispatched = 0
        #: Optional :class:`repro.obs.MetricsRegistry`; when set, every
        #: synthesised event increments an ``events.<type>`` counter.
        #: Wired by ``WebDriver.tracer``; ``None`` costs nothing.
        self.metrics = None
        #: Current pointer position in *client* (viewport) coordinates.
        #: Starts at (0, 0) -- the tell-tale the paper's Appendix F notes.
        self.pointer = Point(0.0, 0.0)
        self._buttons_mask = 0
        self._pressed_keys: set = set()
        self._modifiers = {attr: False for attr in _MODIFIERS.values()}
        self._hovered: Optional[Element] = None
        self._down_targets: dict = {}
        self._last_click: dict = {}
        self._last_mousemove_ts: Optional[float] = None
        #: HTML5 drag state: the draggable element being dragged (if any),
        #: where the press happened, and the current drop target.
        self._drag_source: Optional[Element] = None
        self._drag_armed_at: Optional[Point] = None
        self._drag_over: Optional[Element] = None

    # -- event construction -----------------------------------------------------

    def _base_event(self, event_type: str, target, **kwargs) -> Event:
        self.events_dispatched += 1
        if self.metrics is not None:
            self.metrics.counter("events." + event_type).inc()
        page = self.window.client_to_page(self.pointer)
        fields = dict(
            timestamp=self.window.clock.event_timestamp(),
            target=target,
            target_box=getattr(target, "box", None),
            client_x=float(round(self.pointer.x)),
            client_y=float(round(self.pointer.y)),
            page_x=float(round(page.x)),
            page_y=float(round(page.y)),
            buttons=self._buttons_mask,
            shift_key=self._modifiers["shift_key"],
            ctrl_key=self._modifiers["ctrl_key"],
            alt_key=self._modifiers["alt_key"],
            meta_key=self._modifiers["meta_key"],
        )
        fields.update(kwargs)
        return Event(event_type, **fields)

    def _element_under_pointer(self) -> Element:
        page = self.window.client_to_page(self.pointer)
        return self.window.document.element_at(page)

    # -- mouse movement -----------------------------------------------------------

    def move_mouse_to(self, x: float, y: float, force_event: bool = False) -> Optional[Event]:
        """Move the OS cursor to client coordinates ``(x, y)``.

        Dispatches at most one ``mousemove`` (rate-limited), plus the
        mouseover/out/enter/leave transitions when the hovered element
        changes.  Returns the dispatched mousemove, or ``None`` if it was
        coalesced away.
        """
        self.pointer = Point(float(x), float(y))
        previous = self._hovered
        current = self._element_under_pointer()
        if previous is not current:
            if previous is not None:
                previous.dispatch_event(self._base_event("mouseout", previous))
                previous.dispatch_event(self._base_event("mouseleave", previous))
            current.dispatch_event(self._base_event("mouseover", current))
            current.dispatch_event(self._base_event("mouseenter", current))
            self._hovered = current
        self._progress_drag(current)
        now = self.window.clock.now()
        if (
            not force_event
            and self._last_mousemove_ts is not None
            and now - self._last_mousemove_ts < self.mousemove_min_interval_ms
        ):
            return None
        self._last_mousemove_ts = now
        # Firefox fires the pointer event first, then its mouse twin
        # (Appendix C lists both families; their pairing is itself a
        # consistency signal -- scripts that synthesise only mouse events
        # miss the pointer twins).
        current.dispatch_event(self._base_event("pointermove", current))
        event = self._base_event("mousemove", current)
        current.dispatch_event(event)
        return event

    def dispatch_batch(
        self,
        moves,
        *,
        force_last: bool = False,
        repeat_final_forced: bool = False,
    ) -> int:
        """Advance the clock and move the pointer along ``moves`` in one pass.

        ``moves`` is an iterable of ``(advance_ms, point)`` pairs: the clock
        advance *before* the cursor reaches ``point``.  The event stream is
        byte-identical to the equivalent per-point loop of
        ``clock.advance(advance_ms)`` + :meth:`move_mouse_to` -- the batch
        exists so trajectory walks pay the hover hit-test and coalescing
        check once per sample without the per-call attribute traffic.

        ``force_last`` forces the final sample's mousemove through the rate
        limiter (the WebDriver pointer-move contract).  ``repeat_final_forced``
        instead re-dispatches the final point as one extra forced
        :meth:`move_mouse_to` after the walk -- the agents' historical
        trailing call, kept so their event streams stay unchanged.

        Returns the number of mousemove events dispatched.
        """
        moves = list(moves)
        if not moves:
            return 0
        window = self.window
        clock = window.clock
        advance = clock.advance
        now_fn = clock.now
        client_to_page = window.client_to_page
        element_at = window.document.element_at
        min_interval = self.mousemove_min_interval_ms
        dispatched = 0
        last_index = len(moves) - 1
        for index, (advance_ms, point) in enumerate(moves):
            advance(advance_ms)
            self.pointer = Point(float(point.x), float(point.y))
            previous = self._hovered
            current = element_at(client_to_page(self.pointer))
            if previous is not current:
                if previous is not None:
                    previous.dispatch_event(self._base_event("mouseout", previous))
                    previous.dispatch_event(self._base_event("mouseleave", previous))
                current.dispatch_event(self._base_event("mouseover", current))
                current.dispatch_event(self._base_event("mouseenter", current))
                self._hovered = current
            if self._drag_source is not None or self._drag_armed_at is not None:
                # _progress_drag is a no-op unless a drag is armed or
                # active; skipping the call in the common case keeps the
                # hot loop to the hit test plus the coalescing check.
                self._progress_drag(current)
            now = now_fn()
            if (
                not (force_last and index == last_index)
                and self._last_mousemove_ts is not None
                and now - self._last_mousemove_ts < min_interval
            ):
                continue
            self._last_mousemove_ts = now
            current.dispatch_event(self._base_event("pointermove", current))
            current.dispatch_event(self._base_event("mousemove", current))
            dispatched += 1
        if repeat_final_forced:
            final = moves[-1][1]
            if self.move_mouse_to(final.x, final.y, force_event=True) is not None:
                dispatched += 1
        return dispatched

    # -- buttons --------------------------------------------------------------------

    def mouse_down(self, button: int = LEFT_BUTTON) -> Event:
        """Press a mouse button over the current pointer position."""
        target = self._element_under_pointer()
        self._buttons_mask |= _BUTTON_MASKS.get(button, 0)
        self._down_targets[button] = target
        target.dispatch_event(self._base_event("pointerdown", target, button=button))
        event = self._base_event("mousedown", target, button=button)
        target.dispatch_event(event)
        if button == LEFT_BUTTON:
            self._update_focus_for_mousedown(target)
            if target.draggable:
                self._drag_armed_at = self.pointer
        return event

    def mouse_up(self, button: int = LEFT_BUTTON) -> Event:
        """Release a mouse button; synthesises click/dblclick/contextmenu."""
        target = self._element_under_pointer()
        self._buttons_mask &= ~_BUTTON_MASKS.get(button, 0)
        down_target = self._down_targets.pop(button, None)
        target.dispatch_event(self._base_event("pointerup", target, button=button))
        event = self._base_event("mouseup", target, button=button)
        target.dispatch_event(event)
        if button == LEFT_BUTTON and self._drag_source is not None:
            # A completed drag suppresses the click, as in real browsers.
            self._finish_drag(target)
            return event
        if button == LEFT_BUTTON:
            self._drag_armed_at = None
        if down_target is target:
            if button == LEFT_BUTTON:
                self._synthesise_click(target)
            elif button == RIGHT_BUTTON:
                target.dispatch_event(
                    self._base_event("contextmenu", target, button=button)
                )
                target.dispatch_event(
                    self._base_event("auxclick", target, button=button, detail=1)
                )
            else:
                target.dispatch_event(
                    self._base_event("auxclick", target, button=button, detail=1)
                )
        return event

    #: Maximal cursor travel between two clicks of a double click (px);
    #: desktop environments cancel the double click beyond a few pixels.
    DOUBLE_CLICK_SLOP_PX = 8.0

    #: Cursor travel that turns a press on a draggable into a drag (px).
    DRAG_START_THRESHOLD_PX = 5.0

    def _progress_drag(self, hovered: Element) -> None:
        """Advance the HTML5 drag state machine on cursor movement.

        Appendix C's drag family: ``dragstart`` once the press on a
        draggable element travels a few pixels, ``drag`` on the source
        and ``dragover`` on the potential drop target while moving, with
        ``dragenter``/``dragleave`` on target changes.
        """
        down_target = self._down_targets.get(LEFT_BUTTON)
        if self._drag_source is None:
            if (
                self._drag_armed_at is not None
                and down_target is not None
                and down_target.draggable
                and self._drag_armed_at.distance_to(self.pointer)
                >= self.DRAG_START_THRESHOLD_PX
            ):
                self._drag_source = down_target
                down_target.dispatch_event(
                    self._base_event("dragstart", down_target)
                )
            else:
                return
        source = self._drag_source
        source.dispatch_event(self._base_event("drag", source))
        if hovered is not self._drag_over:
            if self._drag_over is not None:
                self._drag_over.dispatch_event(
                    self._base_event("dragleave", self._drag_over)
                )
            hovered.dispatch_event(self._base_event("dragenter", hovered))
            self._drag_over = hovered
        hovered.dispatch_event(self._base_event("dragover", hovered))

    def _finish_drag(self, drop_target: Element) -> None:
        """Fire ``drop`` on the target and ``dragend`` on the source."""
        source = self._drag_source
        drop_target.dispatch_event(self._base_event("drop", drop_target))
        source.dispatch_event(self._base_event("dragend", source))
        self._drag_source = None
        self._drag_armed_at = None
        self._drag_over = None

    def _synthesise_click(self, target: Element) -> None:
        now = self.window.clock.now()
        last = self._last_click.get(LEFT_BUTTON)
        if (
            last is not None
            and last["target"] is target
            and now - last["time"] <= self.double_click_interval_ms
            and last["position"].distance_to(self.pointer) <= self.DOUBLE_CLICK_SLOP_PX
        ):
            count = last["count"] + 1
        else:
            count = 1
        self._last_click[LEFT_BUTTON] = {
            "time": now,
            "target": target,
            "count": count,
            "position": self.pointer,
        }
        target.dispatch_event(
            self._base_event("click", target, button=LEFT_BUTTON, detail=count)
        )
        if count >= 2 and count % 2 == 0:
            target.dispatch_event(
                self._base_event("dblclick", target, button=LEFT_BUTTON, detail=count)
            )

    def _update_focus_for_mousedown(self, target: Element) -> None:
        document = self.window.document
        new_focus = target if target.focusable else None
        for event_type, element in document.set_focus(new_focus):
            element.dispatch_event(self._base_event(event_type, element))

    # -- wheel / scrolling ------------------------------------------------------------

    def wheel(self, delta_y: float = WHEEL_TICK_PX, delta_x: float = 0.0) -> Event:
        """Turn the mouse wheel: ``wheel`` event, then viewport scroll.

        Human wheel scrolling arrives in +/-57 px ticks; callers may pass
        other deltas to model free-spinning wheels or trackpads.
        """
        target = self._element_under_pointer()
        event = self._base_event("wheel", target, delta_y=delta_y, delta_x=delta_x)
        target.dispatch_event(event)
        if self.window.smooth_scroll:
            self.window.smooth_scroll_by(delta_x, delta_y)
        else:
            self.window.scroll_by(delta_x, delta_y)
        return event

    def scroll_programmatic(self, x: float, y: float) -> bool:
        """``window.scrollTo(x, y)``: no wheel event, arbitrary distance.

        This is how Selenium scrolls -- the paper notes the missing wheel
        events and unbounded distances as its recognisable signature.
        """
        return self.window.scroll_to(x, y)

    # -- keyboard ----------------------------------------------------------------------

    #: Scroll distances for keyboard scrolling (Appendix D lists arrow
    #: keys and the space bar among the many scroll origins).
    ARROW_SCROLL_PX = 38.0
    PAGE_SCROLL_OVERLAP_PX = 60.0

    def key_down(self, key: str) -> Event:
        """Press a key; fires keydown (+keypress for printable keys).

        The event's logical ``key`` is taken verbatim: the pipeline does
        not force ``Shift`` for capitals.  Detectors can therefore see a
        capital letter arriving without any Shift press -- exactly how
        Selenium types (Section 4.1).

        When no text field has focus, navigation keys scroll the page --
        one of the wheel-less scroll origins that make scroll-based bot
        detection inconclusive (Appendix D).
        """
        target = self.window.document.active_element or self.window.document.body
        if key in _MODIFIERS:
            self._modifiers[_MODIFIERS[key]] = True
        self._pressed_keys.add(key)
        event = self._base_event("keydown", target, key=key, code=key_code_for(key))
        target.dispatch_event(event)
        editing = target.tag in ("input", "textarea")
        if len(key) == 1:
            target.dispatch_event(
                self._base_event("keypress", target, key=key, code=key_code_for(key))
            )
            if editing:
                self._insert_text(target, key)
            elif key == " ":
                self._keyboard_scroll(" ")
        elif key == "Enter":
            self._insert_text(target, "\n")
        elif key == "Backspace":
            if target.value:
                target.value = target.value[:-1]
        elif not editing:
            self._keyboard_scroll(key)
        return event

    def _keyboard_scroll(self, key: str) -> None:
        """Scroll the window for navigation keys (no wheel events)."""
        window = self.window
        page = window.viewport_height - self.PAGE_SCROLL_OVERLAP_PX
        if key == "ArrowDown":
            window.scroll_by(0, self.ARROW_SCROLL_PX)
        elif key == "ArrowUp":
            window.scroll_by(0, -self.ARROW_SCROLL_PX)
        elif key in ("PageDown", " "):
            window.scroll_by(0, page)
        elif key == "PageUp":
            window.scroll_by(0, -page)
        elif key == "End":
            window.scroll_to(window.scroll_x, window.max_scroll_y)
        elif key == "Home":
            window.scroll_to(window.scroll_x, 0)

    def key_up(self, key: str) -> Event:
        """Release a key; fires keyup."""
        target = self.window.document.active_element or self.window.document.body
        if key in _MODIFIERS:
            self._modifiers[_MODIFIERS[key]] = False
        self._pressed_keys.discard(key)
        event = self._base_event("keyup", target, key=key, code=key_code_for(key))
        target.dispatch_event(event)
        return event

    def _insert_text(self, target: Element, text: str) -> None:
        if target.tag in ("input", "textarea"):
            target.value += text

    # -- touch --------------------------------------------------------------------

    def touch_start(self, x: float, y: float) -> Event:
        """Place a finger on the screen (touch devices).

        Appendix D notes touch movement is also reflected in ``mousemove``
        (compatibility events); HLISA cannot synthesise these at all
        (Appendix F), which is what
        :class:`repro.detection.crosscheck.TouchClaimDetector` exploits.
        """
        self.pointer = Point(float(x), float(y))
        target = self._element_under_pointer()
        event = self._base_event("touchstart", target)
        target.dispatch_event(event)
        return event

    def touch_end(self) -> Event:
        """Lift the finger."""
        target = self._element_under_pointer()
        event = self._base_event("touchend", target)
        target.dispatch_event(event)
        return event

    @property
    def pressed_keys(self) -> frozenset:
        """Keys currently held down (rollover shows up here)."""
        return frozenset(self._pressed_keys)

    @property
    def hovered_element(self) -> Optional[Element]:
        """The element currently under the pointer (None before any move)."""
        return self._hovered
