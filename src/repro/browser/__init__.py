"""The simulated browser: window, navigator and input pipeline.

This is the substrate both halves of the paper run on:

- :mod:`repro.browser.navigator` builds a Firefox-like ``navigator`` on the
  JS object model -- WebIDL accessors with brand checks live on
  ``Navigator.prototype``; ``navigator.webdriver`` is ``True`` for
  WebDriver-controlled instances (the W3C convention the paper calls
  "crucial" for bot identification).
- :class:`repro.browser.window.Window` owns the document, viewport, scroll
  position and the navigator slot (which spoofing replaces).
- :class:`repro.browser.input_pipeline.InputPipeline` converts OS-level
  input into DOM events with the quirks Appendix D measured: 57 px wheel
  ticks, environment-dependent double-click intervals (500 ms default,
  600 ms observed under Selenium), 1 ms keyboard timestamp granularity,
  mousemove coalescing, and focus/visibility semantics.
"""

from repro.browser.navigator import NavigatorProfile, make_navigator
from repro.browser.window import Window
from repro.browser.input_pipeline import InputPipeline

__all__ = ["NavigatorProfile", "make_navigator", "Window", "InputPipeline"]
