"""Reusable recovery primitives: backoff policy and circuit breaker.

Both are pure state machines over the *simulated* clock -- no wall time,
no global randomness -- so any crawl built on them stays deterministic
and replayable.  Later scaling work (sharded crawls, multi-backend
dispatch) is expected to reuse these unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional

import numpy as np


#: Jittered delays are snapped to this dyadic grid (2^-10 ms, ~1 us).
#: Every other advance of a supervisor's virtual clock is a config
#: constant with a short binary fraction, so quantising the one
#: rng-shaped delay makes *all* advances exactly representable, which
#: makes their float prefix sums associative (exact below ~2^43 ms).
#: The sharded executor relies on this: rebasing a shard's local
#: timeline by the preceding shards' total duration must reproduce the
#: serial timestamps bit for bit.
DELAY_GRID_MS = 2.0**-10


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with bounded deterministic jitter.

    ``delay_ms(attempt)`` grows as ``base * factor**attempt`` capped at
    ``max_delay_ms``; when an ``rng`` is supplied the delay is scattered
    by ``+-jitter`` (a fraction), drawn from that seeded generator so
    two runs with the same seed back off identically.  Jittered delays
    are quantised to :data:`DELAY_GRID_MS` so simulated timelines stay
    exactly summable (see the sharded-merge determinism contract in
    ``docs/SHARDING.md``).
    """

    base_delay_ms: float = 500.0
    factor: float = 2.0
    max_delay_ms: float = 30_000.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.base_delay_ms < 0 or self.max_delay_ms < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay_ms(
        self, attempt: int, rng: Optional[np.random.Generator] = None
    ) -> float:
        """Delay before retry number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        delay = min(self.base_delay_ms * self.factor**attempt, self.max_delay_ms)
        if rng is not None and self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
            delay = round(delay / DELAY_GRID_MS) * DELAY_GRID_MS
        return delay


class BreakerState(Enum):
    """Circuit-breaker states (standard closed/open/half-open machine)."""

    CLOSED = "closed"  # traffic flows, failures counted
    OPEN = "open"  # traffic short-circuited until cooldown passes
    HALF_OPEN = "half-open"  # one trial request allowed through


class CircuitBreaker:
    """Per-domain circuit breaker over a simulated timeline.

    After ``failure_threshold`` consecutive failures the breaker opens:
    requests are refused (the supervisor records them as skipped rather
    than hammering a dead or hostile host).  Once ``cooldown_ms`` of
    simulated time passes, one trial request is let through (half-open);
    its success closes the breaker, its failure re-opens it.

    ``listener`` (if given) is called as ``listener(old_state,
    new_state)`` on every state *transition* -- the observability layer
    turns these into trace events.  Repeated successes in CLOSED (or
    failures while already OPEN) fire nothing.
    """

    def __init__(
        self,
        failure_threshold: int = 4,
        cooldown_ms: float = 300_000.0,
        listener: Optional[
            Callable[["BreakerState", "BreakerState"], None]
        ] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_ms < 0:
            raise ValueError("cooldown_ms must be non-negative")
        self.failure_threshold = failure_threshold
        self.cooldown_ms = cooldown_ms
        self.listener = listener
        self._consecutive_failures = 0
        self._state = BreakerState.CLOSED
        self._opened_at_ms: Optional[float] = None

    @property
    def state(self) -> BreakerState:
        return self._state

    def _transition(self, new_state: BreakerState) -> None:
        if new_state is self._state:
            return
        old_state = self._state
        self._state = new_state
        if self.listener is not None:
            self.listener(old_state, new_state)

    def allow(self, now_ms: float) -> bool:
        """Whether a request may proceed at simulated time ``now_ms``."""
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.HALF_OPEN:
            # The single trial slot is taken by the first caller.
            return False
        assert self._opened_at_ms is not None
        if now_ms - self._opened_at_ms >= self.cooldown_ms:
            self._transition(BreakerState.HALF_OPEN)
            return True
        return False

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._opened_at_ms = None
        self._transition(BreakerState.CLOSED)

    def record_failure(self, now_ms: float) -> None:
        self._consecutive_failures += 1
        if (
            self._state is BreakerState.HALF_OPEN
            or self._consecutive_failures >= self.failure_threshold
        ):
            self._opened_at_ms = now_ms
            self._transition(BreakerState.OPEN)
