"""Fault taxonomy: the failure modes a real OpenWPM deployment meets.

Krumnow et al. (*Analysing and strengthening OpenWPM's reliability*)
catalogue the ways large crawls silently lose data: pages that never
finish loading, browser processes that crash or hang, stale element
handles after mid-interaction navigations, connection resets, and
out-of-memory restarts.  Each becomes a :class:`FaultType` here, raised
as a typed exception from a well-defined hook point so the supervisor
can tell crawler-side failure apart from genuine site reactions -- the
confound that would otherwise bias Table 2 / Fig. 4.

Every fault exception derives from both :class:`FaultError` (so the
supervisor catches the whole family) and the matching Selenium-style
error from :mod:`repro.webdriver.errors` (so code written against the
WebDriver API sees the exception type a real driver would raise).
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Type

from repro.webdriver.errors import (
    InvalidSessionIdException,
    StaleElementReferenceException,
    TimeoutException,
    WebDriverException,
)


class FaultType(Enum):
    """One injectable failure mode."""

    #: The page never fires ``load`` within the step budget.
    PAGE_LOAD_TIMEOUT = "page-load-timeout"
    #: The browser process dies mid-navigation.
    DRIVER_CRASH = "driver-crash"
    #: The driver stops answering commands (watchdog must fire).
    DRIVER_HANG = "driver-hang"
    #: An element handle outlives the document it came from.
    STALE_ELEMENT = "stale-element"
    #: The TCP connection to the site is reset.
    NETWORK_RESET = "network-reset"
    #: The OS kills the browser under memory pressure.
    OOM_RESTART = "oom-restart"

    @property
    def hook(self) -> str:
        """The hook point this fault is raised from."""
        return _HOOKS[self]

    @property
    def browser_fatal(self) -> bool:
        """Whether the browser instance is dead and must be recycled."""
        return self in (FaultType.DRIVER_CRASH, FaultType.OOM_RESTART)

    @property
    def exhausts_budget(self) -> bool:
        """Whether detection costs the full per-visit step budget (the
        failure is only observed when the watchdog fires)."""
        return self in (FaultType.PAGE_LOAD_TIMEOUT, FaultType.DRIVER_HANG)


#: Hook points: ``visit`` fires before the browser is touched (process
#: -level faults); the rest fire inside the named WebDriver method.
_HOOKS: Dict[FaultType, str] = {
    FaultType.PAGE_LOAD_TIMEOUT: "get",
    FaultType.DRIVER_CRASH: "get",
    FaultType.NETWORK_RESET: "get",
    FaultType.DRIVER_HANG: "execute_script",
    FaultType.STALE_ELEMENT: "find_element",
    FaultType.OOM_RESTART: "visit",
}


class FaultError(Exception):
    """Base class of every injected fault.

    Carries enough context (fault type, site, visit, attempt, hook) for
    the supervisor to log and classify the failure without parsing
    messages.
    """

    def __init__(
        self,
        fault_type: FaultType,
        domain: str,
        visit_index: int,
        attempt: int,
        hook: str,
    ) -> None:
        super().__init__(
            f"{fault_type.value} @ {hook} ({domain} visit {visit_index} "
            f"attempt {attempt})"
        )
        self.fault_type = fault_type
        self.domain = domain
        self.visit_index = visit_index
        self.attempt = attempt
        self.hook = hook


class PageLoadTimeoutFault(FaultError, TimeoutException):
    """The navigation never completed."""


class DriverCrashFault(FaultError, InvalidSessionIdException):
    """The browser process died; the session id is gone."""


class DriverHangFault(FaultError, TimeoutException):
    """The driver stopped responding; the watchdog killed the command."""


class StaleElementFault(FaultError, StaleElementReferenceException):
    """A held element reference no longer belongs to the document."""


class NetworkResetFault(FaultError, WebDriverException):
    """The connection was reset mid-transfer."""


class OOMRestartFault(FaultError, InvalidSessionIdException):
    """The OS reclaimed the browser's memory; the process was killed."""


FAULT_EXCEPTIONS: Dict[FaultType, Type[FaultError]] = {
    FaultType.PAGE_LOAD_TIMEOUT: PageLoadTimeoutFault,
    FaultType.DRIVER_CRASH: DriverCrashFault,
    FaultType.DRIVER_HANG: DriverHangFault,
    FaultType.STALE_ELEMENT: StaleElementFault,
    FaultType.NETWORK_RESET: NetworkResetFault,
    FaultType.OOM_RESTART: OOMRestartFault,
}


def make_fault(
    fault_type: FaultType, domain: str, visit_index: int, attempt: int
) -> FaultError:
    """Instantiate the typed exception for ``fault_type``."""
    return FAULT_EXCEPTIONS[fault_type](
        fault_type, domain, visit_index, attempt, fault_type.hook
    )
