"""Deterministic, seed-driven fault plans and the runtime injector.

A :class:`FaultPlan` decides *in advance* which (site, visit) pairs will
fault, with which fault type, and for how many consecutive attempts --
everything derives from one seed, so a faulty crawl is exactly
reproducible and a recovery test can be asserted byte-for-byte.

The :class:`FaultInjector` is the runtime half: the supervisor arms it
with the current (domain, visit, attempt) context before each attempt,
and the hook points in :class:`repro.webdriver.driver.WebDriver` and
:func:`repro.crawl.visit.simulate_visit` call :meth:`FaultInjector.
on_hook`, which raises the scheduled typed exception when the armed
context is due to fault at that hook.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.faults.types import FaultError, FaultType, make_fault

#: Sub-stream tag so the plan's draws never collide with visit rngs.
_PLAN_STREAM = 0xFA


@dataclass(frozen=True)
class ScheduledFault:
    """One planned fault on one (site, visit) pair.

    ``attempts_affected`` consecutive attempts (starting at attempt 0)
    raise the fault; later attempts succeed -- modelling a transient
    condition a retry rides out.
    """

    domain: str
    visit_index: int
    fault_type: FaultType
    attempts_affected: int = 1

    def due(self, attempt: int) -> bool:
        return attempt < self.attempts_affected


@dataclass
class FaultPlan:
    """A complete, deterministic fault schedule for one crawl."""

    seed: int
    rate: float
    schedule: Dict[Tuple[str, int], ScheduledFault] = field(default_factory=dict)

    @classmethod
    def generate(
        cls,
        population: Sequence,
        instances: int,
        *,
        rate: float,
        seed: int,
        fault_types: Sequence[FaultType] = tuple(FaultType),
        max_attempts_affected: int = 2,
    ) -> "FaultPlan":
        """Roll a fault (or not) for every (site, visit) pair.

        ``rate`` is the per-visit probability of scheduling a fault;
        fault types are drawn uniformly from ``fault_types``; each
        scheduled fault affects 1..``max_attempts_affected`` consecutive
        attempts.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate}")
        if max_attempts_affected < 1:
            raise ValueError("max_attempts_affected must be >= 1")
        rng = np.random.default_rng([seed, _PLAN_STREAM])
        types = list(fault_types)
        plan = cls(seed=seed, rate=rate)
        for site in population:
            for visit_index in range(instances):
                if rng.random() >= rate:
                    continue
                fault_type = types[int(rng.integers(len(types)))]
                affected = int(rng.integers(1, max_attempts_affected + 1))
                plan.schedule[(site.domain, visit_index)] = ScheduledFault(
                    site.domain, visit_index, fault_type, affected
                )
        return plan

    def fault_for(
        self, domain: str, visit_index: int, attempt: int
    ) -> Optional[ScheduledFault]:
        """The fault due on this attempt, if any."""
        scheduled = self.schedule.get((domain, visit_index))
        if scheduled is not None and scheduled.due(attempt):
            return scheduled
        return None

    def fault_counts(self) -> Dict[str, int]:
        """Scheduled faults per fault type (by taxonomy value)."""
        counts: Dict[str, int] = {}
        for scheduled in self.schedule.values():
            key = scheduled.fault_type.value
            counts[key] = counts.get(key, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.schedule)


@dataclass(frozen=True)
class FiredFault:
    """Audit-log entry: one fault actually raised at a hook point."""

    domain: str
    visit_index: int
    attempt: int
    fault_type: FaultType
    hook: str


class FaultInjector:
    """Runtime fault injection against a :class:`FaultPlan`.

    The supervisor calls :meth:`arm` before each visit attempt and
    :meth:`disarm` after; hook points call :meth:`on_hook`.  A disarmed
    injector is inert, so the same driver can serve both supervised and
    plain code paths.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._armed: Optional[Tuple[str, int, int]] = None
        #: Every fault actually raised, in firing order.
        self.fired: List[FiredFault] = []

    def arm(self, domain: str, visit_index: int, attempt: int) -> None:
        self._armed = (domain, visit_index, attempt)

    def disarm(self) -> None:
        self._armed = None

    @property
    def armed(self) -> bool:
        return self._armed is not None

    def on_hook(self, hook: str) -> None:
        """Raise the scheduled fault if the armed context is due here."""
        if self._armed is None:
            return
        domain, visit_index, attempt = self._armed
        scheduled = self.plan.fault_for(domain, visit_index, attempt)
        if scheduled is None or scheduled.fault_type.hook != hook:
            return
        self.fired.append(
            FiredFault(domain, visit_index, attempt, scheduled.fault_type, hook)
        )
        raise make_fault(scheduled.fault_type, domain, visit_index, attempt)
