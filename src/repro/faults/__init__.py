"""Deterministic fault injection for the crawl stack.

- :mod:`repro.faults.types` -- the fault taxonomy (six failure modes
  from the OpenWPM-reliability literature) and their typed exceptions.
- :mod:`repro.faults.plan` -- seed-driven fault plans and the runtime
  :class:`FaultInjector` consulted by the WebDriver / visit hook points.
- :mod:`repro.faults.recovery` -- the reusable retry/backoff and
  circuit-breaker primitives the :class:`repro.crawl.supervisor.
  CrawlSupervisor` (and future scaling layers) build on.
"""

from repro.faults.types import (
    FAULT_EXCEPTIONS,
    DriverCrashFault,
    DriverHangFault,
    FaultError,
    FaultType,
    NetworkResetFault,
    OOMRestartFault,
    PageLoadTimeoutFault,
    StaleElementFault,
    make_fault,
)
from repro.faults.plan import FaultInjector, FaultPlan, FiredFault, ScheduledFault
from repro.faults.recovery import (
    DELAY_GRID_MS,
    BackoffPolicy,
    BreakerState,
    CircuitBreaker,
)

__all__ = [
    "FAULT_EXCEPTIONS",
    "FaultError",
    "FaultType",
    "make_fault",
    "PageLoadTimeoutFault",
    "DriverCrashFault",
    "DriverHangFault",
    "StaleElementFault",
    "NetworkResetFault",
    "OOMRestartFault",
    "FaultPlan",
    "FaultInjector",
    "FiredFault",
    "ScheduledFault",
    "BackoffPolicy",
    "BreakerState",
    "CircuitBreaker",
    "DELAY_GRID_MS",
]
