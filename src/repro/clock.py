"""A virtual clock shared by the browser, input pipeline and agents.

All timing in the reproduction is simulated: agents "sleep" by advancing the
clock, and every dispatched event is stamped from it.  This makes experiments
deterministic and lets a benchmark replay minutes of interaction in
milliseconds of wall time.

The paper's Appendix D observed that Firefox reports keyboard event times at
1 ms granularity; :class:`VirtualClock` therefore exposes both the raw float
time and a quantised event timestamp.
"""

from __future__ import annotations


class VirtualClock:
    """A monotonically non-decreasing simulated clock, in milliseconds."""

    #: Timestamp granularity applied to event timestamps (Appendix D: 1 ms).
    EVENT_GRANULARITY_MS = 1.0

    def __init__(self, start_ms: float = 0.0) -> None:
        if start_ms < 0:
            raise ValueError("clock cannot start before time zero")
        self._now_ms = float(start_ms)

    def now(self) -> float:
        """Current simulated time in milliseconds (full precision)."""
        return self._now_ms

    def event_timestamp(self) -> float:
        """Current time quantised to event granularity (1 ms)."""
        g = self.EVENT_GRANULARITY_MS
        return float(int(self._now_ms / g) * g)

    def advance(self, delta_ms: float) -> float:
        """Advance the clock by ``delta_ms`` (must be non-negative).

        Returns the new time.
        """
        if delta_ms < 0:
            raise ValueError(f"cannot advance clock by {delta_ms} ms")
        self._now_ms += delta_ms
        return self._now_ms

    def sleep(self, seconds: float) -> None:
        """Advance the clock by ``seconds`` seconds.

        Mirrors ``time.sleep`` so agent code reads like real automation
        code.
        """
        self.advance(seconds * 1000.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(t={self._now_ms:.3f} ms)"
