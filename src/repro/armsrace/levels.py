"""The escalation ladder of Fig. 3.

Web-bot side (simulators), bottom to top:

0. *No limits on behaviour* -- plain Selenium;
1. *Limit behaviour to humanly possible* -- naive improvements;
2. *Use distribution of human behaviour* -- **HLISA sits here** ("HLISA
   offers a simulation of human interaction.  As such, it is situated at
   the third level in the hierarchy");
3. *Use consistent behaviour* -- couplings between signals included;
4. *Use specific user profile* -- impersonating one individual.

Website side (detectors), bottom to top:

1. *Detect artificial behaviour*;
2. *Detect deviations from human behaviour*;
3. *Tracking consistency of behaviour* -- "consistently defeating HLISA
   requires tracking consistency of behaviour";
4. *Recognise specific user profile* (needs enrolment; the paper notes
   the GDPR may limit this level).

The model's prediction: a detector at level ``d`` catches exactly the
simulators at levels strictly below ``d``.
"""

from __future__ import annotations

from enum import IntEnum

from repro.detection.base import DetectionLevel


class SimulatorLevel(IntEnum):
    """The web-bot side of Fig. 3."""

    UNLIMITED = 0  # "No limits on behaviour" (Selenium)
    HUMANLY_POSSIBLE = 1  # "Limit behaviour to humanly possible" (naive)
    HUMAN_DISTRIBUTION = 2  # "Use distribution of human behaviour" (HLISA)
    CONSISTENT = 3  # "Use consistent behaviour"
    SPECIFIC_PROFILE = 4  # "Use specific user profile"


#: The level the paper assigns to HLISA.
HLISA_LEVEL = SimulatorLevel.HUMAN_DISTRIBUTION


def expected_detection(simulator: SimulatorLevel, detector: DetectionLevel) -> bool:
    """The Fig. 3 model's prediction: does this detector level catch this
    simulator level?

    A detector catches every simulator below its own rung and none at or
    above it -- the lower-triangular matrix the tournament validates.
    """
    return int(detector) > int(simulator)


EXPECTED_MATRIX_NOTE = (
    "Fig. 3 predicts a lower-triangular detection matrix: detector level d "
    "catches simulator levels < d. HLISA (simulator level 2) evades "
    "artificial-behaviour and human-deviation detectors; only consistency "
    "tracking (level 3) and enrolled profiles (level 4) catch it."
)
