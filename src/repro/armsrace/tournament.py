"""The detection tournament validating Fig. 3.

Every simulator level runs the browsing scenario; every cumulative
detector battery judges every recording.  The result is the detection
matrix the paper's conceptual model predicts: lower-triangular, with
HLISA undetected until consistency tracking enters.

A genuine human subject is always included as the false-positive control
-- "detectors must not be too strict or risk barring human visitors
entry".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.armsrace.levels import SimulatorLevel, expected_detection
from repro.armsrace.simulators import simulator_for_level
from repro.detection.base import DetectionLevel
from repro.detection.battery import DetectorBattery
from repro.detection.profile_match import EnrolledProfileDetector
from repro.events.recorder import EventRecorder
from repro.experiment.agents import HumanAgent
from repro.experiment.tasks import BrowsingScenario
from repro.humans.profile import HumanProfile


@dataclass
class TournamentResult:
    """Detection matrix + false-positive control."""

    #: detected[simulator_level][detector_level] -> flagged?
    matrix: Dict[SimulatorLevel, Dict[DetectionLevel, bool]] = field(default_factory=dict)
    #: human_flags[detector_level] -> was the genuine human flagged?
    human_flags: Dict[DetectionLevel, bool] = field(default_factory=dict)
    #: Names of the detectors that fired per (simulator, detector level).
    evidence: Dict[Tuple[SimulatorLevel, DetectionLevel], List[str]] = field(
        default_factory=dict
    )

    def matches_model(self) -> bool:
        """Whether the empirical matrix equals the Fig. 3 prediction and
        the human was never flagged."""
        for sim, per_detector in self.matrix.items():
            for det, detected in per_detector.items():
                if detected != expected_detection(sim, det):
                    return False
        return not any(self.human_flags.values())

    def mismatches(self) -> List[str]:
        """Human-readable list of deviations from the model."""
        problems: List[str] = []
        for sim, per_detector in self.matrix.items():
            for det, detected in per_detector.items():
                expected = expected_detection(sim, det)
                if detected != expected:
                    verb = "caught" if detected else "missed"
                    problems.append(
                        f"detector level {int(det)} {verb} simulator level "
                        f"{int(sim)} (model expects "
                        f"{'caught' if expected else 'missed'})"
                    )
        for det, flagged in self.human_flags.items():
            if flagged:
                problems.append(f"detector level {int(det)} flagged the human")
        return problems

    def format_matrix(self) -> str:
        """The Fig. 3 matrix as a printable table."""
        lines = ["simulator \\ detector   L1  L2  L3  L4"]
        for sim in sorted(self.matrix):
            cells = []
            for det in sorted(self.matrix[sim]):
                cells.append(" X " if self.matrix[sim][det] else " . ")
            lines.append(f"level {int(sim)} ({sim.name:17s}) {' '.join(cells)}")
        human_cells = " ".join(
            " X " if self.human_flags.get(d) else " . "
            for d in sorted(self.human_flags)
        )
        lines.append(f"human   ({'CONTROL':17s}) {human_cells}")
        return "\n".join(lines)


class Tournament:
    """Runs the full simulator-vs-detector tournament.

    Parameters
    ----------
    subject:
        The human individual the level-4 detector enrols on (and the
        level-4 simulator impersonates).
    scenario:
        The browsing scenario every agent performs.
    enrolment_runs:
        How many scenario recordings the profile detector learns from.
    """

    def __init__(
        self,
        subject: Optional[HumanProfile] = None,
        scenario: Optional[BrowsingScenario] = None,
        enrolment_runs: int = 3,
        profile_z_threshold: float = 2.0,
    ) -> None:
        self.subject = subject or HumanProfile()
        self.scenario = scenario or BrowsingScenario()
        self.enrolment_runs = enrolment_runs
        self.profile_z_threshold = profile_z_threshold

    def _record(self, agent) -> EventRecorder:
        return self.scenario.run(agent).recorder

    def _enrolled_detector(self) -> EnrolledProfileDetector:
        detector = EnrolledProfileDetector(z_threshold=self.profile_z_threshold)
        recordings = []
        for i in range(self.enrolment_runs):
            agent = HumanAgent(self.subject.with_seed(self.subject.seed + 17 * (i + 1)))
            recordings.append(self._record(agent))
        detector.enroll(recordings)
        return detector

    def run(self) -> TournamentResult:
        """Play every simulator against every detector battery."""
        result = TournamentResult()
        profile_detector = self._enrolled_detector()

        batteries = {
            level: DetectorBattery(
                level,
                profile_detector=(
                    profile_detector if level >= DetectionLevel.PROFILE else None
                ),
            )
            for level in DetectionLevel
        }

        # The genuine human control (a fresh session of the subject).
        human_recorder = self._record(
            HumanAgent(self.subject.with_seed(self.subject.seed + 5000))
        )
        for det_level, battery in batteries.items():
            result.human_flags[det_level] = battery.evaluate(human_recorder).is_bot

        for sim_level in SimulatorLevel:
            agent = simulator_for_level(sim_level, target_profile=self.subject)
            recorder = self._record(agent)
            result.matrix[sim_level] = {}
            for det_level, battery in batteries.items():
                report = battery.evaluate(recorder)
                result.matrix[sim_level][det_level] = report.is_bot
                result.evidence[(sim_level, det_level)] = report.triggered_names()
        return result
