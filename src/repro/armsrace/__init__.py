"""The interaction arms race (Section 4.2 / Fig. 3), made executable.

The paper models detectors and simulators as an escalation ladder.  This
package instantiates **both sides as running code** and plays them
against each other:

- :mod:`repro.armsrace.levels` -- the ladder itself: simulator levels,
  detector levels, and the model's prediction of who beats whom;
- :mod:`repro.armsrace.simulators` -- a concrete agent per simulator
  level (Selenium at "no limits", the naive agent at "humanly possible",
  HLISA at "use distribution of human behaviour", a consistency-complete
  simulator, and a specific-profile impersonator);
- :mod:`repro.armsrace.tournament` -- runs every simulator through a
  browsing scenario and every (cumulative) detector battery over the
  recordings, producing the detection matrix that validates Fig. 3.
"""

from repro.armsrace.levels import (
    SimulatorLevel,
    expected_detection,
    EXPECTED_MATRIX_NOTE,
)
from repro.armsrace.simulators import simulator_for_level, GENERIC_SIMULATION_PROFILE
from repro.armsrace.tournament import Tournament, TournamentResult

__all__ = [
    "SimulatorLevel",
    "expected_detection",
    "EXPECTED_MATRIX_NOTE",
    "simulator_for_level",
    "GENERIC_SIMULATION_PROFILE",
    "Tournament",
    "TournamentResult",
]
