"""A concrete agent per simulator level of Fig. 3.

Levels 0-2 are the paper's own artefacts (Selenium, the naive solutions,
HLISA).  Levels 3-4 are the escalations the paper *describes* but does
not build: a simulator with full internal consistency (the couplings of
human motor control), and one that impersonates a specific enrolled
individual.  Both are realised with the generative human model -- which
is exactly the paper's point: "the simulators can always beat the
detectors by making use of the same models".
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.armsrace.levels import SimulatorLevel
from repro.experiment.agents import (
    Agent,
    HLISAAgent,
    HumanAgent,
    NaiveAgent,
    SeleniumAgent,
)
from repro.humans.profile import HumanProfile

#: The "generic population" parameters a level-3 simulator would ship
#: with: internally consistent, plausibly human -- but visibly not any
#: *particular* enrolled user (which is what level-4 detection exploits).
GENERIC_SIMULATION_PROFILE = HumanProfile(
    name="generic-simulation",
    seed=101,
    fitts_a_ms=155.0,
    fitts_b_ms=195.0,
    fitts_noise_sigma=0.19,
    jitter_px=3.0,
    click_sigma_frac=0.40,
    click_dwell_mean_ms=150.0,
    key_dwell_mean_ms=165.0,
    key_dwell_sd_ms=38.0,
    key_flight_mean_ms=240.0,
    key_flight_sd_ms=75.0,
    scroll_tick_pause_mean_ms=145.0,
)


class ConsistentSimulatorAgent(HumanAgent):
    """Level 3: "use consistent behaviour".

    Full human-model simulation (couplings included) with generic
    population parameters.  Runs in an automated browser -- it is still a
    bot, just a behaviourally consistent one.
    """

    name = "consistent-simulator"
    automated = True

    def __init__(self, profile: Optional[HumanProfile] = None) -> None:
        super().__init__(profile or GENERIC_SIMULATION_PROFILE)


class ProfileSimulatorAgent(HumanAgent):
    """Level 4: "use specific user profile".

    Impersonates one enrolled individual by replaying that individual's
    *parameters* (not their raw data) through the human model -- the
    paper's endgame: "simulating the specific interaction profile of a
    specific individual".
    """

    name = "profile-simulator"
    automated = True

    def __init__(self, target_profile: HumanProfile, seed_offset: int = 991) -> None:
        impersonation = replace(target_profile, seed=target_profile.seed + seed_offset)
        super().__init__(impersonation)


def simulator_for_level(
    level: SimulatorLevel,
    target_profile: Optional[HumanProfile] = None,
) -> Agent:
    """Instantiate the standard simulator for a ladder level.

    ``target_profile`` is required for :data:`SimulatorLevel.SPECIFIC_
    PROFILE` -- the individual being impersonated.
    """
    if level is SimulatorLevel.UNLIMITED:
        return SeleniumAgent()
    if level is SimulatorLevel.HUMANLY_POSSIBLE:
        return NaiveAgent()
    if level is SimulatorLevel.HUMAN_DISTRIBUTION:
        return HLISAAgent()
    if level is SimulatorLevel.CONSISTENT:
        return ConsistentSimulatorAgent()
    if level is SimulatorLevel.SPECIFIC_PROFILE:
        if target_profile is None:
            raise ValueError(
                "impersonation needs the target individual's profile"
            )
        return ProfileSimulatorAgent(target_profile)
    raise ValueError(f"unknown simulator level {level!r}")
