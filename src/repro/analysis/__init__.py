"""Metric extraction from recorded interaction.

These are the measurements behind the paper's Figs. 1-2 and the detector
features: trajectory shape (straightness, speed profile, jitter), click
scatter (centre hits, corner coverage, distribution shape), typing rhythm
(dwell/flight, rollover, modifier consistency) and scroll cadence (tick
distances, pause structure).
"""

from repro.analysis.trajectory import TrajectoryMetrics, trajectory_metrics
from repro.analysis.clicks import ClickMetrics, click_metrics
from repro.analysis.typing_metrics import TypingMetrics, typing_metrics
from repro.analysis.scroll_metrics import ScrollMetrics, scroll_metrics


def __getattr__(name):
    # Lazy export: detector_eval pulls in the detection package, which in
    # turn uses the metric modules here -- resolving it at first use
    # keeps the import graph acyclic (PEP 562).
    if name in ("OperatingPoints", "evaluate_operating_points"):
        from repro.analysis import detector_eval

        return getattr(detector_eval, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "TrajectoryMetrics",
    "trajectory_metrics",
    "ClickMetrics",
    "click_metrics",
    "TypingMetrics",
    "typing_metrics",
    "ScrollMetrics",
    "scroll_metrics",
    "OperatingPoints",
    "evaluate_operating_points",
]
