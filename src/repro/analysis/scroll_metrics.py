"""Scrolling metrics (Section 4.1, "Scrolling" / Appendix D).

The observable differences between scrolling styles:

- **wheel coverage**: Selenium's programmatic scrolls fire ``scroll``
  without ``wheel``; wheel scrolling fires both.  (The paper cautions
  that absence of wheel events alone is *not* conclusive -- scroll bars,
  arrow keys and anchors also lack them.)
- **per-event scroll distance**: a wheel tick moves a fixed 57 px;
  programmatic scrolling can cover "arbitrary long distances in one
  scroll event".
- **cadence**: human ticks come in sweeps separated by finger-
  repositioning breaks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.events.event import Event


@dataclass(frozen=True)
class ScrollMetrics:
    """Summary of one scrolling session."""

    n_scroll_events: int
    n_wheel_events: int
    total_distance_px: float
    max_single_scroll_px: float
    #: Median per-scroll-event distance (57 px for tick-wise scrolling).
    median_scroll_step_px: float
    #: Median absolute wheel delta (the tick size; 0 if no wheel events).
    wheel_tick_px: float
    #: Median / 90th-percentile gap between consecutive wheel events (ms).
    median_tick_gap_ms: float
    p90_tick_gap_ms: float
    #: Fraction of inter-tick gaps at least twice the median (the long
    #: finger-repositioning breaks).
    long_gap_fraction: float

    @property
    def wheelless(self) -> bool:
        """Scrolling happened with no wheel events at all."""
        return self.n_scroll_events > 0 and self.n_wheel_events == 0

    @property
    def has_teleport_scrolls(self) -> bool:
        """Some single scroll event moved much more than a wheel tick."""
        return self.max_single_scroll_px > 4 * 57.0

    @property
    def has_sweep_structure(self) -> bool:
        """Long breaks interleave the short tick gaps (finger resets).

        Human wheel scrolling resets the finger every ~5-12 ticks, so a
        noticeable minority of gaps is much longer than the median; a
        metronome has none.
        """
        return self.median_tick_gap_ms > 0 and self.long_gap_fraction >= 0.05


def scroll_metrics(
    scroll_events: Sequence[Event],
    wheel_events: Sequence[Event],
) -> ScrollMetrics:
    """Compute :class:`ScrollMetrics` from recorded scroll/wheel events.

    Scroll distances are reconstructed from consecutive ``scroll``
    events' page offsets.
    """
    scrolls = list(scroll_events)
    wheels = list(wheel_events)
    if scrolls:
        offsets = np.array([e.page_y for e in scrolls], dtype=float)
        steps = np.abs(np.diff(np.concatenate([[0.0], offsets])))
        total = float(steps.sum())
        max_single = float(steps.max()) if steps.size else 0.0
        median_step = float(np.median(steps)) if steps.size else 0.0
    else:
        total = 0.0
        max_single = 0.0
        median_step = 0.0

    if wheels:
        tick = float(np.median([abs(e.delta_y) for e in wheels]))
        times = np.array([e.timestamp for e in wheels], dtype=float)
    else:
        # Wheel-less scrolling (programmatic / HLISA's scrollBy ticks):
        # cadence is still observable from the scroll events themselves.
        tick = 0.0
        times = np.array([e.timestamp for e in scrolls], dtype=float)
    gaps = np.diff(times)
    gaps = gaps[gaps > 0]
    if gaps.size:
        median_gap = float(np.median(gaps))
        p90_gap = float(np.quantile(gaps, 0.9))
        long_fraction = float(np.mean(gaps >= 2.0 * median_gap)) if median_gap > 0 else 0.0
    else:
        median_gap = 0.0
        p90_gap = 0.0
        long_fraction = 0.0

    return ScrollMetrics(
        n_scroll_events=len(scrolls),
        n_wheel_events=len(wheels),
        total_distance_px=total,
        max_single_scroll_px=max_single,
        median_scroll_step_px=median_step,
        wheel_tick_px=tick,
        median_tick_gap_ms=median_gap,
        p90_tick_gap_ms=p90_gap,
        long_gap_fraction=long_fraction,
    )
