"""Detector operating points: detection rates across agent populations.

A detector is only useful if it catches bots *and* never bars humans
("detectors must not be too strict or risk barring human visitors
entry", Section 4.2).  This harness runs many seeded sessions per agent
kind through a battery and reports per-detector detection rates -- the
operating point each check sits at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.detection.base import DetectionLevel
from repro.detection.battery import DetectorBattery
from repro.experiment.agents import HLISAAgent, HumanAgent, NaiveAgent, SeleniumAgent
from repro.experiment.tasks import BrowsingScenario
from repro.humans.profile import HumanProfile


@dataclass
class OperatingPoints:
    """Detection rates per (agent kind, detector)."""

    runs_per_agent: int
    #: agent -> detector name -> fraction of runs flagged
    rates: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: agent -> fraction of runs flagged by *any* detector
    overall: Dict[str, float] = field(default_factory=dict)

    def false_positive_rate(self) -> float:
        """Fraction of human runs flagged by anything."""
        return self.overall.get("human", 0.0)

    def detection_rate(self, agent: str) -> float:
        return self.overall.get(agent, 0.0)

    def format_table(self) -> str:
        detectors = sorted(
            {name for per_agent in self.rates.values() for name in per_agent}
        )
        width = max(len(d) for d in detectors) + 2
        agents = list(self.rates)
        header = "detector".ljust(width) + "  ".join(f"{a:>10s}" for a in agents)
        lines = [header, "-" * len(header)]
        for detector in detectors:
            cells = "  ".join(
                f"{self.rates[a].get(detector, 0.0):>9.0%} " for a in agents
            )
            lines.append(detector.ljust(width) + cells)
        lines.append("-" * len(header))
        lines.append(
            "ANY".ljust(width)
            + "  ".join(f"{self.overall[a]:>9.0%} " for a in agents)
        )
        return "\n".join(lines)


def default_agent_factories() -> Dict[str, Callable[[int], object]]:
    """Seeded factories for the standard population."""
    return {
        "selenium": lambda seed: SeleniumAgent(),
        "naive": lambda seed: NaiveAgent(seed=seed),
        "hlisa": lambda seed: HLISAAgent(seed=seed),
        "human": lambda seed: HumanAgent(HumanProfile(seed=seed)),
    }


def evaluate_operating_points(
    level: DetectionLevel = DetectionLevel.CONSISTENCY,
    runs_per_agent: int = 5,
    agent_factories: Optional[Dict[str, Callable[[int], object]]] = None,
    scenario: Optional[BrowsingScenario] = None,
    base_seed: int = 1000,
) -> OperatingPoints:
    """Run each agent ``runs_per_agent`` times through the battery."""
    factories = agent_factories or default_agent_factories()
    scenario = scenario or BrowsingScenario(clicks=40)
    battery = DetectorBattery(level)
    result = OperatingPoints(runs_per_agent=runs_per_agent)
    for agent_name, factory in factories.items():
        per_detector: Dict[str, int] = {}
        any_flagged = 0
        for run in range(runs_per_agent):
            agent = factory(base_seed + 37 * run)
            recorder = scenario.run(agent).recorder
            report = battery.evaluate(recorder)
            if report.is_bot:
                any_flagged += 1
            for verdict in report.verdicts:
                per_detector.setdefault(verdict.detector, 0)
                if verdict.is_bot:
                    per_detector[verdict.detector] += 1
        result.rates[agent_name] = {
            name: count / runs_per_agent for name, count in per_detector.items()
        }
        result.overall[agent_name] = any_flagged / runs_per_agent
    return result
