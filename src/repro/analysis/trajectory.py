"""Cursor-trajectory metrics (Fig. 1's qualitative contrasts, made
quantitative).

Given a recorded mouse path ``[(t_ms, x, y), ...]`` the metrics capture:

- **straightness**: chord length / path length (1.0 = perfect line);
- **speed profile**: per-segment speeds, their coefficient of variation
  (uniform-speed movement has CV ~ 0), and an acceleration signature --
  mean speed in the first and last fifths relative to the middle (humans
  accelerate then decelerate, so edge/middle << 1);
- **jitter energy**: RMS residual of the path from its smoothed version
  (human tremor; absent from straight lines and plain Béziers);
- **curvature**: mean absolute turn angle per segment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

PathSample = Tuple[float, float, float]  # (t_ms, x, y)


@dataclass(frozen=True)
class TrajectoryMetrics:
    """Shape/kinematics summary of one cursor movement."""

    n_samples: int
    duration_ms: float
    path_length: float
    chord_length: float
    straightness: float
    mean_speed_px_s: float
    peak_speed_px_s: float
    speed_cv: float
    edge_to_middle_speed_ratio: float
    jitter_rms_px: float
    mean_abs_turn_rad: float

    @property
    def has_bell_speed_profile(self) -> bool:
        """Accelerates at the start and decelerates at the end."""
        return self.edge_to_middle_speed_ratio < 0.75

    @property
    def is_straight(self) -> bool:
        """Effectively a straight line."""
        return self.straightness > 0.995

    @property
    def is_uniform_speed(self) -> bool:
        """Effectively constant speed."""
        return self.speed_cv < 0.12


def split_movements(
    path: Sequence[PathSample],
    min_gap_ms: float = 120.0,
    min_samples: int = 4,
) -> List[List[PathSample]]:
    """Split a recording into individual movements.

    A new movement starts wherever the cursor rested for more than
    ``min_gap_ms`` between consecutive mousemove events.  Movements with
    fewer than ``min_samples`` samples (twitches) are dropped.
    """
    samples = list(path)
    movements: List[List[PathSample]] = []
    current: List[PathSample] = []
    for sample in samples:
        if current and sample[0] - current[-1][0] > min_gap_ms:
            if len(current) >= min_samples:
                movements.append(current)
            current = []
        current.append(sample)
    if len(current) >= min_samples:
        movements.append(current)
    return movements


def per_movement_metrics(
    path: Sequence[PathSample],
    min_gap_ms: float = 120.0,
) -> List[TrajectoryMetrics]:
    """Trajectory metrics for each movement in a recording."""
    return [
        trajectory_metrics(m) for m in split_movements(path, min_gap_ms=min_gap_ms)
    ]


def _savitzky_golay_center_weights(window: int, degree: int = 2) -> np.ndarray:
    """Weights that evaluate a local least-squares polynomial at the
    window centre (classic Savitzky-Golay smoothing coefficients)."""
    half = window // 2
    t = np.arange(-half, half + 1, dtype=float)
    design = np.vander(t, degree + 1, increasing=True)
    pseudo_inverse = np.linalg.pinv(design)
    return pseudo_inverse[0]  # evaluation of the constant term at t=0


def _polynomial_residual_rms(t: np.ndarray, x: np.ndarray, y: np.ndarray) -> float:
    """RMS residual of the path from a *local* quadratic fit (tremor).

    Any smooth curve -- straight line, Bézier, B-spline -- is locally
    quadratic over a short window, so its residual vanishes; hand tremor
    and HLISA's injected jitter do not.  A global polynomial would
    mislabel smooth-but-complex curves as jittery.
    """
    n = x.size
    if n < 5:
        return 0.0
    window = min(9, n if n % 2 == 1 else n - 1)
    if window < 5:
        window = 5
    half = window // 2
    weights = _savitzky_golay_center_weights(window)
    smooth_x = np.convolve(x, weights[::-1], mode="valid")
    smooth_y = np.convolve(y, weights[::-1], mode="valid")
    rx = x[half : n - half] - smooth_x
    ry = y[half : n - half] - smooth_y
    if rx.size == 0:
        return 0.0
    return float(np.sqrt(np.mean(rx**2 + ry**2)))


def trajectory_metrics(path: Sequence[PathSample]) -> TrajectoryMetrics:
    """Compute :class:`TrajectoryMetrics` from a recorded mouse path."""
    samples = list(path)
    if len(samples) < 2:
        raise ValueError("need at least 2 samples for trajectory metrics")
    t = np.array([s[0] for s in samples], dtype=float)
    x = np.array([s[1] for s in samples], dtype=float)
    y = np.array([s[2] for s in samples], dtype=float)

    dx, dy = np.diff(x), np.diff(y)
    seg_len = np.hypot(dx, dy)
    dt = np.diff(t)
    duration = float(t[-1] - t[0])
    path_length = float(seg_len.sum())
    chord = float(math.hypot(x[-1] - x[0], y[-1] - y[0]))
    straightness = chord / path_length if path_length > 1e-9 else 1.0

    valid = dt > 0
    speeds = np.zeros(0)
    if valid.any():
        speeds = seg_len[valid] / (dt[valid] / 1000.0)
    mean_speed = float(speeds.mean()) if speeds.size else 0.0
    peak_speed = float(speeds.max()) if speeds.size else 0.0
    speed_cv = float(speeds.std() / mean_speed) if speeds.size and mean_speed > 1e-9 else 0.0

    edge_ratio = 1.0
    if speeds.size >= 5:
        fifth = max(1, speeds.size // 5)
        edge = np.concatenate([speeds[:fifth], speeds[-fifth:]])
        middle = speeds[fifth:-fifth] if speeds.size > 2 * fifth else speeds
        middle_mean = float(middle.mean()) if middle.size else mean_speed
        if middle_mean > 1e-9:
            edge_ratio = float(edge.mean() / middle_mean)

    # Jitter: RMS residual from a low-order polynomial fit of the path
    # over (normalised) time.  Straight lines and smooth Bézier curves fit
    # almost exactly; human tremor and HLISA's added jitter do not.
    jitter_rms = _polynomial_residual_rms(t, x, y)

    # Mean absolute turn angle between consecutive segments.
    turns: List[float] = []
    for i in range(len(dx) - 1):
        a = math.hypot(dx[i], dy[i])
        b = math.hypot(dx[i + 1], dy[i + 1])
        if a < 1e-9 or b < 1e-9:
            continue
        cross = dx[i] * dy[i + 1] - dy[i] * dx[i + 1]
        dot = dx[i] * dx[i + 1] + dy[i] * dy[i + 1]
        turns.append(abs(math.atan2(cross, dot)))
    mean_turn = float(np.mean(turns)) if turns else 0.0

    return TrajectoryMetrics(
        n_samples=len(samples),
        duration_ms=duration,
        path_length=path_length,
        chord_length=chord,
        straightness=min(straightness, 1.0),
        mean_speed_px_s=mean_speed,
        peak_speed_px_s=peak_speed,
        speed_cv=speed_cv,
        edge_to_middle_speed_ratio=edge_ratio,
        jitter_rms_px=jitter_rms,
        mean_abs_turn_rad=mean_turn,
    )
