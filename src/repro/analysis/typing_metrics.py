"""Typing-rhythm metrics (Section 4.1, "Key presses").

From recorded keystrokes the metrics recover everything the paper uses to
tell Selenium from human typing:

- typing speed in characters per minute (Selenium: 13,333; fast human:
  ~600);
- dwell-time distribution (Selenium: negligible and constant);
- flight-time distribution, including negative flights = rollover
  ("sometimes a key is only released when a different key has already
  been pressed");
- modifier consistency: capital letters/shifted symbols arriving without
  a Shift press reveal the bot (and with Shift, reveal the layout).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.events.recorder import KeyStroke, flight_times
from repro.humans.typing import needs_shift


@dataclass(frozen=True)
class TypingMetrics:
    """Summary of one typing session."""

    n_strokes: int
    chars_per_minute: float
    dwell_mean_ms: float
    dwell_std_ms: float
    flight_mean_ms: float
    flight_std_ms: float
    rollover_count: int
    #: Shifted characters typed while Shift was observably down.
    shifted_with_modifier: int
    #: Shifted characters typed with no Shift press at all.
    shifted_without_modifier: int

    @property
    def has_negligible_dwell(self) -> bool:
        """Selenium signature: keys held for (essentially) no time."""
        return self.dwell_mean_ms < 5.0

    @property
    def is_inhumanly_fast(self) -> bool:
        """Beyond the fastest sustained human typing (~750 cpm)."""
        return self.chars_per_minute > 1000.0


def typing_metrics(strokes: Sequence[KeyStroke]) -> TypingMetrics:
    """Compute :class:`TypingMetrics` from matched keystrokes.

    Modifier keystrokes are excluded from character counts but used to
    reconstruct the Shift state over time.
    """
    strokes = sorted(strokes, key=lambda s: s.down.timestamp)
    if not strokes:
        raise ValueError("no keystrokes to analyse")
    character_strokes: List[KeyStroke] = [
        s for s in strokes if s.key not in ("Shift", "Control", "Alt", "Meta")
    ]
    if not character_strokes:
        raise ValueError("only modifier keystrokes present")

    dwells = np.array([s.dwell_ms for s in character_strokes])
    flights = np.array(flight_times(character_strokes)) if len(character_strokes) > 1 else np.zeros(0)
    rollover = int(np.sum(flights < 0)) if flights.size else 0

    span_ms = (
        character_strokes[-1].up.timestamp - character_strokes[0].down.timestamp
    )
    cpm = (
        len(character_strokes) / (span_ms / 60000.0) if span_ms > 0 else float("inf")
    )

    shift_intervals = [
        (s.down.timestamp, s.up.timestamp) for s in strokes if s.key == "Shift"
    ]

    def _shift_down_at(t: float) -> bool:
        return any(lo <= t <= hi for lo, hi in shift_intervals)

    shifted_with = 0
    shifted_without = 0
    for stroke in character_strokes:
        if len(stroke.key) == 1 and needs_shift(stroke.key):
            # The event's own modifier flag is authoritative; the interval
            # check covers recorders that only kept key events.
            if stroke.down.shift_key or _shift_down_at(stroke.down.timestamp):
                shifted_with += 1
            else:
                shifted_without += 1

    return TypingMetrics(
        n_strokes=len(character_strokes),
        chars_per_minute=float(cpm),
        dwell_mean_ms=float(dwells.mean()),
        dwell_std_ms=float(dwells.std()),
        flight_mean_ms=float(flights.mean()) if flights.size else 0.0,
        flight_std_ms=float(flights.std()) if flights.size else 0.0,
        rollover_count=rollover,
        shifted_with_modifier=shifted_with,
        shifted_without_modifier=shifted_without,
    )
