"""Click-distribution metrics (Fig. 2's contrasts, made quantitative).

Click positions are normalised to the target element: an offset of
``(0, 0)`` is the exact centre, ``(+/-1, +/-1)`` the corners.  The four
agents separate cleanly in this space:

- Selenium: every click at exactly (0, 0);
- naive uniform: offsets uniform over the square, including corners;
- human / HLISA: Gaussian cloud around -- but almost never exactly at --
  the centre, with negligible corner mass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry import Box
from repro.stats.distributions import chi_square_uniform, ks_test_normal

NormalisedOffset = Tuple[float, float]


@dataclass(frozen=True)
class ClickMetrics:
    """Summary of a set of clicks on known targets."""

    n: int
    #: Fraction of clicks within 1% of the exact centre.
    exact_center_rate: float
    #: Mean radial offset (normalised units; centre = 0, corner ~ 1.41).
    mean_radial_offset: float
    std_radial_offset: float
    #: Fraction of clicks in the outer corners (|nx| and |ny| > 0.8).
    corner_rate: float
    #: Fraction of clicks outside the element entirely.
    outside_rate: float
    #: KS statistic of x-offsets against their own normal fit.
    normal_ks_x: float
    #: Chi-square uniformity p-value of x-offsets over [-1, 1].
    uniform_p_x: float


def normalised_offsets(
    positions: Sequence[Tuple[float, float]],
    boxes: Sequence[Box],
) -> List[NormalisedOffset]:
    """Offsets from each target's centre in half-extent units."""
    if len(positions) != len(boxes):
        raise ValueError("positions and boxes must pair up")
    offsets: List[NormalisedOffset] = []
    for (x, y), box in zip(positions, boxes):
        center = box.center
        half_w = max(box.width / 2.0, 1e-9)
        half_h = max(box.height / 2.0, 1e-9)
        offsets.append(((x - center.x) / half_w, (y - center.y) / half_h))
    return offsets


def click_metrics(
    positions: Sequence[Tuple[float, float]],
    boxes: Sequence[Box],
) -> ClickMetrics:
    """Compute :class:`ClickMetrics` for clicks on known target boxes."""
    offsets = normalised_offsets(positions, boxes)
    if not offsets:
        raise ValueError("no clicks to analyse")
    nx = np.array([o[0] for o in offsets])
    ny = np.array([o[1] for o in offsets])
    radial = np.hypot(nx, ny)
    # "Exact centre" allows for the 0.5 px rounding browsers apply to
    # event coordinates (0.025 of a half extent is ~1 px on a 90 px box).
    exact_center = float(np.mean(radial < 0.025))
    corner = float(np.mean((np.abs(nx) > 0.8) & (np.abs(ny) > 0.8)))
    outside = float(np.mean((np.abs(nx) > 1.0) | (np.abs(ny) > 1.0)))

    if np.std(nx) > 1e-9 and len(offsets) >= 5:
        ks_x, _ = ks_test_normal(nx.tolist())
        _, uniform_p = chi_square_uniform(nx.tolist(), -1.0, 1.0, bins=8)
    else:
        # Degenerate scatter (e.g. Selenium: all offsets identical).
        ks_x = 1.0
        uniform_p = 0.0
    return ClickMetrics(
        n=len(offsets),
        exact_center_rate=exact_center,
        mean_radial_offset=float(radial.mean()),
        std_radial_offset=float(radial.std()),
        corner_rate=corner,
        outside_rate=outside,
        normal_ks_x=float(ks_x),
        uniform_p_x=float(uniform_p),
    )
