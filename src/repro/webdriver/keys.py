"""Selenium's ``Keys``: named special keys for ``send_keys``.

Real Selenium encodes special keys as private-use Unicode codepoints
(U+E000...).  We keep that wire format so code written against Selenium
ports over unchanged, and decode to the browser's logical key names at
the pipeline boundary.
"""

from __future__ import annotations

from typing import List


class Keys:
    """Special-key constants (the subset measurement code uses)."""

    NULL = "\ue000"
    CANCEL = "\ue001"
    HELP = "\ue002"
    BACKSPACE = "\ue003"
    TAB = "\ue004"
    CLEAR = "\ue005"
    RETURN = "\ue006"
    ENTER = "\ue007"
    SHIFT = "\ue008"
    CONTROL = "\ue009"
    ALT = "\ue00a"
    PAUSE = "\ue00b"
    ESCAPE = "\ue00c"
    SPACE = "\ue00d"
    PAGE_UP = "\ue00e"
    PAGE_DOWN = "\ue00f"
    END = "\ue010"
    HOME = "\ue011"
    ARROW_LEFT = "\ue012"
    ARROW_UP = "\ue013"
    ARROW_RIGHT = "\ue014"
    ARROW_DOWN = "\ue015"
    DELETE = "\ue017"
    META = "\ue03d"


#: Wire codepoint -> logical key name (as the browser reports it).
_CODEPOINT_TO_KEY = {
    Keys.BACKSPACE: "Backspace",
    Keys.TAB: "Tab",
    Keys.CLEAR: "Clear",
    Keys.RETURN: "Enter",
    Keys.ENTER: "Enter",
    Keys.SHIFT: "Shift",
    Keys.CONTROL: "Control",
    Keys.ALT: "Alt",
    Keys.PAUSE: "Pause",
    Keys.ESCAPE: "Escape",
    Keys.SPACE: " ",
    Keys.PAGE_UP: "PageUp",
    Keys.PAGE_DOWN: "PageDown",
    Keys.END: "End",
    Keys.HOME: "Home",
    Keys.ARROW_LEFT: "ArrowLeft",
    Keys.ARROW_UP: "ArrowUp",
    Keys.ARROW_RIGHT: "ArrowRight",
    Keys.ARROW_DOWN: "ArrowDown",
    Keys.DELETE: "Delete",
    Keys.META: "Meta",
}


def decode_keys(text: str) -> List[str]:
    """Split a ``send_keys`` argument into logical key values.

    Ordinary characters map to themselves; Selenium's private-use
    codepoints map to their key names.
    """
    return [_CODEPOINT_TO_KEY.get(char, char) for char in text]


def is_special(key: str) -> bool:
    """Whether a logical key is a non-printing special key."""
    return len(key) > 1
