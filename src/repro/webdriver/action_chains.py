"""Selenium's ``ActionChains``, reproduced with its interaction artefacts.

Every behaviour the paper calls out is produced by the same *algorithm*
real Selenium uses, so detectors catch it for the same reasons:

- ``move_to_element`` goes to the element's **exact centre** in a straight
  line at uniform speed (Fig. 1 A / Fig. 2 top-left);
- pointer-move durations pass through :func:`repro.webdriver.actions.
  create_pointer_move`, which clamps them to Selenium's lower bound;
- clicks press and release with **zero dwell time**;
- ``send_keys`` emits keydown/keyup with zero dwell at 13,333 characters
  per minute, typing capitals **without Shift** (Section 4.1).
"""

from __future__ import annotations

from typing import List, Optional

from repro.webdriver import actions as actions_module
from repro.webdriver.actions import (
    Action,
    ActionExecutor,
    KeyDown,
    KeyUp,
    Pause,
    PointerDown,
    PointerUp,
    ScrollTo,
)
from repro.webdriver.errors import InvalidArgumentException
from repro.webdriver.webelement import WebElement

#: Selenium's observed typing speed (paper: "inhumanly fast
#: (13,333 characters per minute)").
SELENIUM_CHARS_PER_MINUTE = 13333.0

#: Pause between consecutive keystrokes implied by that speed.
SELENIUM_INTER_KEY_MS = 60000.0 / SELENIUM_CHARS_PER_MINUTE

#: Buttons.
LEFT, MIDDLE, RIGHT = 0, 1, 2


class ActionChains:
    """Queue of low-level actions, executed in order by :meth:`perform`."""

    def __init__(self, driver) -> None:
        self._driver = driver
        self._actions: List[Action] = []

    # -- plumbing ------------------------------------------------------------

    def perform(self) -> None:
        """Execute all queued actions, then clear the queue."""
        executor = ActionExecutor(self._driver)
        executor.execute(self._actions)
        self._actions = []

    def reset_actions(self) -> "ActionChains":
        """Drop all queued actions."""
        self._actions = []
        return self

    def pause(self, seconds: float) -> "ActionChains":
        """Insert a pause of ``seconds`` seconds."""
        if seconds < 0:
            raise InvalidArgumentException(f"negative pause: {seconds}")
        self._actions.append(Pause(seconds * 1000.0))
        return self

    def _move(self, x: float, y: float, origin, duration_ms: Optional[float] = None) -> None:
        # Looked up on the module at call time so HLISA's patch applies.
        factory = actions_module.create_pointer_move
        if duration_ms is None:
            duration_ms = actions_module.DEFAULT_POINTER_MOVE_DURATION_MS
        self._actions.append(factory(x, y, duration_ms, origin=origin))

    # -- pointer movement ---------------------------------------------------------

    def move_to_element(self, to_element: WebElement) -> "ActionChains":
        """Straight-line move to the element's exact centre."""
        self._driver.scroll_into_view(to_element.dom_element)
        self._move(0.0, 0.0, origin=to_element)
        return self

    def move_to_element_with_offset(
        self, to_element: WebElement, xoffset: float, yoffset: float
    ) -> "ActionChains":
        """Straight-line move to an offset from the element's centre."""
        self._driver.scroll_into_view(to_element.dom_element)
        self._move(float(xoffset), float(yoffset), origin=to_element)
        return self

    def move_by_offset(self, xoffset: float, yoffset: float) -> "ActionChains":
        """Straight-line move relative to the current pointer position."""
        self._move(float(xoffset), float(yoffset), origin="pointer")
        return self

    def move_to_location(self, x: float, y: float) -> "ActionChains":
        """Straight-line move to absolute viewport coordinates."""
        self._move(float(x), float(y), origin="viewport")
        return self

    # -- clicking ---------------------------------------------------------------------

    def click(self, on_element: Optional[WebElement] = None) -> "ActionChains":
        """Press and release the left button (zero dwell)."""
        if on_element is not None:
            self.move_to_element(on_element)
        self._actions.append(PointerDown(LEFT))
        self._actions.append(PointerUp(LEFT))
        return self

    def click_and_hold(self, on_element: Optional[WebElement] = None) -> "ActionChains":
        if on_element is not None:
            self.move_to_element(on_element)
        self._actions.append(PointerDown(LEFT))
        return self

    def release(self, on_element: Optional[WebElement] = None) -> "ActionChains":
        if on_element is not None:
            self.move_to_element(on_element)
        self._actions.append(PointerUp(LEFT))
        return self

    def double_click(self, on_element: Optional[WebElement] = None) -> "ActionChains":
        """Two zero-dwell clicks in immediate succession."""
        if on_element is not None:
            self.move_to_element(on_element)
        for _ in range(2):
            self._actions.append(PointerDown(LEFT))
            self._actions.append(PointerUp(LEFT))
        return self

    def context_click(self, on_element: Optional[WebElement] = None) -> "ActionChains":
        if on_element is not None:
            self.move_to_element(on_element)
        self._actions.append(PointerDown(RIGHT))
        self._actions.append(PointerUp(RIGHT))
        return self

    # -- drag and drop -------------------------------------------------------------------

    def drag_and_drop(self, source: WebElement, target: WebElement) -> "ActionChains":
        self.click_and_hold(source)
        self.move_to_element(target)
        self.release()
        return self

    def drag_and_drop_by_offset(
        self, source: WebElement, xoffset: float, yoffset: float
    ) -> "ActionChains":
        self.click_and_hold(source)
        self.move_by_offset(xoffset, yoffset)
        self.release()
        return self

    # -- keyboard ---------------------------------------------------------------------------

    def key_down(self, value: str, element: Optional[WebElement] = None) -> "ActionChains":
        if element is not None:
            self.click(element)
        self._actions.append(KeyDown(value))
        return self

    def key_up(self, value: str, element: Optional[WebElement] = None) -> "ActionChains":
        if element is not None:
            self.click(element)
        self._actions.append(KeyUp(value))
        return self

    def send_keys(self, *keys_to_send: str) -> "ActionChains":
        """Type text at Selenium speed: zero dwell, no Shift for capitals.

        Special keys use Selenium's ``Keys`` codepoints (decoded to the
        browser's logical key names at the pipeline boundary).
        """
        from repro.webdriver.keys import decode_keys

        text = "".join(keys_to_send)
        for key in decode_keys(text):
            self._actions.append(KeyDown(key))
            self._actions.append(KeyUp(key))
            self._actions.append(Pause(SELENIUM_INTER_KEY_MS))
        return self

    def send_keys_to_element(
        self, element: WebElement, *keys_to_send: str
    ) -> "ActionChains":
        """Click the element, then :meth:`send_keys`."""
        self.click(element)
        return self.send_keys(*keys_to_send)

    # -- scrolling (Selenium's programmatic style) ----------------------------------------------

    def scroll_to_location(self, x: float, y: float) -> "ActionChains":
        """Programmatic scroll: no wheel events, any distance at once."""
        self._actions.append(ScrollTo(float(x), float(y)))
        return self

    def __len__(self) -> int:
        return len(self._actions)
