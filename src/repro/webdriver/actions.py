"""W3C-actions-style primitives and their executor.

Selenium's ``ActionChains`` compiles API calls into low-level *actions*
(pointer moves, button transitions, key transitions, pauses).  This module
holds those primitives and, crucially, the internal factory
:func:`create_pointer_move`:

    "The default Selenium API enforces a lower bound on the duration of
    mouse movements that is too high for simulating human interaction.
    For Selenium versions <4, we change this duration to 50 msec by
    overriding the internal Selenium function ``create_pointer_move()``."
    -- Section 4.1

The lower bound lives in :data:`MIN_POINTER_MOVE_DURATION_MS`;
:mod:`repro.core.patching` overrides the factory exactly the way HLISA
patches Selenium.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Union

from repro.geometry import Point, lerp_point
from repro.webdriver.errors import (
    InvalidArgumentException,
    MoveTargetOutOfBoundsException,
)

#: Default duration of one pointer-move action (W3C actions default).
DEFAULT_POINTER_MOVE_DURATION_MS = 250.0

#: Selenium's lower bound on pointer-move durations (the value HLISA's
#: patch replaces with 50 ms).
MIN_POINTER_MOVE_DURATION_MS = 250.0

#: Interpolation tick for pointer moves (one event per tick).
POINTER_MOVE_TICK_MS = 16.0


@dataclass
class PointerMove:
    """Move the pointer to a target over ``duration_ms``.

    ``origin`` is ``"viewport"`` (absolute client coordinates),
    ``"pointer"`` (relative to the current position) or a ``WebElement``
    (offset from the element's centre).
    """

    x: float
    y: float
    duration_ms: float
    origin: Union[str, object] = "viewport"


@dataclass
class PointerDown:
    button: int = 0


@dataclass
class PointerUp:
    button: int = 0


@dataclass
class KeyDown:
    key: str


@dataclass
class KeyUp:
    key: str


@dataclass
class Pause:
    duration_ms: float


@dataclass
class ScrollTo:
    """Programmatic scroll to an absolute page offset (no wheel events)."""

    x: float
    y: float


Action = Union[PointerMove, PointerDown, PointerUp, KeyDown, KeyUp, Pause, ScrollTo]


def create_pointer_move(
    x: float,
    y: float,
    duration_ms: float = DEFAULT_POINTER_MOVE_DURATION_MS,
    origin: Union[str, object] = "viewport",
) -> PointerMove:
    """Factory for pointer-move actions, enforcing Selenium's lower bound.

    This module-level function is looked up *at call time* by
    :class:`~repro.webdriver.action_chains.ActionChains`, so replacing it
    (as :func:`repro.core.patching.patch_pointer_move_duration` does)
    changes the behaviour of every chain -- mirroring how HLISA overrides
    Selenium's internal ``create_pointer_move``.
    """
    if duration_ms < 0:
        raise InvalidArgumentException(f"negative move duration: {duration_ms}")
    clamped = max(duration_ms, MIN_POINTER_MOVE_DURATION_MS)
    return PointerMove(x=x, y=y, duration_ms=clamped, origin=origin)


class ActionExecutor:
    """Executes compiled actions against a driver's input pipeline.

    Pointer moves interpolate **linearly at uniform speed** -- Selenium's
    tell-tale trajectory (paper, Fig. 1 A).
    """

    def __init__(self, driver) -> None:
        self.driver = driver

    # -- helpers ---------------------------------------------------------------

    def _resolve_target(self, action: PointerMove) -> Point:
        pipeline = self.driver.pipeline
        window = self.driver.window
        if action.origin == "pointer":
            return Point(pipeline.pointer.x + action.x, pipeline.pointer.y + action.y)
        if action.origin == "viewport":
            return Point(action.x, action.y)
        # element origin: offset from the element centre, in client coords
        element = action.origin
        center_page = element.dom_element.center
        center_client = window.page_to_client(center_page)
        return Point(center_client.x + action.x, center_client.y + action.y)

    def _check_bounds(self, point: Point) -> None:
        window = self.driver.window
        if not (
            0 <= point.x <= window.viewport_width
            and 0 <= point.y <= window.viewport_height
        ):
            raise MoveTargetOutOfBoundsException(
                f"move target ({point.x:.0f}, {point.y:.0f}) is outside the "
                f"viewport {window.viewport_width:.0f}x{window.viewport_height:.0f}"
            )

    # -- execution ----------------------------------------------------------------

    def execute(self, actions: List[Action]) -> None:
        for action in actions:
            self._execute_one(action)

    def _execute_one(self, action: Action) -> None:
        pipeline = self.driver.pipeline
        clock = self.driver.window.clock
        if isinstance(action, PointerMove):
            target = self._resolve_target(action)
            self._check_bounds(target)
            start = pipeline.pointer
            ticks = max(1, int(math.ceil(action.duration_ms / POINTER_MOVE_TICK_MS)))
            tick_ms = action.duration_ms / ticks
            pipeline.dispatch_batch(
                (
                    (tick_ms, lerp_point(start, target, i / ticks))
                    for i in range(1, ticks + 1)
                ),
                force_last=True,
            )
        elif isinstance(action, PointerDown):
            pipeline.mouse_down(action.button)
        elif isinstance(action, PointerUp):
            pipeline.mouse_up(action.button)
        elif isinstance(action, KeyDown):
            pipeline.key_down(action.key)
        elif isinstance(action, KeyUp):
            pipeline.key_up(action.key)
        elif isinstance(action, Pause):
            clock.advance(action.duration_ms)
        elif isinstance(action, ScrollTo):
            pipeline.scroll_programmatic(action.x, action.y)
        else:  # pragma: no cover - defensive
            raise InvalidArgumentException(f"unknown action {action!r}")
