"""WebDriver error hierarchy (the subset Selenium users meet daily)."""

from __future__ import annotations


class WebDriverException(Exception):
    """Base class for all WebDriver errors."""


class NoSuchElementException(WebDriverException):
    """``find_element`` found nothing for the given locator."""


class ElementNotInteractableException(WebDriverException):
    """The element exists but cannot receive interaction (e.g. hidden)."""


class MoveTargetOutOfBoundsException(WebDriverException):
    """A pointer move targets coordinates outside the viewport."""


class InvalidArgumentException(WebDriverException):
    """An argument was malformed (wrong type, negative duration, ...)."""


class StaleElementReferenceException(WebDriverException):
    """The element is no longer attached to the document."""


class TimeoutException(WebDriverException):
    """A command (navigation, script, wait) exceeded its time budget."""


class InvalidSessionIdException(WebDriverException):
    """The session is gone -- typically the browser process died."""
