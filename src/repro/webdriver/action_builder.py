"""The W3C ``ActionBuilder`` API (Selenium 4 style).

The paper pins HLISA's patch to "Selenium versions <4"; real Selenium 4
replaced the internals with the W3C actions model -- per-device *input
sources* (pointer, key, wheel) whose action queues are merged tick by
tick.  This module provides that API surface over the same executor the
legacy ``ActionChains`` uses, so Selenium-4-style automation code ports
over unchanged:

    builder = ActionBuilder(driver)
    builder.pointer_action.move_to(element).click()
    builder.key_action.send_keys("hi")
    builder.perform()

Tick semantics: at each tick, every device contributes at most one
action; a device with nothing queued contributes an implicit pause.  Our
browser is single-threaded, so a tick's actions execute in device order
(pointer, key, wheel) -- observable timing matches W3C's "tick duration =
longest action in the tick" for the pointer-dominant workloads
measurement code produces.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.webdriver import actions as actions_module
from repro.webdriver.actions import (
    Action,
    ActionExecutor,
    KeyDown,
    KeyUp,
    Pause,
    PointerDown,
    PointerUp,
    ScrollTo,
)
from repro.webdriver.errors import InvalidArgumentException
from repro.webdriver.webelement import WebElement


class _InputSource:
    """Base input source: a queue of (tick-sized) actions."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._queue: List[Action] = []

    def pause(self, seconds: float = 0.0):
        if seconds < 0:
            raise InvalidArgumentException(f"negative pause: {seconds}")
        self._queue.append(Pause(seconds * 1000.0))
        return self

    def _take(self) -> Optional[Action]:
        return self._queue.pop(0) if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)


class PointerActions(_InputSource):
    """The pointer input source (a mouse)."""

    def __init__(self, driver, name: str = "mouse") -> None:
        super().__init__(name)
        self._driver = driver

    def pointer_down(self, button: int = 0) -> "PointerActions":
        self._queue.append(PointerDown(button))
        return self

    def pointer_up(self, button: int = 0) -> "PointerActions":
        self._queue.append(PointerUp(button))
        return self

    def move_to(
        self, element: WebElement, x: float = 0.0, y: float = 0.0
    ) -> "PointerActions":
        """Move to an element (optionally offset from its centre)."""
        self._driver.scroll_into_view(element.dom_element)
        self._queue.append(
            actions_module.create_pointer_move(float(x), float(y), origin=element)
        )
        return self

    def move_by(self, x: float, y: float) -> "PointerActions":
        self._queue.append(
            actions_module.create_pointer_move(float(x), float(y), origin="pointer")
        )
        return self

    def move_to_location(self, x: float, y: float) -> "PointerActions":
        self._queue.append(
            actions_module.create_pointer_move(float(x), float(y), origin="viewport")
        )
        return self

    def click(self, element: Optional[WebElement] = None) -> "PointerActions":
        if element is not None:
            self.move_to(element)
        return self.pointer_down(0).pointer_up(0)

    def click_and_hold(self, element: Optional[WebElement] = None) -> "PointerActions":
        if element is not None:
            self.move_to(element)
        return self.pointer_down(0)

    def release(self) -> "PointerActions":
        return self.pointer_up(0)

    def double_click(self, element: Optional[WebElement] = None) -> "PointerActions":
        if element is not None:
            self.move_to(element)
        return self.click().click()

    def context_click(self, element: Optional[WebElement] = None) -> "PointerActions":
        if element is not None:
            self.move_to(element)
        return self.pointer_down(2).pointer_up(2)


class KeyActions(_InputSource):
    """The keyboard input source."""

    def __init__(self, name: str = "keyboard") -> None:
        super().__init__(name)

    def key_down(self, value: str) -> "KeyActions":
        self._queue.append(KeyDown(value))
        return self

    def key_up(self, value: str) -> "KeyActions":
        self._queue.append(KeyUp(value))
        return self

    def send_keys(self, text: str) -> "KeyActions":
        from repro.webdriver.keys import decode_keys

        for key in decode_keys(text):
            self.key_down(key)
            self.key_up(key)
        return self


class WheelActions(_InputSource):
    """The wheel input source (Selenium 4.2+)."""

    def __init__(self, driver, name: str = "wheel") -> None:
        super().__init__(name)
        self._driver = driver

    def scroll_by_amount(self, delta_x: float, delta_y: float) -> "WheelActions":
        """Scroll the viewport by a delta (programmatic, wheel-less)."""
        window = self._driver.window
        self._queue.append(
            _RelativeScroll(float(delta_x), float(delta_y))
        )
        return self

    def scroll_to_element(self, element: WebElement) -> "WheelActions":
        """Scroll until the element is in view."""
        self._queue.append(_ScrollIntoView(element))
        return self


class _RelativeScroll:
    """Deferred relative scroll (resolved against live scroll position)."""

    def __init__(self, dx: float, dy: float) -> None:
        self.dx, self.dy = dx, dy


class _ScrollIntoView:
    def __init__(self, element: WebElement) -> None:
        self.element = element


class ActionBuilder:
    """W3C actions: one queue per input source, merged tick-wise."""

    def __init__(self, driver) -> None:
        self._driver = driver
        self.pointer_action = PointerActions(driver)
        self.key_action = KeyActions()
        self.wheel_action = WheelActions(driver)

    @property
    def devices(self) -> List[_InputSource]:
        return [self.pointer_action, self.key_action, self.wheel_action]

    def clear_actions(self) -> None:
        """Drop every device's queue."""
        for device in self.devices:
            device._queue.clear()

    def perform(self) -> None:
        """Merge device queues tick by tick and execute."""
        executor = ActionExecutor(self._driver)
        while any(len(device) for device in self.devices):
            for device in self.devices:
                action = device._take()
                if action is None:
                    continue
                if isinstance(action, _RelativeScroll):
                    window = self._driver.window
                    executor.execute(
                        [ScrollTo(window.scroll_x + action.dx, window.scroll_y + action.dy)]
                    )
                elif isinstance(action, _ScrollIntoView):
                    self._driver.scroll_into_view(action.element.dom_element)
                else:
                    executor.execute([action])
