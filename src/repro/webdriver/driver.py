"""The WebDriver session object."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.browser.input_pipeline import (
    InputPipeline,
    SELENIUM_DOUBLE_CLICK_INTERVAL_MS,
)
from repro.browser.navigator import NavigatorProfile
from repro.browser.window import Window
from repro.dom.document import Document
from repro.dom.element import Element
from repro.geometry import Box
from repro.obs.tracer import NULL_TRACER
from repro.webdriver.action_chains import SELENIUM_INTER_KEY_MS
from repro.webdriver.errors import NoSuchElementException
from repro.webdriver.webelement import WebElement

def _fault_error():
    """The :class:`repro.faults.types.FaultError` base, imported lazily.

    ``repro.faults.types`` imports this package's error taxonomy, so a
    module-level import here would be circular.  ``sys.modules`` caches
    the import, so no module-global memoisation is needed (a global
    rebound at visit time would break process-pool sharding -- SHD002).
    """
    from repro.faults.types import FaultError

    return FaultError


class WebDriver:
    """A Selenium-like driver bound to one simulated browser window.

    The controlled browser's navigator reports ``webdriver == true`` (the
    W3C convention) and its environment exhibits the Selenium-specific
    double-click interval the paper measured (600 ms instead of 500 ms).
    """

    def __init__(
        self,
        window: Optional[Window] = None,
        *,
        profile: Optional[NavigatorProfile] = None,
        fault_injector=None,
        tracer=None,
    ) -> None:
        if window is None:
            profile = (profile or NavigatorProfile()).automated()
            window = Window(profile=profile)
        else:
            window.navigator.slots["webdriver"] = True
        self.window = window
        self.pipeline = InputPipeline(
            window, double_click_interval_ms=SELENIUM_DOUBLE_CLICK_INTERVAL_MS
        )
        self.current_url: str = "about:blank"
        #: Optional page loader: maps a URL to a Document (used by the
        #: crawl simulation); ``get`` is a no-op without one.
        self.page_loader: Optional[Callable[[str], Document]] = None
        #: Optional :class:`repro.faults.FaultInjector` consulted at the
        #: hook points (get / find_element / execute_script); ``None``
        #: (or a disarmed injector) leaves the driver fault-free.
        self.fault_injector = fault_injector
        #: Optional :class:`repro.obs.Tracer`; commands become
        #: ``webdriver.*`` spans.  Assigning also wires the tracer's
        #: metrics into the input pipeline (event-type counters).
        self.tracer = tracer

    @property
    def tracer(self):
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self.pipeline.metrics = (
            self._tracer.metrics if self._tracer.enabled else None
        )

    def _fault_check(self, hook: str) -> None:
        """Give the fault injector a chance to fail this command."""
        if self.fault_injector is not None:
            self.fault_injector.on_hook(hook)

    # -- navigation ----------------------------------------------------------

    def get(self, url: str) -> None:
        """Navigate to ``url`` via the configured page loader."""
        tracer = self._tracer
        span = tracer.start("webdriver.get", url=url) if tracer.enabled else None
        try:
            self._fault_check("get")
            if self.page_loader is not None:
                document = self.page_loader(url)
                self.load_document(document)
            self.current_url = url
        except _fault_error() as fault:
            if span is not None:
                span.status = "fault:" + fault.fault_type.value
            raise
        finally:
            if span is not None:
                tracer.end(span)

    def load_document(self, document: Document) -> None:
        """Swap in a new page, resetting scroll and hover state."""
        self.window.document = document
        document.window = self.window
        self.window.scroll_x = 0.0
        self.window.scroll_y = 0.0
        self.pipeline._hovered = None

    # -- element lookup ---------------------------------------------------------

    def find_element(self, by: str, value: str) -> WebElement:
        """Find the first matching element.

        ``by`` is one of ``"id"``, ``"tag name"``, ``"class name"`` or
        ``"css selector"`` (minimal selectors: ``tag``/``#id``/``.class``).
        """
        tracer = self._tracer
        span = (
            tracer.start("webdriver.find_element", by=by, value=value)
            if tracer.enabled
            else None
        )
        try:
            self._fault_check("find_element")
            document = self.window.document
            element: Optional[Element]
            if by == "id":
                element = document.get_element_by_id(value)
            elif by == "tag name":
                element = document.query_selector(value)
            elif by == "class name":
                element = document.query_selector("." + value)
            elif by == "css selector":
                element = document.query_selector(value)
            else:
                raise NoSuchElementException(f"unknown locator strategy {by!r}")
            if element is None:
                raise NoSuchElementException(f"no element for {by}={value!r}")
            return WebElement(self, element)
        except _fault_error() as fault:
            if span is not None:
                span.status = "fault:" + fault.fault_type.value
            raise
        finally:
            if span is not None:
                tracer.end(span)

    def find_elements(self, by: str, value: str) -> List[WebElement]:
        """Find all matching elements (empty list if none)."""
        tracer = self._tracer
        span = (
            tracer.start("webdriver.find_elements", by=by, value=value)
            if tracer.enabled
            else None
        )
        try:
            self._fault_check("find_element")
            document = self.window.document
            if by == "id":
                element = document.get_element_by_id(value)
                return [WebElement(self, element)] if element else []
            if by == "tag name":
                selector = value
            elif by == "class name":
                selector = "." + value
            elif by == "css selector":
                selector = value
            else:
                return []
            return [
                WebElement(self, e) for e in document.query_selector_all(selector)
            ]
        except _fault_error() as fault:
            if span is not None:
                span.status = "fault:" + fault.fault_type.value
            raise
        finally:
            if span is not None:
                tracer.end(span)

    def find_element_by_id(self, element_id: str) -> WebElement:
        """Selenium-3-style convenience lookup (used in the paper's
        Listing 2)."""
        return self.find_element("id", element_id)

    # -- scripted interaction -------------------------------------------------------

    def scroll_into_view(self, element: Element) -> None:
        """Bring an element into the viewport (programmatic scroll)."""
        if element.box is None:
            return
        window = self.window
        center = element.center
        if window.is_in_viewport(center):
            return
        target_y = max(0.0, center.y - window.viewport_height / 2.0)
        target_x = max(0.0, center.x - window.viewport_width / 2.0)
        self.pipeline.scroll_programmatic(target_x, target_y)

    def execute_script(self, script: str, *args) -> object:
        """A microscopic ``execute_script``: scroll idioms only.

        Supports the two calls measurement code actually issues --
        ``window.scrollTo(x, y)`` and ``window.scrollBy(x, y)`` -- which is
        how OpenWPM-era studies scroll (and why their scrolling lacks
        wheel events).
        """
        tracer = self._tracer
        span = (
            tracer.start("webdriver.execute_script", script=script)
            if tracer.enabled
            else None
        )
        try:
            self._fault_check("execute_script")
            text = script.strip().rstrip(";")
            for name in ("window.scrollTo", "window.scrollBy"):
                if text.startswith(name + "("):
                    inner = text[len(name) + 1 : -1]
                    x_str, y_str = inner.split(",")
                    x, y = float(x_str), float(y_str)
                    if name.endswith("To"):
                        self.pipeline.scroll_programmatic(x, y)
                    else:
                        self.window.scroll_by(x, y)
                    return None
            raise NotImplementedError(
                f"execute_script cannot interpret: {script!r}"
            )
        except _fault_error() as fault:
            if span is not None:
                span.status = "fault:" + fault.fault_type.value
            raise
        finally:
            if span is not None:
                tracer.end(span)

    def type_like_selenium(self, keys: str) -> None:
        """Selenium's element-send-keys rhythm: zero dwell, 13,333 cpm."""
        from repro.webdriver.keys import decode_keys

        clock = self.window.clock
        for key in decode_keys(keys):
            self.pipeline.key_down(key)
            self.pipeline.key_up(key)
            clock.advance(SELENIUM_INTER_KEY_MS)

    def quit(self) -> None:
        """End the session (no external resources to release here)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WebDriver url={self.current_url!r}>"


def make_browser_driver(
    *,
    viewport_width: float = 1366.0,
    viewport_height: float = 768.0,
    page_height: float = 768.0,
    with_demo_page: bool = True,
) -> WebDriver:
    """Create a driver over a fresh window, optionally with a demo page.

    The demo page contains the elements the README quickstart and the
    paper's Listing 2 exercise: a text area, two buttons and a link.
    """
    document = Document(viewport_width, max(page_height, viewport_height))
    if with_demo_page:
        document.create_element(
            "textarea", Box(480, 200, 400, 120), id="text_area"
        )
        document.create_element("button", Box(480, 360, 160, 40), id="submit", text="Submit")
        document.create_element("button", Box(680, 360, 160, 40), id="cancel", text="Cancel")
        document.create_element(
            "a", Box(100, 80, 220, 24), id="home_link", text="Home",
            attributes={"href": "/"},
        )
    window = Window(
        document,
        profile=NavigatorProfile().automated(),
        viewport_width=viewport_width,
        viewport_height=viewport_height,
    )
    return WebDriver(window)
