"""``WebElement``: the driver-side handle to a DOM element."""

from __future__ import annotations

from typing import Dict, Optional

from repro.dom.element import Element
from repro.webdriver.errors import (
    ElementNotInteractableException,
    StaleElementReferenceException,
)


class WebElement:
    """A remote-end element reference, as returned by ``find_element``.

    Interaction through ``WebElement`` (as opposed to ``ActionChains``)
    uses WebDriver's *element interaction* algorithms: the element is
    scrolled into view and the cursor teleports to its exact centre --
    there is no trajectory at all, which is even more artificial than the
    ActionChains straight line.
    """

    def __init__(self, driver, dom_element: Element) -> None:
        self._driver = driver
        self.dom_element = dom_element

    # -- inspection ---------------------------------------------------------

    def _require_interactable(self) -> None:
        if self.dom_element.document is not self._driver.window.document:
            raise StaleElementReferenceException(
                f"element <{self.dom_element.tag}> belongs to a previous page"
            )
        if not self.dom_element.visible or self.dom_element.box is None:
            raise ElementNotInteractableException(
                f"element <{self.dom_element.tag}> is not interactable"
            )

    @property
    def tag_name(self) -> str:
        return self.dom_element.tag

    @property
    def text(self) -> str:
        return self.dom_element.text

    @property
    def location(self) -> Dict[str, float]:
        """Top-left corner in page coordinates (Selenium's ``location``)."""
        box = self.dom_element.box
        if box is None:
            raise ElementNotInteractableException("element has no layout")
        return {"x": box.x, "y": box.y}

    @property
    def size(self) -> Dict[str, float]:
        box = self.dom_element.box
        if box is None:
            raise ElementNotInteractableException("element has no layout")
        return {"width": box.width, "height": box.height}

    @property
    def rect(self) -> Dict[str, float]:
        loc, size = self.location, self.size
        return {**loc, **size}

    def get_attribute(self, name: str) -> Optional[str]:
        if name == "id":
            return self.dom_element.id
        if name == "value":
            return self.dom_element.value
        if name == "class":
            return " ".join(self.dom_element.classes)
        return self.dom_element.attributes.get(name)

    @property
    def is_displayed(self) -> bool:
        return self.dom_element.visible and self.dom_element.box is not None

    # -- interaction -------------------------------------------------------------

    def click(self) -> None:
        """WebDriver element click: scroll into view, teleport, click.

        Zero-length "trajectory", exact centre, zero dwell -- maximally
        recognisable per the paper's taxonomy of Selenium artefacts.
        """
        self._require_interactable()
        self._driver.scroll_into_view(self.dom_element)
        center_client = self._driver.window.page_to_client(self.dom_element.center)
        pipeline = self._driver.pipeline
        pipeline.move_mouse_to(center_client.x, center_client.y, force_event=True)
        pipeline.mouse_down()
        pipeline.mouse_up()

    def send_keys(self, keys: str) -> None:
        """WebDriver element send-keys: focus, then type instantly.

        Typing uses Selenium's signature rhythm (13,333 cpm, zero dwell,
        capitals without Shift) via the driver's key routine.
        """
        self._require_interactable()
        document = self._driver.window.document
        for event_type, element in document.set_focus(self.dom_element):
            element.dispatch_event(
                self._driver.pipeline._base_event(event_type, element)
            )
        self._driver.type_like_selenium(keys)

    def clear(self) -> None:
        """Empty a form control's value."""
        self._require_interactable()
        self.dom_element.value = ""

    def __eq__(self, other) -> bool:
        return isinstance(other, WebElement) and other.dom_element is self.dom_element

    def __hash__(self) -> int:
        return id(self.dom_element)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WebElement {self.dom_element!r}>"
