"""A Selenium-like automation layer over the simulated browser.

The paper studies how the **Selenium interaction API** differs from human
interaction; this package re-creates that API against
:mod:`repro.browser`, reproducing Selenium's recognisable artefacts *by
construction* (the same algorithms, not canned data):

- pointer moves interpolate a straight line at uniform speed
  (:class:`~repro.webdriver.action_chains.ActionChains`);
- ``create_pointer_move`` enforces a lower bound on move durations, the
  internal function HLISA overrides (Section 4.1, "Implementation and
  deployment");
- clicks land exactly on the element centre with zero dwell time;
- ``send_keys`` types at 13,333 characters per minute with no dwell, no
  modifier synthesis, and no errors;
- scrolling is programmatic (``window.scrollTo``-style): no wheel events,
  arbitrary distances.
"""

from repro.webdriver.errors import (
    WebDriverException,
    NoSuchElementException,
    MoveTargetOutOfBoundsException,
    ElementNotInteractableException,
    InvalidArgumentException,
    StaleElementReferenceException,
    TimeoutException,
    InvalidSessionIdException,
)
from repro.webdriver.webelement import WebElement
from repro.webdriver.action_chains import ActionChains
from repro.webdriver.action_builder import ActionBuilder
from repro.webdriver.keys import Keys
from repro.webdriver.driver import WebDriver, make_browser_driver
from repro.webdriver import actions

__all__ = [
    "WebDriverException",
    "NoSuchElementException",
    "MoveTargetOutOfBoundsException",
    "ElementNotInteractableException",
    "InvalidArgumentException",
    "StaleElementReferenceException",
    "TimeoutException",
    "InvalidSessionIdException",
    "WebElement",
    "ActionChains",
    "ActionBuilder",
    "Keys",
    "WebDriver",
    "make_browser_driver",
    "actions",
]
