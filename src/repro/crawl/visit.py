"""A single crawler visit to a site.

Every visit builds a *real* simulated browser window (WebDriver-controlled
profile), lets the extension -- if any -- inject its content script, and
then runs the site's actual fingerprint probes against it.  The bot
verdict is therefore produced by the same code path as the Table 1
experiments; the population only decides *which* probes a site runs and
how it reacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.browser.navigator import NavigatorProfile
from repro.browser.window import Window
from repro.bus import (
    ChallengeDetected,
    InputObstructed,
    NavigateToUrl,
    NullBus,
    OverlayDetected,
    PageStalled,
    QueryElements,
    RunScript,
    resolve_or_none,
)
from repro.crawl.population import (
    DetectionSignal,
    HostileArchetype,
    Reaction,
    SiteConfig,
)
from repro.detection.fingerprint import probe_webdriver_flag, run_all_probes
from repro.dom.hostile import (
    install_challenge,
    install_hidden_input,
    install_overlay,
)
from repro.spoofing.extension import SpoofingExtension


class FailureReason:
    """The failure taxonomy recorded on unreached visits.

    Separating *site-side* conditions (``UNREACHABLE`` is permanent,
    ``TRANSIENT`` is per-visit web dynamics) from *crawler-side* faults
    (the :class:`repro.faults.FaultType` values) is what lets the
    supervisor retry only what a retry can fix, and lets the evaluation
    keep crawler failure out of the paper's site-reaction statistics.
    """

    #: The site never responds (DNS/parking/geo-block) -- permanent.
    UNREACHABLE = "unreachable"
    #: A one-off web-dynamics failure -- a retry usually succeeds.
    TRANSIENT = "transient"
    #: All retries were consumed without a successful page load.
    EXHAUSTED_PREFIX = "exhausted:"
    #: The per-domain circuit breaker refused the visit.
    CIRCUIT_OPEN = "circuit-open"
    #: A stall watchdog aborted the attempt at the step budget -- the
    #: page may behave next time, so a retry is worthwhile.
    STALLED = "stalled"
    #: The page stalled with no watchdog to bound it: the visit hung
    #: until an external kill.  Permanent -- retrying an unsupervised
    #: hang just hangs again.
    STALLED_UNBOUNDED = "stalled-unbounded"
    #: A modal/cookie overlay blocked the page and nothing dismissed it.
    MODAL_OVERLAY = "modal-overlay"
    #: A challenge interstitial gated the page and nothing waited it out.
    CHALLENGE_INTERSTITIAL = "challenge-interstitial"
    #: A required input was unreachable and nothing fell back to a
    #: scripted direct fill.
    HIDDEN_INPUT = "hidden-input"

    #: Hostile-page conditions no retry fixes without a watchdog: the
    #: page presents the same obstacle every time.
    _PERMANENT = frozenset(
        {
            UNREACHABLE,
            STALLED_UNBOUNDED,
            MODAL_OVERLAY,
            CHALLENGE_INTERSTITIAL,
            HIDDEN_INPUT,
        }
    )

    @staticmethod
    def exhausted(last_reason: str) -> str:
        """Terminal reason after retries ran out (keeps the last cause)."""
        return FailureReason.EXHAUSTED_PREFIX + last_reason

    @staticmethod
    def is_permanent(reason: Optional[str]) -> bool:
        """Whether retrying this failure cannot help."""
        return reason in FailureReason._PERMANENT


@dataclass
class HTTPResponse:
    """One HTTP response observed during a visit."""

    url: str
    status: int
    first_party: bool

    @property
    def is_error(self) -> bool:
        return self.status >= 400


@dataclass
class Screenshot:
    """The visually observable outcome of a visit (Table 2's categories)."""

    blocked: bool = False
    captcha: bool = False
    ads_expected: int = 0
    ads_shown: int = 0
    video_frozen: bool = False
    layout_deformed: bool = False

    @property
    def missing_all_ads(self) -> bool:
        return self.ads_expected > 0 and self.ads_shown == 0

    @property
    def missing_some_ads(self) -> bool:
        return 0 < self.ads_shown < self.ads_expected


@dataclass
class VisitRecord:
    """Everything recorded about one visit."""

    domain: str
    rank: int
    visit_index: int
    reached: bool
    responses: List[HTTPResponse] = field(default_factory=list)
    screenshot: Optional[Screenshot] = None
    #: Whether the site's detector decided "bot" this visit.
    detected_as_bot: bool = False
    #: Why the visit failed (a :class:`FailureReason` value or a
    #: :class:`repro.faults.FaultType` value); ``None`` when reached.
    failure_reason: Optional[str] = None
    #: Visit attempts actually made (1 without a supervisor).
    attempts: int = 1
    #: Whether the visit succeeded only after at least one failed attempt.
    recovered: bool = False

    def first_party_errors(self) -> int:
        return sum(1 for r in self.responses if r.first_party and r.is_error)

    def third_party_errors(self) -> int:
        return sum(1 for r in self.responses if not r.first_party and r.is_error)

    # -- checkpoint serialisation ---------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict (inverse of :meth:`from_dict`)."""
        return {
            "domain": self.domain,
            "rank": self.rank,
            "visit_index": self.visit_index,
            "reached": self.reached,
            "responses": [
                {"url": r.url, "status": r.status, "first_party": r.first_party}
                for r in self.responses
            ],
            "screenshot": None
            if self.screenshot is None
            else {
                "blocked": self.screenshot.blocked,
                "captcha": self.screenshot.captcha,
                "ads_expected": self.screenshot.ads_expected,
                "ads_shown": self.screenshot.ads_shown,
                "video_frozen": self.screenshot.video_frozen,
                "layout_deformed": self.screenshot.layout_deformed,
            },
            "detected_as_bot": self.detected_as_bot,
            "failure_reason": self.failure_reason,
            "attempts": self.attempts,
            "recovered": self.recovered,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "VisitRecord":
        screenshot = data.get("screenshot")
        return cls(
            domain=data["domain"],
            rank=data["rank"],
            visit_index=data["visit_index"],
            reached=data["reached"],
            responses=[HTTPResponse(**r) for r in data.get("responses", [])],
            screenshot=None if screenshot is None else Screenshot(**screenshot),
            detected_as_bot=data.get("detected_as_bot", False),
            failure_reason=data.get("failure_reason"),
            attempts=data.get("attempts", 1),
            recovered=data.get("recovered", False),
        )


def _run_site_detector(
    site: SiteConfig, window: Window, rng: np.random.Generator, reference
) -> bool:
    """The site's bot-detection script.  Returns True when it fires."""
    deployment = site.detector
    if deployment is None:
        return False
    if rng.random() >= deployment.fire_probability:
        return False
    if deployment.signal is DetectionSignal.WEBDRIVER_FLAG:
        return probe_webdriver_flag(window) is True
    if deployment.signal is DetectionSignal.SIDE_EFFECTS:
        result = run_all_probes(window, reference)
        return result.bot_suspected
    # DetectionSignal.OTHER: non-fingerprint signal; already gated by
    # fire_probability above.
    return True


def _scripted_scroll(bus, browser: int) -> None:
    """The visit's scripted scroll, issued over the bus."""
    bus.publish(RunScript(script="window.scrollTo(0, 0)", browser=browser))


def _confront_hostile(
    site: SiteConfig,
    window: Window,
    rng: np.random.Generator,
    *,
    bus,
    browser: int,
    visit_index: int,
    attempt: int,
) -> Optional[str]:
    """Let the site's hostile archetype obstruct the visit.

    Installs the archetype's furniture into the live document and
    publishes the matching :class:`~repro.bus.events.Resolvable`.  A
    watchdog that resolves it lets the visit proceed (performing or
    replaying the interrupted scripted scroll); an unresolved event
    degrades gracefully into the returned typed failure reason -- never
    an exception.
    """
    live = bus is not None and not isinstance(bus, NullBus)
    hostile = site.hostile

    def finish_actions() -> None:
        if live:
            _scripted_scroll(bus, browser)

    if hostile is HostileArchetype.STALLING:
        # One dedicated draw decides whether this attempt stalls; plain
        # pages never reach here, so their rng streams are untouched.
        if rng.random() >= site.hostile_intensity:
            finish_actions()
            return None
        event = resolve_or_none(
            bus,
            PageStalled(
                domain=site.domain, visit_index=visit_index, attempt=attempt
            ),
        )
        if event is not None and event.resolved:
            return FailureReason.STALLED
        return FailureReason.STALLED_UNBOUNDED

    if hostile is HostileArchetype.MODAL_OVERLAY:
        kind = "cookie-banner" if site.rank % 2 == 0 else "modal"
        overlay = install_overlay(window.document, kind=kind)
        event = resolve_or_none(
            bus,
            OverlayDetected(
                domain=site.domain,
                kind=kind,
                dismiss=overlay.remove,
                action_chain=[finish_actions],
            ),
        )
        if event is not None and event.resolved:
            return None
        return FailureReason.MODAL_OVERLAY

    if hostile is HostileArchetype.CHALLENGE_INTERSTITIAL:
        interstitial = install_challenge(window.document)
        event = resolve_or_none(
            bus,
            ChallengeDetected(domain=site.domain, wait_out=interstitial.remove),
        )
        if event is not None and event.resolved:
            finish_actions()
            return None
        return FailureReason.CHALLENGE_INTERSTITIAL

    if hostile is HostileArchetype.HIDDEN_INPUT:
        hidden = install_hidden_input(window.document)

        def fill_direct() -> None:
            hidden.value = "crawler@example.org"

        event = resolve_or_none(
            bus,
            InputObstructed(
                domain=site.domain,
                element_id=hidden.id,
                fill_direct=fill_direct,
            ),
        )
        if event is not None and event.resolved and hidden.value:
            finish_actions()
            return None
        return FailureReason.HIDDEN_INPUT

    finish_actions()
    return None


def simulate_visit(
    site: SiteConfig,
    *,
    extension: Optional[SpoofingExtension],
    visit_index: int,
    rng: np.random.Generator,
    reference=None,
    per_visit_failure: float = 0.002,
    driver=None,
    injector=None,
    bus=None,
    browser: int = 0,
    attempt: int = 0,
) -> VisitRecord:
    """Simulate one crawler visit to ``site``.

    ``driver`` (a :class:`repro.webdriver.driver.WebDriver`) reuses a
    supervisor-managed browser instance instead of building a fresh
    window; its caller is then responsible for extension injection.
    ``injector`` (an armed :class:`repro.faults.FaultInjector`) routes
    the visit through the real WebDriver command sequence -- navigate,
    element lookup, scripted scroll -- so scheduled faults surface as
    the typed exceptions a live crawl would see.
    ``bus`` (a live :class:`repro.bus.EventBus` with a
    :class:`~repro.browser.session.BrowserSession` attached for
    ``browser``) routes that same command sequence through command
    events instead of direct driver calls, and lets watchdog
    subscribers resolve the site's hostile archetype; without a bus,
    hostile pages degrade into their typed failure immediately.
    """
    record = VisitRecord(
        domain=site.domain, rank=site.rank, visit_index=visit_index, reached=True
    )
    if site.unreachable:
        record.reached = False
        record.failure_reason = FailureReason.UNREACHABLE
        return record
    if injector is not None:
        # Process-level faults (OOM) strike before the browser acts.
        injector.on_hook("visit")
    if rng.random() < per_visit_failure:
        record.reached = False
        record.failure_reason = FailureReason.TRANSIENT
        return record

    # Build (or reuse) the automated browser and let the extension act
    # on the page.
    if driver is not None:
        window = driver.window
    else:
        window = Window(profile=NavigatorProfile(webdriver=True))
        if injector is not None:
            from repro.webdriver.driver import WebDriver

            # The driver marks the navigator *before* the extension
            # spoofs it, as in a real instrumented browser.
            driver = WebDriver(window)
        if extension is not None:
            extension.inject(window)
    use_bus = (
        bus is not None and not isinstance(bus, NullBus) and driver is not None
    )
    if use_bus:
        previous_injector = driver.fault_injector
        if injector is not None:
            driver.fault_injector = injector
        try:
            bus.publish(
                NavigateToUrl(url=f"https://{site.domain}/", browser=browser)
            )
            bus.publish(
                QueryElements(by="tag name", value="body", browser=browser)
            )
            hostile_failure = _confront_hostile(
                site,
                window,
                rng,
                bus=bus,
                browser=browser,
                visit_index=visit_index,
                attempt=attempt,
            )
            if hostile_failure is not None:
                record.reached = False
                record.failure_reason = hostile_failure
                return record
        finally:
            driver.fault_injector = previous_injector
    elif injector is not None:
        previous_injector = driver.fault_injector
        driver.fault_injector = injector
        try:
            driver.get(f"https://{site.domain}/")
            driver.find_elements("tag name", "body")
            driver.execute_script("window.scrollTo(0, 0)")
        finally:
            driver.fault_injector = previous_injector
    elif site.hostile is not None:
        hostile_failure = _confront_hostile(
            site,
            window,
            rng,
            bus=None,
            browser=browser,
            visit_index=visit_index,
            attempt=attempt,
        )
        if hostile_failure is not None:
            record.reached = False
            record.failure_reason = hostile_failure
            return record

    ledger = getattr(window, "probe_ledger", None)
    ledger_start = len(ledger) if ledger is not None else 0
    detected = _run_site_detector(site, window, rng, reference)
    if ledger is not None and driver is not None:
        delta = len(ledger) - ledger_start
        if delta:
            # Tie the visit's ledger slice into the span tree: the event
            # carries the entry-count delta, the ledger itself carries
            # the per-access detail.
            driver.tracer.event("probe.ledger", entries=delta)
    record.detected_as_bot = detected
    reaction = site.detector.reaction if (site.detector and detected) else None

    screenshot = Screenshot(ads_expected=site.ad_slots, ads_shown=site.ad_slots)
    responses: List[HTTPResponse] = [
        HTTPResponse(f"https://{site.domain}/", 200, first_party=True)
    ]

    if reaction is Reaction.BLOCK_PAGE:
        screenshot.blocked = True
        responses[0] = HTTPResponse(f"https://{site.domain}/", 403, first_party=True)
        screenshot.ads_shown = 0
        screenshot.ads_expected = 0  # the block page has no ad slots
    elif reaction is Reaction.CAPTCHA:
        screenshot.captcha = True
        responses[0] = HTTPResponse(f"https://{site.domain}/", 503, first_party=True)
        screenshot.ads_shown = 0
        screenshot.ads_expected = 0
    elif reaction is Reaction.NO_ADS:
        screenshot.ads_shown = 0
    elif reaction is Reaction.LESS_ADS:
        if site.ad_slots > 1:
            screenshot.ads_shown = int(rng.integers(1, site.ad_slots))
        else:
            screenshot.ads_shown = 0
    elif reaction is Reaction.FREEZE_VIDEO:
        screenshot.video_frozen = True
    elif reaction is Reaction.HTTP_ONLY:
        # Subresource blocking: some first-party API calls and trackers
        # answer 403/503; the page still renders.
        for i in range(int(rng.integers(1, 4))):
            status = 403 if rng.random() < 0.7 else 503
            responses.append(
                HTTPResponse(
                    f"https://{site.domain}/api/{i}", status, first_party=True
                )
            )

    # Ordinary first-party subresources.
    if not (screenshot.blocked or screenshot.captcha):
        for i in range(6):
            status = 200
            roll = rng.random()
            if roll < site.first_party_error_rate:
                status = int(rng.choice([404, 403, 500, 503], p=[0.6, 0.15, 0.15, 0.1]))
            responses.append(
                HTTPResponse(f"https://{site.domain}/assets/{i}", status, first_party=True)
            )

        # Third parties (ads, trackers, CDNs) with web-dynamics noise.
        for i in range(site.n_third_party):
            status = 200
            roll = rng.random()
            if roll < site.third_party_error_rate:
                status = int(
                    rng.choice(
                        [404, 400, 403, 410, 429, 500, 502, 503],
                        p=[0.48, 0.12, 0.1, 0.05, 0.05, 0.1, 0.05, 0.05],
                    )
                )
            responses.append(
                HTTPResponse(f"https://tp-{i}.example/r", status, first_party=False)
            )

        # Ad-auction noise: occasionally fewer ads regardless of detection.
        if reaction is None and screenshot.ads_expected > 0:
            if rng.random() < site.ad_noise_probability:
                screenshot.ads_shown = int(rng.integers(0, screenshot.ads_expected))

    # Breakage: the proxied navigator trips the site's own scripts.
    if extension is not None and site.breakage is not None:
        if site.breakage == "layout":
            screenshot.layout_deformed = True
        elif site.breakage == "video":
            screenshot.video_frozen = True

    record.responses = responses
    record.screenshot = screenshot
    return record
