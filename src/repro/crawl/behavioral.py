"""The practical evaluation the paper leaves as future work.

    "The conceptual discussion of HLISA's limitations offers a framework
    to reason about its capabilities but lacks concrete data.  A
    practical evaluation would be desirable, but such necessitates
    detectors."  -- Section 5

This module supplies the missing piece: a population of sites that
deploy *interaction-based* detector batteries at the arms-race levels,
and a crawler that actually interacts with each page.  The outcome is
the blocked-visit rate per (interaction style x site detector level) --
concrete data for the Fig. 3 ladder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.detection.base import DetectionLevel
from repro.detection.battery import DetectorBattery
from repro.events.recorder import EventRecorder
from repro.experiment.agents import Agent
from repro.experiment.tasks import BrowsingScenario


@dataclass
class BehavioralSite:
    """A site running an interaction-detector battery."""

    domain: str
    detector_level: DetectionLevel

    def judges(self, recorder: EventRecorder) -> bool:
        """Whether this site's battery flags the recorded visit."""
        return DetectorBattery(self.detector_level).evaluate(recorder).is_bot


@dataclass
class BehavioralCrawlResult:
    """Blocked-visit rates per interaction style and site level."""

    #: style -> detector level -> (blocked, total)
    outcomes: Dict[str, Dict[DetectionLevel, List[int]]] = field(default_factory=dict)

    def record(self, style: str, level: DetectionLevel, blocked: bool) -> None:
        per_style = self.outcomes.setdefault(style, {})
        counts = per_style.setdefault(level, [0, 0])
        counts[0] += int(blocked)
        counts[1] += 1

    def blocked_rate(self, style: str, level: DetectionLevel) -> float:
        blocked, total = self.outcomes[style][level]
        return blocked / total if total else 0.0

    def format_table(self) -> str:
        levels = sorted({lvl for per in self.outcomes.values() for lvl in per})
        header = "interaction style    " + "  ".join(
            f"L{int(level)} sites" for level in levels
        )
        lines = [header]
        for style in self.outcomes:
            cells = "  ".join(
                f"{self.blocked_rate(style, level):8.0%}" for level in levels
            )
            lines.append(f"{style:20s} {cells}")
        return "\n".join(lines)


def make_behavioral_population(
    sites_per_level: int = 3,
    levels: Sequence[DetectionLevel] = (
        DetectionLevel.ARTIFICIAL,
        DetectionLevel.DEVIATION,
        DetectionLevel.CONSISTENCY,
    ),
) -> List[BehavioralSite]:
    """Sites deploying batteries at each interaction-detection level."""
    population: List[BehavioralSite] = []
    for level in levels:
        for i in range(sites_per_level):
            population.append(
                BehavioralSite(
                    domain=f"behavioral-l{int(level)}-{i}.example",
                    detector_level=level,
                )
            )
    return population


def run_behavioral_crawl(
    agents: Dict[str, Agent],
    population: Optional[List[BehavioralSite]] = None,
    visits_per_site: int = 1,
    scenario: Optional[BrowsingScenario] = None,
    seed: int = 7,
) -> BehavioralCrawlResult:
    """Crawl the behavioral population with each interaction style.

    Each visit performs the browsing scenario in a fresh session; the
    site's battery judges the recording.  Recordings are generated per
    (agent, visit) and shared across same-level sites of that visit --
    a site only ever sees its own visit's events.
    """
    population = population or make_behavioral_population()
    scenario = scenario or BrowsingScenario(clicks=40)
    rng = np.random.default_rng(seed)
    result = BehavioralCrawlResult()
    levels = sorted({site.detector_level for site in population})
    for style, agent in agents.items():
        for visit in range(visits_per_site):
            recorder = scenario.run(agent).recorder
            for site in population:
                result.record(style, site.detector_level, site.judges(recorder))
    return result
