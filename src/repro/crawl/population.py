"""The synthetic web population for the field study.

Deployment rates are calibrated against the *baseline* column of Table 2
(what a detectable OpenWPM experiences): visible bot reactions on ~1.7 %
of reachable sites, split across ad removal, blocking pages/CAPTCHAs and
frozen video; a further set of sites reacts at the HTTP level only
(Fig. 4's 403/503 surplus); a couple of sites' own scripts break when
``navigator`` is proxied (Section 3.2's breakage findings).

What the *extension* column looks like is not configured anywhere --
sites run their actual fingerprint probes against the actual (spoofed)
navigator object at visit time, so the Table 2 deltas are produced by the
spoofing mechanics, not by constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

import numpy as np


class DetectionSignal(Enum):
    """What a site's bot detector looks at."""

    #: ``navigator.webdriver`` only (the dominant real-world check,
    #: per Vastel et al. [36]).
    WEBDRIVER_FLAG = "webdriver-flag"
    #: webdriver flag *or* any Table 1 side effect (a sophisticated
    #: detector that also spots spoofing attempts).
    SIDE_EFFECTS = "side-effects"
    #: A non-fingerprint signal (IP reputation, rate limits): fires with
    #: a fixed probability regardless of spoofing.
    OTHER = "other"


class HostileArchetype(Enum):
    """Page pathologies a measurement tool must degrade gracefully on.

    These are crawler-hostile *mechanics*, not bot detectors: the page
    obstructs automation for every visitor (Krumnow et al.'s reliability
    pathologies; "Detecting Bot Detection"'s interstitial catalog).
    Whether a visit survives one depends on the supervising watchdogs,
    not on spoofing.
    """

    #: A full-page modal/cookie-consent overlay blocks interaction until
    #: dismissed.
    MODAL_OVERLAY = "modal-overlay"
    #: A challenge interstitial gates the page behind a wait.
    CHALLENGE_INTERSTITIAL = "challenge-interstitial"
    #: A required input is hidden/tiny: pointer interaction cannot reach
    #: it, only a scripted direct fill can.
    HIDDEN_INPUT = "hidden-input"
    #: The page stalls, consuming the visit's step budget without
    #: progress (per attempt, with probability ``hostile_intensity``).
    STALLING = "stalling"


class Reaction(Enum):
    """How a site reacts to a detected bot."""

    BLOCK_PAGE = "block-page"  # visible blocking page, first-party 403
    CAPTCHA = "captcha"  # visible challenge, first-party 503
    NO_ADS = "no-ads"  # all ad slots left empty
    LESS_ADS = "less-ads"  # some ad slots left empty
    FREEZE_VIDEO = "freeze-video"  # video element never loads
    HTTP_ONLY = "http-only"  # 403/503 on subresources, no visible change


@dataclass
class DetectorDeployment:
    """A bot detector deployed on one site."""

    signal: DetectionSignal
    reaction: Reaction
    #: Probability the check runs (and reacts) on a given visit; real
    #: deployments sample traffic.
    fire_probability: float = 1.0


@dataclass
class SiteConfig:
    """One site of the population."""

    rank: int
    domain: str
    detector: Optional[DetectorDeployment] = None
    #: Site never responds (DNS/parking/geo-blocks); Table 2 reached 921
    #: of 1,000 sites.
    unreachable: bool = False
    #: Site's own scripts misbehave when navigator is proxied
    #: (Section 3.2 found a deformed layout and an ever-loading video).
    breakage: Optional[str] = None  # None | "layout" | "video"
    ad_slots: int = 3
    has_video: bool = False
    #: Third-party requests per visit.
    n_third_party: int = 30
    #: Baseline per-request error rates (web dynamics, not bot related).
    third_party_error_rate: float = 0.02
    first_party_error_rate: float = 0.004
    #: Per-visit probability an ad auction simply fills fewer slots.
    ad_noise_probability: float = 0.0002
    #: Crawler-hostile page mechanics (None = plain page).
    hostile: Optional[HostileArchetype] = None
    #: For ``STALLING``: per-attempt probability the stall manifests.
    hostile_intensity: float = 0.4


@dataclass
class PopulationConfig:
    """Knobs for :func:`generate_population` (defaults = paper scale)."""

    n_sites: int = 1000
    seed: int = 2021
    #: Fraction of sites that never respond (-> ~921 reached).
    unreachable_fraction: float = 0.079
    #: Visible-reaction detector counts (calibrated to Table 2 col. 1).
    n_no_ads_detectors: int = 4
    n_less_ads_detectors: int = 2
    n_block_detectors: int = 5
    n_captcha_detectors: int = 3
    n_freeze_video_detectors: int = 1
    #: One "no ads" site keyed on a non-fingerprint signal: it keeps
    #: firing even against the extension (Table 2 col. 2's residual).
    n_other_signal_ad_detectors: int = 1
    #: One sophisticated blocker that also checks Table 1 side effects,
    #: sampling a subset of visits (Table 2: "only one site that deploys
    #: blocking against our extended OpenWPM version for a smaller subset
    #: of visits").
    n_side_effect_blockers: int = 1
    side_effect_fire_probability: float = 0.4
    #: Probability an ordinary blocking check runs on a given visit
    #: (Table 2 col. 1 shows 49 blocked visits on 8 sites of 8 visits).
    block_fire_probability: float = 0.77
    #: HTTP-only detectors (Fig. 4's 403/503 surplus).
    n_http_only_detectors: int = 25
    #: Sites whose scripts break under a proxied navigator.
    n_layout_breakage: int = 1
    n_video_breakage: int = 1
    #: Hostile-archetype site counts (all 0 by default: the paper-scale
    #: population is unchanged byte-for-byte unless a robustness study
    #: opts in).  Hostile sites are drawn from the ordinary *reachable*
    #: population on a dedicated rng stream, so enabling them perturbs
    #: no other draw.
    n_modal_overlay_sites: int = 0
    n_challenge_sites: int = 0
    n_hidden_input_sites: int = 0
    n_stalling_sites: int = 0
    #: Per-attempt stall probability for the stalling sites.
    stall_intensity: float = 0.4


def generate_population(config: Optional[PopulationConfig] = None) -> List[SiteConfig]:
    """Generate the site population (deterministic for a given seed)."""
    config = config or PopulationConfig()
    rng = np.random.default_rng(config.seed)
    sites = [
        SiteConfig(
            rank=i + 1,
            domain=f"site-{i + 1:04d}.example",
            ad_slots=int(rng.integers(1, 6)),
            has_video=bool(rng.random() < 0.25),
            n_third_party=int(rng.integers(12, 55)),
        )
        for i in range(config.n_sites)
    ]

    # Choose distinct reachable sites for the special roles.
    special_count = (
        config.n_no_ads_detectors
        + config.n_less_ads_detectors
        + config.n_block_detectors
        + config.n_captcha_detectors
        + config.n_freeze_video_detectors
        + config.n_other_signal_ad_detectors
        + config.n_side_effect_blockers
        + config.n_http_only_detectors
        + config.n_layout_breakage
        + config.n_video_breakage
    )
    chosen = rng.choice(config.n_sites, size=special_count, replace=False)
    cursor = 0

    def take(n: int) -> List[SiteConfig]:
        nonlocal cursor
        picked = [sites[i] for i in chosen[cursor : cursor + n]]
        cursor += n
        return picked

    for site in take(config.n_no_ads_detectors):
        site.detector = DetectorDeployment(
            DetectionSignal.WEBDRIVER_FLAG, Reaction.NO_ADS
        )
    for site in take(config.n_less_ads_detectors):
        site.detector = DetectorDeployment(
            DetectionSignal.WEBDRIVER_FLAG, Reaction.LESS_ADS
        )
        site.ad_slots = max(site.ad_slots, 3)  # "less ads" needs slots left
    for site in take(config.n_block_detectors):
        site.detector = DetectorDeployment(
            DetectionSignal.WEBDRIVER_FLAG,
            Reaction.BLOCK_PAGE,
            fire_probability=config.block_fire_probability,
        )
    for site in take(config.n_captcha_detectors):
        site.detector = DetectorDeployment(
            DetectionSignal.WEBDRIVER_FLAG,
            Reaction.CAPTCHA,
            fire_probability=config.block_fire_probability,
        )
    for site in take(config.n_freeze_video_detectors):
        site.detector = DetectorDeployment(
            DetectionSignal.WEBDRIVER_FLAG, Reaction.FREEZE_VIDEO
        )
        site.has_video = True
    for site in take(config.n_other_signal_ad_detectors):
        site.detector = DetectorDeployment(
            DetectionSignal.OTHER, Reaction.NO_ADS, fire_probability=0.5
        )
    for site in take(config.n_side_effect_blockers):
        site.detector = DetectorDeployment(
            DetectionSignal.SIDE_EFFECTS,
            Reaction.BLOCK_PAGE,
            fire_probability=config.side_effect_fire_probability,
        )
    for site in take(config.n_http_only_detectors):
        site.detector = DetectorDeployment(
            DetectionSignal.WEBDRIVER_FLAG, Reaction.HTTP_ONLY
        )
    for site in take(config.n_layout_breakage):
        site.breakage = "layout"
    for site in take(config.n_video_breakage):
        site.breakage = "video"
        site.has_video = True

    # Unreachable sites are drawn from the *ordinary* population: a site
    # that deploys a bot detector (or breaks under spoofing) evidently
    # responds, so the special roles stay reachable.
    chosen_set = set(chosen)
    ordinary = [i for i in range(config.n_sites) if i not in chosen_set]
    n_unreachable = min(
        int(round(config.n_sites * config.unreachable_fraction)), len(ordinary)
    )
    for i in rng.choice(ordinary, size=n_unreachable, replace=False):
        sites[i].unreachable = True

    _assign_hostile_sites(sites, config, ordinary)
    return sites


#: Sub-stream tag for hostile-site selection (disjoint from the main
#: population stream, so default configs draw nothing from it).
_HOSTILE_STREAM = 0x48


def _assign_hostile_sites(
    sites: List[SiteConfig], config: PopulationConfig, ordinary: List[int]
) -> None:
    """Mark hostile-archetype sites (no-op with the default counts).

    Hostile sites come from the ordinary *reachable* population -- a
    page that throws up an overlay or stalls evidently responds, and
    keeping the detector sites plain keeps the Table 2 calibration
    orthogonal to robustness studies.  Selection uses its own seeded rng
    stream: enabling hostile counts never perturbs the draws that shape
    the rest of the population.
    """
    quotas = [
        (HostileArchetype.MODAL_OVERLAY, config.n_modal_overlay_sites),
        (HostileArchetype.CHALLENGE_INTERSTITIAL, config.n_challenge_sites),
        (HostileArchetype.HIDDEN_INPUT, config.n_hidden_input_sites),
        (HostileArchetype.STALLING, config.n_stalling_sites),
    ]
    total = sum(count for _, count in quotas)
    if total == 0:
        return
    eligible = [i for i in ordinary if not sites[i].unreachable]
    if total > len(eligible):
        raise ValueError(
            f"population has {len(eligible)} eligible sites for "
            f"{total} hostile roles"
        )
    hostile_rng = np.random.default_rng([config.seed, _HOSTILE_STREAM])
    chosen = hostile_rng.choice(eligible, size=total, replace=False)
    cursor = 0
    for archetype, count in quotas:
        for i in chosen[cursor : cursor + count]:
            sites[i].hostile = archetype
            sites[i].hostile_intensity = config.stall_intensity
        cursor += count


def hostile_population(
    n_sites: int = 200,
    seed: int = 2021,
    hostile_fraction: float = 0.2,
    stall_intensity: float = 0.4,
) -> List[SiteConfig]:
    """A population with ``hostile_fraction`` of sites hostile, split
    evenly across the four archetypes (the robustness-ablation subject)."""
    per_archetype = max(1, int(round(n_sites * hostile_fraction / 4.0)))
    config = PopulationConfig(
        n_sites=n_sites,
        seed=seed,
        n_modal_overlay_sites=per_archetype,
        n_challenge_sites=per_archetype,
        n_hidden_input_sites=per_archetype,
        n_stalling_sites=per_archetype,
        stall_intensity=stall_intensity,
    )
    return generate_population(config)
