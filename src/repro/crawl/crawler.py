"""The OpenWPM-like crawler."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.crawl.population import SiteConfig
from repro.crawl.visit import VisitRecord, simulate_visit
from repro.detection.fingerprint import _reference_navigator
from repro.spoofing.extension import SpoofingExtension


@dataclass
class CrawlResult:
    """All visit records of one crawl configuration."""

    crawler_name: str
    records: List[VisitRecord] = field(default_factory=list)

    # -- totals ----------------------------------------------------------

    @property
    def successful_visits(self) -> List[VisitRecord]:
        return [r for r in self.records if r.reached]

    @property
    def failed_visits(self) -> List[VisitRecord]:
        return [r for r in self.records if not r.reached]

    @property
    def recovered_visits(self) -> List[VisitRecord]:
        """Visits that succeeded only after at least one failed attempt."""
        return [r for r in self.records if r.reached and r.recovered]

    def failure_counts(self) -> Dict[str, int]:
        """Failed visits per failure reason (the taxonomy values)."""
        counts: Dict[str, int] = {}
        for record in self.failed_visits:
            reason = record.failure_reason or "unknown"
            counts[reason] = counts.get(reason, 0) + 1
        return counts

    def attempts_total(self) -> int:
        """All visit attempts made, including retried ones."""
        return sum(r.attempts for r in self.records)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form of the whole crawl (checkpointing, diffing)."""
        return {
            "crawler_name": self.crawler_name,
            "records": [r.to_dict() for r in self.records],
        }

    @property
    def reached_domains(self) -> List[str]:
        return sorted({r.domain for r in self.successful_visits})

    def by_domain(self) -> Dict[str, List[VisitRecord]]:
        grouped: Dict[str, List[VisitRecord]] = {}
        for record in self.successful_visits:
            grouped.setdefault(record.domain, []).append(record)
        return grouped

    def first_party_error_counts(self) -> Dict[str, int]:
        """Per-domain total first-party error responses (for Wilcoxon)."""
        counts: Dict[str, int] = {}
        for record in self.successful_visits:
            counts[record.domain] = counts.get(record.domain, 0) + record.first_party_errors()
        return counts

    def status_code_counts(self, first_party: Optional[bool] = None) -> Dict[int, int]:
        """Occurrences of each status code (optionally split by party)."""
        counts: Dict[int, int] = {}
        for record in self.successful_visits:
            for response in record.responses:
                if first_party is not None and response.first_party != first_party:
                    continue
                counts[response.status] = counts.get(response.status, 0) + 1
        return counts


class OpenWPMCrawler:
    """Visits every site of a population a fixed number of times.

    Parameters
    ----------
    extension:
        ``None`` models stock OpenWPM (column 1 of Table 2); a
        :class:`SpoofingExtension` models OpenWPM+extension (column 2).
    instances:
        Browser instances per site -- the paper ran 8 simultaneously per
        machine to average out web dynamics.
    seed:
        Seed for the visit-level randomness (web dynamics, sampled
        detector checks).  Two crawlers with different seeds model the
        two distinct machines/residential IPs of the paper's setup.
    """

    def __init__(
        self,
        name: str,
        extension: Optional[SpoofingExtension] = None,
        instances: int = 8,
        seed: int = 1,
    ) -> None:
        self.name = name
        self.extension = extension
        self.instances = instances
        self.seed = seed

    def crawl(self, population: Sequence[SiteConfig]) -> CrawlResult:
        """Visit every site ``instances`` times."""
        rng = np.random.default_rng(self.seed)
        reference = _reference_navigator()
        result = CrawlResult(crawler_name=self.name)
        for site in population:
            for visit_index in range(self.instances):
                result.records.append(
                    simulate_visit(
                        site,
                        extension=self.extension,
                        visit_index=visit_index,
                        rng=rng,
                        reference=reference,
                    )
                )
        return result
