"""The watchdog contract (docs/EVENT_BUS.md).

A watchdog is a pluggable bus subscriber owning one recovery concern.
The contract, enforced by convention and by lint rule FLT004:

- handlers are methods named ``on_<event>``; they never swallow
  exceptions with a broad ``except`` and never raise untyped errors --
  a watchdog that cannot recover *leaves the event unresolved* so the
  publisher degrades gracefully into a typed failure;
- every intervention is observable: :meth:`Watchdog.note` emits a
  ``watchdog.<name>.<action>`` metrics counter and trace event;
- simulated work (waiting out a challenge, dismissing an overlay) is
  paid on the shared virtual clock, so recovery cost lands on the same
  checkpointed timeline as everything else;
- per-browser state lives on the :class:`~repro.crawl.supervisor.
  BrowserInstance` (which checkpoints it), never on the watchdog, so
  interrupt/resume stays byte-identical.
"""

from __future__ import annotations

from typing import List


class Watchdog:
    """Base class for pluggable crawl watchdogs.

    Subclasses override :meth:`subscriptions` to register their
    ``on_*`` handlers; :meth:`attach` wires the supervisor's bus,
    clock, tracer, metrics and config onto the instance first.
    """

    #: Short name used in ``watchdog.<name>.*`` metrics and as
    #: ``resolved_by`` on resolved events.
    name = "watchdog"

    def __init__(self) -> None:
        self.supervisor = None
        self.bus = None
        self.clock = None
        self.tracer = None
        self.metrics = None
        self.config = None
        self._subscriptions: List = []

    def attach(self, supervisor) -> None:
        """Wire this watchdog into ``supervisor``'s bus."""
        self.supervisor = supervisor
        self.bus = supervisor.bus
        self.clock = supervisor.clock
        self.tracer = supervisor.tracer
        self.metrics = supervisor.metrics
        self.config = supervisor.config
        self._subscriptions = self.subscriptions()

    def detach(self) -> None:
        """Remove this watchdog's handlers from the bus."""
        for subscription in self._subscriptions:
            self.bus.unsubscribe(subscription)
        self._subscriptions = []

    def subscriptions(self) -> List:
        """Register handlers on ``self.bus``; return the tokens."""
        return []

    def note(self, action: str, **attrs) -> None:
        """Record one intervention: counter + trace event."""
        self.metrics.counter(f"watchdog.{self.name}.{action}").inc()
        if self.tracer.enabled:
            self.tracer.event(f"watchdog.{self.name}.{action}", **attrs)
