"""ModalOverlayWatchdog: overlays, interstitials, obstructed inputs."""

from __future__ import annotations

from typing import List

from repro.bus.events import ChallengeDetected, InputObstructed, OverlayDetected
from repro.crawl.watchdogs.base import Watchdog


class ModalOverlayWatchdog(Watchdog):
    """Recovers from in-page obstructions instead of losing the visit.

    Three related interventions, each paid for on the virtual clock:

    - **overlays** (:class:`OverlayDetected`): dismiss the modal/cookie
      overlay, then *replay the interrupted action chain* so the visit
      continues exactly where the overlay cut it off;
    - **challenge interstitials** (:class:`ChallengeDetected`): wait the
      challenge out (``SupervisorConfig.challenge_wait_ms``) rather than
      abandoning the page;
    - **hidden/tiny inputs** (:class:`InputObstructed`): fall back to a
      scripted direct fill, the standard automation answer to elements
      pointer interaction cannot reach.
    """

    name = "modal"

    def subscriptions(self) -> List:
        return [
            self.bus.subscribe(
                OverlayDetected, self.on_overlay_detected, name="modal.overlay"
            ),
            self.bus.subscribe(
                ChallengeDetected,
                self.on_challenge_detected,
                name="modal.challenge",
            ),
            self.bus.subscribe(
                InputObstructed,
                self.on_input_obstructed,
                name="modal.obstructed",
            ),
        ]

    def on_overlay_detected(self, event: OverlayDetected) -> None:
        if event.resolved:
            return
        self.clock.advance(self.config.overlay_dismiss_ms)
        if event.dismiss is not None:
            event.dismiss()
        for action in event.action_chain:
            action()
        self.note("overlay_dismissed", domain=event.domain, kind=event.kind)
        event.resolve(self.name, "dismissed")

    def on_challenge_detected(self, event: ChallengeDetected) -> None:
        if event.resolved:
            return
        self.clock.advance(self.config.challenge_wait_ms)
        if event.wait_out is not None:
            event.wait_out()
        self.note("challenge_waited_out", domain=event.domain)
        event.resolve(self.name, "waited-out")

    def on_input_obstructed(self, event: InputObstructed) -> None:
        if event.resolved:
            return
        self.clock.advance(self.config.direct_fill_ms)
        if event.fill_direct is not None:
            event.fill_direct()
        self.note(
            "direct_fill", domain=event.domain, element=event.element_id
        )
        event.resolve(self.name, "direct-fill")
