"""CrashWatchdog: browser death -> immediate recycle."""

from __future__ import annotations

from typing import List

from repro.bus.events import BrowserRecycleRequested, FaultObserved
from repro.crawl.watchdogs.base import Watchdog


class CrashWatchdog(Watchdog):
    """Requests a recycle the moment a browser-fatal fault is observed.

    Mirrors OpenWPM's browser-manager restart: a crashed or OOM-killed
    browser is useless, so the dead instance is torn down and respawned
    before the next attempt rather than being retried into.
    """

    name = "crash"

    def subscriptions(self) -> List:
        return [
            self.bus.subscribe(
                FaultObserved, self.on_fault_observed, name="crash.fault"
            )
        ]

    def on_fault_observed(self, event: FaultObserved) -> None:
        if not event.browser_fatal:
            return
        self.note(
            "recycle_requested",
            fault_type=event.fault_type,
            browser=event.instance.index if event.instance else -1,
        )
        self.bus.publish(
            BrowserRecycleRequested(reason="fatal-fault", instance=event.instance)
        )
