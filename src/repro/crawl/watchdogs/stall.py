"""StallWatchdog: bound stalling pages at the step budget."""

from __future__ import annotations

from typing import List

from repro.bus.events import PageStalled
from repro.crawl.watchdogs.base import Watchdog


class StallWatchdog(Watchdog):
    """Aborts an attempt whose page is eating the step budget.

    Resolving :class:`~repro.bus.events.PageStalled` with ``"aborted"``
    turns an unbounded hang into a *bounded, retryable* failure: the
    supervisor charges exactly ``visit_budget_ms`` and retries with
    backoff (``failure_reason="stalled"``).  Without this watchdog the
    stall degrades to the permanent ``"stalled-unbounded"``, charged at
    the much larger external-kill cost.
    """

    name = "stall"

    def subscriptions(self) -> List:
        return [
            self.bus.subscribe(
                PageStalled, self.on_page_stalled, name="stall.page_stalled"
            )
        ]

    def on_page_stalled(self, event: PageStalled) -> None:
        if event.resolved:
            return
        self.note("aborted", domain=event.domain, attempt=event.attempt)
        event.resolve(self.name, "aborted")
