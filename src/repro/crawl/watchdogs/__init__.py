"""Pluggable crawl watchdogs (the bubus/watchdog pattern).

Each watchdog owns one recovery concern and plugs into the supervisor's
:class:`~repro.bus.EventBus` as an ordinary subscriber; the supervisor
itself only executes :class:`~repro.bus.events.BrowserRecycleRequested`.
``default_watchdogs()`` is the production set; pass ``watchdogs=()`` to
:class:`~repro.crawl.supervisor.CrawlSupervisor` for the unprotected
ablation baseline.
"""

from typing import Tuple

from repro.crawl.watchdogs.base import Watchdog
from repro.crawl.watchdogs.crash import CrashWatchdog
from repro.crawl.watchdogs.modal import ModalOverlayWatchdog
from repro.crawl.watchdogs.recycle import RecycleWatchdog
from repro.crawl.watchdogs.stall import StallWatchdog


def default_watchdogs() -> Tuple[Watchdog, ...]:
    """The production watchdog set, in deterministic registration order."""
    return (
        CrashWatchdog(),
        StallWatchdog(),
        ModalOverlayWatchdog(),
        RecycleWatchdog(),
    )


__all__ = [
    "Watchdog",
    "CrashWatchdog",
    "StallWatchdog",
    "ModalOverlayWatchdog",
    "RecycleWatchdog",
    "default_watchdogs",
]
