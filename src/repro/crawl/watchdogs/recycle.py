"""RecycleWatchdog: health-based proactive recycling."""

from __future__ import annotations

from typing import List

from repro.bus.events import BrowserRecycleRequested, FaultObserved
from repro.crawl.watchdogs.base import Watchdog


class RecycleWatchdog(Watchdog):
    """Recycles a browser whose accumulated fault count crosses the
    configured budget (``SupervisorConfig.recycle_after_faults``).

    The running count lives on the :class:`~repro.crawl.supervisor.
    BrowserInstance` -- checkpointed state, so a resumed crawl reaches
    the budget exactly where an uninterrupted one would.  Browser-fatal
    faults are the :class:`CrashWatchdog`'s concern and already reset
    the count through the recycle itself.
    """

    name = "recycle"

    def subscriptions(self) -> List:
        return [
            self.bus.subscribe(
                FaultObserved, self.on_fault_observed, name="recycle.fault"
            )
        ]

    def on_fault_observed(self, event: FaultObserved) -> None:
        if event.browser_fatal or event.instance is None:
            return
        if event.instance.note_fault() >= self.config.recycle_after_faults:
            self.note(
                "recycle_requested",
                browser=event.instance.index,
                fault_count=event.instance.fault_count,
            )
            self.bus.publish(
                BrowserRecycleRequested(
                    reason="fault-budget", instance=event.instance
                )
            )
