"""Evaluation pipelines: Table 2, the breakage report, and Fig. 4.

``evaluate_screenshots`` reproduces the paper's screenshot review: for
each crawler it counts sites and visits showing missing ads (split into
"no ads"/"less ads"), blocking pages/CAPTCHAs, and frozen video elements.

``evaluate_http_errors`` reproduces Appendix B / Fig. 4: status-code
occurrence counts per crawler (codes above a threshold), split by party,
plus the Wilcoxon matched-pairs signed-rank test on per-site first-party
and third-party error counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.crawl.crawler import CrawlResult
from repro.stats.wilcoxon import WilcoxonResult, wilcoxon_signed_rank

if TYPE_CHECKING:  # avoid a runtime cycle through crawl.supervisor
    from repro.crawl.supervisor import SupervisorStats


@dataclass
class ScreenshotCategory:
    """One Table 2 row for one crawler: affected sites and visits."""

    sites: int = 0
    visits: int = 0


@dataclass
class ScreenshotEvaluation:
    """Table 2 for one crawler configuration."""

    crawler_name: str
    total_sites: int = 0
    total_visits: int = 0
    #: Visits that never produced a screenshot (crawler- or site-side
    #: failure); kept out of every category so crawl health cannot leak
    #: into the paper's site-reaction numbers.
    failed_visits: int = 0
    missing_ads: ScreenshotCategory = field(default_factory=ScreenshotCategory)
    no_ads: ScreenshotCategory = field(default_factory=ScreenshotCategory)
    less_ads: ScreenshotCategory = field(default_factory=ScreenshotCategory)
    blocking_captchas: ScreenshotCategory = field(default_factory=ScreenshotCategory)
    frozen_video: ScreenshotCategory = field(default_factory=ScreenshotCategory)

    @property
    def affected_sites(self) -> int:
        """Sites showing any visible sign of bot detection."""
        return self.missing_ads.sites + self.blocking_captchas.sites + self.frozen_video.sites

    def rows(self) -> List[Tuple[str, int, int]]:
        """Table rows as ``(label, sites, visits)``."""
        return [
            ("total", self.total_sites, self.total_visits),
            ("missing ads", self.missing_ads.sites, self.missing_ads.visits),
            ("- no ads", self.no_ads.sites, self.no_ads.visits),
            ("- less ads", self.less_ads.sites, self.less_ads.visits),
            ("blocking/CAPTCHAs", self.blocking_captchas.sites, self.blocking_captchas.visits),
            ("frozen video element(s)", self.frozen_video.sites, self.frozen_video.visits),
        ]


def evaluate_screenshots(result: CrawlResult) -> ScreenshotEvaluation:
    """The Table 2 screenshot review for one crawl."""
    evaluation = ScreenshotEvaluation(crawler_name=result.crawler_name)
    by_domain = result.by_domain()
    evaluation.total_sites = len(by_domain)
    evaluation.total_visits = len(result.successful_visits)
    evaluation.failed_visits = len(result.failed_visits)
    for domain, records in by_domain.items():
        no_ads_visits = sum(1 for r in records if r.screenshot.missing_all_ads)
        less_ads_visits = sum(1 for r in records if r.screenshot.missing_some_ads)
        blocked_visits = sum(
            1 for r in records if r.screenshot.blocked or r.screenshot.captcha
        )
        frozen_visits = sum(1 for r in records if r.screenshot.video_frozen)
        if no_ads_visits:
            evaluation.no_ads.sites += 1
            evaluation.no_ads.visits += no_ads_visits
        if less_ads_visits:
            evaluation.less_ads.sites += 1
            evaluation.less_ads.visits += less_ads_visits
        if no_ads_visits or less_ads_visits:
            evaluation.missing_ads.sites += 1
            evaluation.missing_ads.visits += no_ads_visits + less_ads_visits
        if blocked_visits:
            evaluation.blocking_captchas.sites += 1
            evaluation.blocking_captchas.visits += blocked_visits
        if frozen_visits:
            evaluation.frozen_video.sites += 1
            evaluation.frozen_video.visits += frozen_visits
    return evaluation


@dataclass
class CrawlHealthReport:
    """Crawl-reliability accounting, separate from the paper's tables.

    Krumnow et al. showed crawler-side failure silently biases web
    measurements; this report makes the failure budget explicit so a
    reader can tell "the site reacted" apart from "the crawler broke".
    """

    crawler_name: str
    total_visits: int = 0
    reached_visits: int = 0
    failed_visits: int = 0
    recovered_visits: int = 0
    attempts_total: int = 0
    failure_counts: Dict[str, int] = field(default_factory=dict)
    #: Supervisor work-done counters (recycled browsers, circuit-breaker
    #: skips, faults observed); zero when the crawl ran unsupervised.
    recycles: int = 0
    breaker_skips: int = 0
    faults_seen: int = 0

    @property
    def reached_fraction(self) -> float:
        if self.total_visits == 0:
            return 1.0
        return self.reached_visits / self.total_visits

    def rows(self) -> List[Tuple[str, int]]:
        """Report rows as ``(label, count)``, taxonomy sorted by size."""
        rows = [
            ("visits", self.total_visits),
            ("reached", self.reached_visits),
            ("failed", self.failed_visits),
            ("recovered by retry", self.recovered_visits),
            ("attempts (incl. retries)", self.attempts_total),
        ]
        if self.recycles or self.breaker_skips or self.faults_seen:
            rows.append(("faults seen", self.faults_seen))
            rows.append(("browser recycles", self.recycles))
            rows.append(("breaker skips", self.breaker_skips))
        for reason in sorted(
            self.failure_counts, key=lambda r: -self.failure_counts[r]
        ):
            rows.append((f"- {reason}", self.failure_counts[reason]))
        return rows


def evaluate_crawl_health(
    result: CrawlResult, stats: Optional["SupervisorStats"] = None
) -> CrawlHealthReport:
    """Summarise reachability, recovery and the failure taxonomy.

    Pass the supervisor's ``stats`` to fold its work-done counters
    (faults seen, browser recycles, breaker skips) into the report; the
    visit-facing numbers always come from the ``CrawlResult`` itself.
    """
    return CrawlHealthReport(
        crawler_name=result.crawler_name,
        total_visits=len(result.records),
        reached_visits=len(result.successful_visits),
        failed_visits=len(result.failed_visits),
        recovered_visits=len(result.recovered_visits),
        attempts_total=result.attempts_total(),
        failure_counts=result.failure_counts(),
        recycles=stats.recycles if stats is not None else 0,
        breaker_skips=stats.breaker_skips if stats is not None else 0,
        faults_seen=stats.faults_seen if stats is not None else 0,
    )


@dataclass
class BreakageReport:
    """Website breakage attributable to the extension (Section 3.2)."""

    deformed_layout_sites: List[str] = field(default_factory=list)
    frozen_video_sites: List[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.deformed_layout_sites) + len(self.frozen_video_sites)


def evaluate_breakage(
    baseline: CrawlResult, extended: CrawlResult
) -> BreakageReport:
    """Breakage = anomalies the *extension* crawl shows and the baseline
    does not (on sites that showed no bot reaction either way)."""
    report = BreakageReport()
    baseline_by_domain = baseline.by_domain()
    for domain, records in extended.by_domain().items():
        base_records = baseline_by_domain.get(domain, [])
        deformed = any(r.screenshot.layout_deformed for r in records)
        deformed_base = any(r.screenshot.layout_deformed for r in base_records)
        if deformed and not deformed_base:
            report.deformed_layout_sites.append(domain)
        frozen = any(r.screenshot.video_frozen for r in records)
        frozen_base = any(
            r.screenshot.video_frozen or r.detected_as_bot for r in base_records
        )
        if frozen and not frozen_base:
            report.frozen_video_sites.append(domain)
    return report


@dataclass
class HTTPErrorEvaluation:
    """Fig. 4 / Appendix B: status-code histogram + significance tests."""

    #: status -> (baseline count, extension count); all parties combined.
    status_counts: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    first_party_wilcoxon: Optional[WilcoxonResult] = None
    third_party_wilcoxon: Optional[WilcoxonResult] = None
    baseline_first_party_errors: int = 0
    extended_first_party_errors: int = 0

    def rows(self, min_occurrences: int = 100) -> List[Tuple[int, int, int]]:
        """Fig. 4's bars: ``(status, baseline, extension)`` for codes with
        more than ``min_occurrences`` occurrences in either crawl."""
        rows = [
            (status, counts[0], counts[1])
            for status, counts in sorted(self.status_counts.items())
            if max(counts) > min_occurrences
        ]
        return rows


def evaluate_http_errors(
    baseline: CrawlResult, extended: CrawlResult
) -> HTTPErrorEvaluation:
    """Compare the two crawls' HTTP responses (Section 3.2 / Appendix B)."""
    evaluation = HTTPErrorEvaluation()
    base_counts = baseline.status_code_counts()
    ext_counts = extended.status_code_counts()
    for status in sorted(set(base_counts) | set(ext_counts)):
        evaluation.status_counts[status] = (
            base_counts.get(status, 0),
            ext_counts.get(status, 0),
        )

    # Wilcoxon matched pairs over per-site error counts (sites reached by
    # both crawls; the paper pairs the two machines' observations).
    def _paired(counter_name: str) -> Tuple[List[float], List[float]]:
        base_map = getattr(baseline, counter_name)()
        ext_map = getattr(extended, counter_name)()
        shared = sorted(set(base_map) & set(ext_map))
        return (
            [float(base_map[d]) for d in shared],
            [float(ext_map[d]) for d in shared],
        )

    base_fp, ext_fp = _paired("first_party_error_counts")
    evaluation.baseline_first_party_errors = int(sum(base_fp))
    evaluation.extended_first_party_errors = int(sum(ext_fp))
    try:
        evaluation.first_party_wilcoxon = wilcoxon_signed_rank(base_fp, ext_fp)
    except ValueError:
        evaluation.first_party_wilcoxon = None

    def _third_party_counts(result: CrawlResult) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in result.successful_visits:
            counts[record.domain] = counts.get(record.domain, 0) + record.third_party_errors()
        return counts

    base_tp_map = _third_party_counts(baseline)
    ext_tp_map = _third_party_counts(extended)
    shared = sorted(set(base_tp_map) & set(ext_tp_map))
    try:
        evaluation.third_party_wilcoxon = wilcoxon_signed_rank(
            [float(base_tp_map[d]) for d in shared],
            [float(ext_tp_map[d]) for d in shared],
        )
    except ValueError:
        evaluation.third_party_wilcoxon = None
    return evaluation
