"""The simulated 1,000-site field study (Section 3.2).

The paper crawls 1,000 random Tranco-top-10K sites with two OpenWPM
configurations (with/without the spoofing extension), 8 browser instances
each, and evaluates screenshots (Table 2) and HTTP status codes (Fig. 4 /
Appendix B).  The live web is replaced by a synthetic population:

- :mod:`repro.crawl.population` -- sites with configurable bot-detector
  deployment (webdriver-flag checkers, a rare side-effect-aware detector,
  HTTP-only blockers), ad slots, videos, breakage susceptibility and
  web-dynamics noise.  Deployment rates are calibrated so the *baseline*
  crawler experiences the paper's magnitudes (visible reactions on ~1.7 %
  of sites); what happens when the extension is enabled is then fully
  mechanical: sites re-run their real fingerprint probes against the real
  (spoofed) navigator.
- :mod:`repro.crawl.crawler` -- the OpenWPM-like crawler.
- :mod:`repro.crawl.supervisor` -- the fault-aware crawl supervisor:
  retries with backoff, per-domain circuit breaking and
  checkpoint/resume (pairs with :mod:`repro.faults`), orchestrated over
  the :mod:`repro.bus` event bus.
- :mod:`repro.crawl.watchdogs` -- pluggable recovery subscribers
  (crash/fault-budget recycling, stall bounding, overlay/challenge/
  hidden-input recovery); ``watchdogs=()`` is the unprotected ablation
  baseline (docs/EVENT_BUS.md).
- :mod:`repro.crawl.evaluation` -- the Table 2 screenshot evaluation, the
  breakage report, the Fig. 4 HTTP-error histogram with the Wilcoxon
  matched-pairs significance test, and the crawl-health report.
"""

from repro.crawl.population import (
    DetectorDeployment,
    DetectionSignal,
    HostileArchetype,
    Reaction,
    SiteConfig,
    PopulationConfig,
    generate_population,
    hostile_population,
)
from repro.crawl.visit import (
    FailureReason,
    HTTPResponse,
    Screenshot,
    VisitRecord,
    simulate_visit,
)
from repro.crawl.crawler import OpenWPMCrawler, CrawlResult
from repro.crawl.supervisor import (
    BrowserInstance,
    CrawlSupervisor,
    SupervisorConfig,
    SupervisorStats,
    visit_coverage,
)
from repro.crawl.watchdogs import (
    CrashWatchdog,
    ModalOverlayWatchdog,
    RecycleWatchdog,
    StallWatchdog,
    Watchdog,
    default_watchdogs,
)
from repro.crawl.evaluation import (
    ScreenshotEvaluation,
    evaluate_screenshots,
    BreakageReport,
    evaluate_breakage,
    HTTPErrorEvaluation,
    evaluate_http_errors,
    CrawlHealthReport,
    evaluate_crawl_health,
)

__all__ = [
    "DetectorDeployment",
    "DetectionSignal",
    "HostileArchetype",
    "Reaction",
    "SiteConfig",
    "PopulationConfig",
    "generate_population",
    "hostile_population",
    "Watchdog",
    "CrashWatchdog",
    "StallWatchdog",
    "ModalOverlayWatchdog",
    "RecycleWatchdog",
    "default_watchdogs",
    "FailureReason",
    "HTTPResponse",
    "Screenshot",
    "VisitRecord",
    "simulate_visit",
    "OpenWPMCrawler",
    "CrawlResult",
    "BrowserInstance",
    "CrawlSupervisor",
    "SupervisorConfig",
    "SupervisorStats",
    "visit_coverage",
    "CrawlHealthReport",
    "evaluate_crawl_health",
    "ScreenshotEvaluation",
    "evaluate_screenshots",
    "BreakageReport",
    "evaluate_breakage",
    "HTTPErrorEvaluation",
    "evaluate_http_errors",
]
