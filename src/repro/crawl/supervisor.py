"""The resilient crawl supervisor: retries, recycling, checkpointing.

:class:`CrawlSupervisor` wraps an :class:`~repro.crawl.crawler.
OpenWPMCrawler` with the recovery behaviour a real field study needs
(and the bare double loop lacks):

- **retry with exponential backoff** -- failed visits are retried up to
  a budget, with deterministic seeded jitter advancing the simulated
  clock (never the wall clock);
- **step budgets** -- hangs and page-load timeouts cost exactly the
  per-visit budget on the simulated timeline (the watchdog semantics);
- **browser recycling** -- a browser instance that accumulated too many
  faults (or died outright) is torn down and re-spawned: fresh
  :class:`~repro.browser.window.Window`, fresh driver, re-injected
  :class:`~repro.spoofing.extension.SpoofingExtension` -- matching
  OpenWPM's browser-restart semantics;
- **per-domain circuit breaker** -- a host that keeps failing is
  skipped instead of hammered;
- **checkpoint/resume** -- completed records are flushed to JSON at
  site boundaries, so an interrupted crawl resumes without re-visiting
  completed (site, visit_index) pairs, and the resumed result is
  byte-identical to an uninterrupted run;
- **observability** -- every crawl builds a :mod:`repro.obs` span tree
  (crawl -> visit -> attempt -> WebDriver commands) with fault,
  backoff, recycle and breaker decisions as span events, plus a
  metrics registry; both are carried through checkpoints, so a resumed
  crawl's exported trace is byte-identical to an uninterrupted one's.

Determinism is the design constraint throughout: every visit attempt
draws from its own rng stream derived from ``(seed, rank, visit_index,
attempt)``, so outcomes are independent of execution order and survive
resumption.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.browser.session import SimulatedBrowserSession
from repro.bus import (
    AttemptFinished,
    AttemptStarted,
    BrowserRecycled,
    BrowserRecycleRequested,
    EventBus,
    FaultObserved,
)
from repro.clock import VirtualClock
from repro.crawl.crawler import CrawlResult, OpenWPMCrawler
from repro.crawl.population import SiteConfig
from repro.crawl.visit import FailureReason, VisitRecord, simulate_visit
from repro.crawl.watchdogs import default_watchdogs
from repro.detection.fingerprint import _reference_navigator
from repro.faults.plan import FaultInjector, FaultPlan
from repro.faults.recovery import BackoffPolicy, BreakerState, CircuitBreaker
from repro.faults.types import FaultError
from repro.obs import CrawlReport, Tracer, build_report, write_trace
from repro.obs.probes import ProbeLedger, write_ledger
from repro.obs.tracer import NULL_TRACER

#: Version 2 adds the ``trace`` and ``metrics`` fields that carry the
#: observability state across interruptions.  The optional ``ledger``
#: field (present only when the supervisor was built with a probe
#: ledger) rides within version 2: default-off checkpoints are unchanged.
CHECKPOINT_VERSION = 2

#: Sub-stream tags keeping visit and jitter draws on disjoint streams.
_VISIT_STREAM = 0x51
_JITTER_STREAM = 0x52


@dataclass
class SupervisorConfig:
    """Recovery policy knobs (defaults sized for the paper's crawl)."""

    #: Attempts per visit, including the first.
    max_attempts: int = 4
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    #: Simulated per-visit step budget: what a hang or page-load timeout
    #: costs before the watchdog fires.
    visit_budget_ms: float = 60_000.0
    #: Simulated cost of a completed (or site-side-failed) visit.
    visit_cost_ms: float = 8_000.0
    #: Simulated cost of a fault detected immediately (crash, reset...).
    fault_detect_ms: float = 2_000.0
    #: Recycle a browser instance after this many faults.
    recycle_after_faults: int = 3
    #: Per-attempt probability of a transient web-dynamics failure
    #: (forwarded to :func:`repro.crawl.visit.simulate_visit`).
    per_visit_failure: float = 0.002
    #: Consecutive per-domain failures before the breaker opens.
    breaker_failure_threshold: int = 4
    #: Simulated cooldown before an open breaker half-opens.
    breaker_cooldown_ms: float = 300_000.0
    #: Default checkpoint file (``crawl(checkpoint_path=...)`` overrides).
    checkpoint_path: Optional[str] = None
    #: Flush a checkpoint every N freshly-crawled sites.  Checkpoints
    #: land on site boundaries only, so resumed breaker state is always
    #: exact (all visits of a domain live on one side of the cut).
    checkpoint_every_sites: int = 25
    #: Simulated cost of dismissing a modal/cookie overlay.
    overlay_dismiss_ms: float = 1_500.0
    #: Simulated wait for a challenge interstitial to clear.
    challenge_wait_ms: float = 5_000.0
    #: Simulated cost of the scripted direct fill on an obstructed input.
    direct_fill_ms: float = 800.0
    #: What an *unbounded* stall (no stall watchdog) costs: the page
    #: hangs until an external kill, far beyond the step budget.
    stall_unbounded_cost_ms: float = 300_000.0


@dataclass
class SupervisorStats:
    """Counters describing one supervised crawl.

    ``visits`` / ``reached`` / ``failed`` / ``resumed`` describe the
    *result* of the most recent :meth:`CrawlSupervisor.crawl` call: they
    are reconciled at crawl end from the records actually emitted, so a
    resumed crawl over a shrunk population never inherits counts for
    checkpointed visits it dropped.  The remaining counters (attempts,
    retries, faults_seen, ...) describe the *work done* across the
    crawl's whole history, including the interrupted portion restored
    from a checkpoint.
    """

    visits: int = 0
    reached: int = 0
    failed: int = 0
    attempts: int = 0
    retries: int = 0
    recovered: int = 0
    faults_seen: int = 0
    recycles: int = 0
    breaker_skips: int = 0
    resumed: int = 0


class BrowserInstance:
    """One long-lived browser of the crawl (OpenWPM's browser slot).

    Wraps a :class:`~repro.browser.session.BrowserSession` (the
    simulated backend by default) and holds the fault count that
    triggers recycling.  Recycling re-runs the session's full spawn
    sequence: fresh window, fresh driver, extension re-injected -- with
    the supervisor's tracer re-wired into the fresh driver.
    """

    def __init__(
        self, index: int, extension=None, tracer=None, ledger=None, session=None
    ) -> None:
        self.index = index
        self.extension = extension
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.ledger = ledger
        self.fault_count = 0
        self.recycles = 0
        self.session = (
            session
            if session is not None
            else SimulatedBrowserSession(
                index, extension=extension, tracer=self.tracer, ledger=ledger
            )
        )

    @property
    def window(self):
        return self.session.window

    @property
    def driver(self):
        return self.session.driver

    def note_fault(self) -> int:
        """Record one fault; returns the running count."""
        self.fault_count += 1
        return self.fault_count

    def state_dict(self) -> Dict[str, int]:
        """The recycling state a checkpoint must carry: resumed crawls
        must reach the fault budget exactly where an uninterrupted one
        would."""
        return {"fault_count": self.fault_count, "recycles": self.recycles}

    def load_state(self, state: Dict[str, int]) -> None:
        self.fault_count = int(state.get("fault_count", 0))
        self.recycles = int(state.get("recycles", 0))

    def recycle(self) -> None:
        """Tear the browser down and spawn a fresh one."""
        self.recycles += 1
        self.fault_count = 0
        self.session.spawn()


class CrawlSupervisor:
    """Fault-aware wrapper around :class:`OpenWPMCrawler`.

    Parameters
    ----------
    crawler:
        Supplies name, extension, instance count and the seed all rng
        streams derive from.
    config:
        Recovery policy; defaults are reasonable for the seed study.
    plan:
        Optional :class:`~repro.faults.plan.FaultPlan`; without one the
        supervisor runs fault-free (pure web dynamics).
    tracer:
        Observability sink.  Defaults to a fresh :class:`repro.obs.
        Tracer` over the supervisor's clock; pass
        :data:`repro.obs.NULL_TRACER` to disable tracing.  A
        caller-built tracer is re-wired onto the supervisor's clock --
        spans must be stamped from the one clock checkpoint resume
        advances in place.
    probe_ledger:
        Optional :class:`repro.obs.probes.ProbeLedger` (off by default).
        When given it is re-wired onto the supervisor's clock and metrics
        registry, attached to every browser window, carried through
        checkpoints, and exportable via ``crawl(ledger_path=...)``.
    watchdogs:
        The pluggable recovery subscribers (see :mod:`repro.crawl.
        watchdogs`).  ``None`` (the default) attaches
        :func:`~repro.crawl.watchdogs.default_watchdogs`; pass ``()``
        for the unprotected ablation baseline -- no recycling, no stall
        bounding, no overlay recovery.
    """

    def __init__(
        self,
        crawler: OpenWPMCrawler,
        config: Optional[SupervisorConfig] = None,
        plan: Optional[FaultPlan] = None,
        tracer: Optional[Tracer] = None,
        probe_ledger: Optional[ProbeLedger] = None,
        watchdogs=None,
    ) -> None:
        self.crawler = crawler
        self.config = config or SupervisorConfig()
        self.injector = FaultInjector(plan) if plan is not None else None
        self.clock = VirtualClock()
        if tracer is None:
            tracer = Tracer(self.clock)
        elif tracer.enabled and tracer.clock is not self.clock:
            tracer.clock = self.clock
        self.tracer = tracer
        self.metrics = tracer.metrics
        # Opt-in probe ledger (off by default): re-wired onto the one
        # shared clock and the tracer's metrics registry, so ledger
        # timestamps live on the checkpointed timeline and per-trap
        # counters land next to the crawl's other metrics.
        self.ledger = probe_ledger
        if probe_ledger is not None:
            probe_ledger.clock = self.clock
            probe_ledger.metrics = self.metrics
        self.stats = SupervisorStats()
        self._instances: Optional[List[BrowserInstance]] = None
        self._restored_browsers: Optional[List[Dict[str, int]]] = None
        self._entry_browsers: Optional[List[Dict[str, int]]] = None
        self._bind_metric_handles()
        # The deterministic event bus every crawl collaborator talks
        # over: sessions execute command events, watchdogs subscribe to
        # fault/hostile events, and the supervisor itself only executes
        # recycle requests.
        self.bus = EventBus(self.clock, self.tracer)
        self.watchdogs = tuple(
            default_watchdogs() if watchdogs is None else watchdogs
        )
        for watchdog in self.watchdogs:
            watchdog.attach(self)
        self.bus.subscribe(
            BrowserRecycleRequested,
            self._on_recycle_requested,
            name="supervisor.recycle",
        )
        self._attached_sessions: List = []

    def _bind_metric_handles(self) -> None:
        """Cache per-visit metric handles (one method call on hot paths).

        Must be re-run whenever ``metrics.load_state`` replaces the
        registry's contents, or the cached handles would keep feeding
        orphaned objects.
        """
        metrics = self.metrics
        self._visit_ms = metrics.histogram("visit_ms")
        self._attempt_ms = metrics.histogram("attempt_ms")
        self._backoff_ms = metrics.histogram("backoff_ms")

    # -- main loop -------------------------------------------------------

    def crawl(
        self,
        population: Sequence[SiteConfig],
        *,
        checkpoint_path: Optional[Union[str, Path]] = None,
        trace_path: Optional[Union[str, Path]] = None,
        ledger_path: Optional[Union[str, Path]] = None,
    ) -> CrawlResult:
        """Visit every site ``crawler.instances`` times, resiliently.

        ``trace_path`` additionally exports the crawl's span tree as
        canonical JSONL (see :mod:`repro.obs.export`) when the crawl
        completes; ``ledger_path`` does the same for the probe ledger
        (requires a supervisor constructed with ``probe_ledger=``).
        """
        if ledger_path is not None and self.ledger is None:
            raise ValueError(
                "ledger_path given but this supervisor has no probe ledger; "
                "construct it with CrawlSupervisor(..., probe_ledger=...)"
            )
        config = self.config
        path = checkpoint_path or config.checkpoint_path
        path = Path(path) if path is not None else None
        completed = self._load_checkpoint(path)
        if self._restored_browsers is None and self._entry_browsers is not None:
            # Shard entry state (see crawl_shard): applied only when no
            # checkpoint restored the browsers -- a mid-shard checkpoint
            # already embeds the entry state's effects.
            self._restored_browsers = self._entry_browsers
        self._entry_browsers = None
        root = self.tracer.resume_or_start(
            "crawl",
            crawler=self.crawler.name,
            seed=self.crawler.seed,
            instances=self.crawler.instances,
        )

        instances = [
            BrowserInstance(
                i, self.crawler.extension, tracer=self.tracer, ledger=self.ledger
            )
            for i in range(self.crawler.instances)
        ]
        if self._restored_browsers is not None:
            for instance, state in zip(instances, self._restored_browsers):
                instance.load_state(state)
            self._restored_browsers = None
        self._instances = instances
        self._attach_sessions(instances)
        reference = _reference_navigator()
        records: List[VisitRecord] = []
        fresh_sites = 0
        reused = 0
        for site in population:
            breaker = CircuitBreaker(
                config.breaker_failure_threshold,
                config.breaker_cooldown_ms,
                listener=self._breaker_listener(site.domain),
            )
            site_was_fresh = False
            for visit_index in range(self.crawler.instances):
                key = (site.domain, visit_index)
                if key in completed:
                    records.append(completed[key])
                    reused += 1
                    continue
                site_was_fresh = True
                record = self._visit_with_retry(
                    site, visit_index, instances[visit_index], breaker, reference
                )
                records.append(record)
                completed[key] = record
                self.stats.visits += 1
                if record.reached:
                    self.stats.reached += 1
                else:
                    self.stats.failed += 1
            if site_was_fresh and path is not None:
                fresh_sites += 1
                if fresh_sites >= config.checkpoint_every_sites:
                    self._write_checkpoint(path, records)
                    fresh_sites = 0
        # Reconcile the result-facing counters from the records actually
        # emitted: a resumed crawl over a shrunk or reordered population
        # restores checkpointed stats wholesale, which may count visits
        # whose records this population no longer produces.
        self.stats.visits = len(records)
        self.stats.reached = sum(1 for record in records if record.reached)
        self.stats.failed = self.stats.visits - self.stats.reached
        self.stats.resumed = reused
        self.tracer.end(root)
        if path is not None:
            self._write_checkpoint(path, records)
        if trace_path is not None:
            write_trace(trace_path, self.tracer.spans)
        if ledger_path is not None:
            write_ledger(ledger_path, self.ledger)
        return CrawlResult(crawler_name=self.crawler.name, records=records)

    def crawl_shard(
        self,
        sites: Sequence[SiteConfig],
        *,
        entry_browser_states: Optional[List[Dict[str, int]]] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
        trace_path: Optional[Union[str, Path]] = None,
        ledger_path: Optional[Union[str, Path]] = None,
    ) -> CrawlResult:
        """Run one contiguous shard of a larger population.

        The shard-scoped entry point the :mod:`repro.shard` executor
        uses: identical to :meth:`crawl` over ``sites``, except the
        browser instances start from ``entry_browser_states`` -- the
        fault/recycle counters the browsers would carry at this point of
        the equivalent serial crawl (the fold of the preceding shards'
        fault logs, see :mod:`repro.shard.state`).  The states apply
        only when no checkpoint restores the browsers: a mid-shard
        checkpoint already embeds them.

        Everything else about determinism is inherited: the shard runs
        on this supervisor's own virtual clock starting at zero, so its
        trace/ledger/metrics are a clean segment the merge layer can
        rebase onto the serial timeline.
        """
        if entry_browser_states is not None:
            self._entry_browsers = [dict(s) for s in entry_browser_states]
        return self.crawl(
            sites,
            checkpoint_path=checkpoint_path,
            trace_path=trace_path,
            ledger_path=ledger_path,
        )

    def _attach_sessions(self, instances: List[BrowserInstance]) -> None:
        """Subscribe this crawl's browser sessions to the bus.

        A repeated ``crawl()`` call builds fresh instances; the previous
        crawl's sessions are detached first so command events never
        reach stale browsers (and dispatch order stays deterministic).
        """
        for session in self._attached_sessions:
            session.detach(self.bus)
        self._attached_sessions = [instance.session for instance in instances]
        for session in self._attached_sessions:
            session.attach(self.bus)

    def _on_recycle_requested(self, event: BrowserRecycleRequested) -> None:
        """Execute a watchdog's recycle request (the supervisor is the
        only subscriber that may tear browsers down)."""
        instance = event.instance
        if instance is None:
            return
        self._recycle(instance, event.reason)
        self.bus.publish(
            BrowserRecycled(reason=event.reason, browser=instance.index)
        )

    # -- observability ---------------------------------------------------

    def _breaker_listener(self, domain: str):
        tracer = self.tracer
        metrics = self.metrics

        def on_transition(old_state: BreakerState, new_state: BreakerState) -> None:
            tracer.event(
                "breaker." + new_state.value,
                domain=domain,
                previous=old_state.value,
            )
            metrics.counter("breaker." + new_state.value).inc()

        return on_transition

    def export_trace(self, path: Union[str, Path]) -> Path:
        """Write the crawl's span tree as canonical JSONL."""
        return write_trace(path, self.tracer.spans)

    def report(self) -> CrawlReport:
        """Aggregate the crawl's trace and metrics into a report."""
        return build_report(self.tracer.spans, metrics=self.metrics.state_dict())

    # -- one visit, with recovery ---------------------------------------

    def _visit_with_retry(
        self,
        site: SiteConfig,
        visit_index: int,
        instance: BrowserInstance,
        breaker: CircuitBreaker,
        reference,
    ) -> VisitRecord:
        tracer = self.tracer
        span = tracer.start(
            "visit", domain=site.domain, rank=site.rank, visit_index=visit_index
        )
        start_ms = self.clock.now()
        try:
            record = self._run_attempts(
                site, visit_index, instance, breaker, reference
            )
            span.attrs["attempts"] = record.attempts
            if not record.reached:
                span.status = "failed:" + (record.failure_reason or "unknown")
            return record
        finally:
            self._visit_ms.observe(self.clock.now() - start_ms)
            tracer.end(span)

    def _run_attempts(
        self,
        site: SiteConfig,
        visit_index: int,
        instance: BrowserInstance,
        breaker: CircuitBreaker,
        reference,
    ) -> VisitRecord:
        config = self.config
        tracer = self.tracer
        last_reason = FailureReason.TRANSIENT
        attempts_made = 0
        for attempt in range(config.max_attempts):
            if not breaker.allow(self.clock.now()):
                self.stats.breaker_skips += 1
                tracer.event("breaker.skip", domain=site.domain, attempt=attempt)
                self.metrics.counter("breaker.skips").inc()
                return VisitRecord(
                    domain=site.domain,
                    rank=site.rank,
                    visit_index=visit_index,
                    reached=False,
                    failure_reason=FailureReason.CIRCUIT_OPEN,
                    attempts=attempts_made,
                )
            attempts_made += 1
            self.stats.attempts += 1
            rng = np.random.default_rng(
                [self.crawler.seed, _VISIT_STREAM, site.rank, visit_index, attempt]
            )
            if self.injector is not None:
                self.injector.arm(site.domain, visit_index, attempt)
            span = tracer.start("attempt", attempt=attempt)
            attempt_start_ms = self.clock.now()
            reached = False
            failure_reason: Optional[str] = None
            try:
                self.bus.publish(
                    AttemptStarted(
                        domain=site.domain,
                        visit_index=visit_index,
                        attempt=attempt,
                        browser=instance.index,
                    )
                )
                try:
                    record = simulate_visit(
                        site,
                        extension=self.crawler.extension,
                        visit_index=visit_index,
                        rng=rng,
                        reference=reference,
                        per_visit_failure=config.per_visit_failure,
                        driver=instance.driver,
                        injector=self.injector,
                        bus=self.bus,
                        browser=instance.index,
                        attempt=attempt,
                    )
                except FaultError as fault:
                    self.stats.faults_seen += 1
                    last_reason = fault.fault_type.value
                    failure_reason = last_reason
                    span.status = "fault:" + last_reason
                    tracer.event("fault", fault_type=last_reason, hook=fault.hook)
                    self.metrics.counter("faults." + last_reason).inc()
                    cost = (
                        config.visit_budget_ms
                        if fault.fault_type.exhausts_budget
                        else config.fault_detect_ms
                    )
                    self.clock.advance(min(cost, config.visit_budget_ms))
                    breaker.record_failure(self.clock.now())
                    # Recovery policy is no longer inline: watchdog
                    # subscribers decide whether this fault warrants a
                    # recycle (crash -> immediate, budget -> proactive).
                    self.bus.publish(
                        FaultObserved(
                            fault_type=last_reason,
                            hook=fault.hook,
                            domain=site.domain,
                            visit_index=visit_index,
                            attempt=attempt,
                            browser_fatal=fault.fault_type.browser_fatal,
                            instance=instance,
                        )
                    )
                    self._backoff(site, visit_index, attempt)
                    continue
                finally:
                    if self.injector is not None:
                        self.injector.disarm()

                record.attempts = attempts_made
                failure_reason = record.failure_reason
                if record.reached:
                    reached = True
                    record.recovered = attempts_made > 1
                    self.clock.advance(config.visit_cost_ms)
                    breaker.record_success()
                    if record.recovered:
                        self.stats.recovered += 1
                    return record

                # Site-side failure: permanent conditions are not retried.
                # A watchdog-aborted stall is charged exactly the step
                # budget; an unbounded stall (no watchdog) costs the
                # external-kill timeout.  Either way the breaker records
                # ONE failure -- watchdog intervention never double-counts.
                if record.failure_reason == FailureReason.STALLED:
                    self.clock.advance(config.visit_budget_ms)
                elif record.failure_reason == FailureReason.STALLED_UNBOUNDED:
                    self.clock.advance(config.stall_unbounded_cost_ms)
                else:
                    self.clock.advance(config.visit_cost_ms)
                breaker.record_failure(self.clock.now())
                if FailureReason.is_permanent(record.failure_reason):
                    span.status = "failed:" + record.failure_reason
                    return record
                last_reason = record.failure_reason or last_reason
                span.status = "failed:" + last_reason
                self._backoff(site, visit_index, attempt)
            finally:
                self.bus.publish(
                    AttemptFinished(
                        domain=site.domain,
                        visit_index=visit_index,
                        attempt=attempt,
                        browser=instance.index,
                        reached=reached,
                        failure_reason=failure_reason,
                    )
                )
                self._attempt_ms.observe(self.clock.now() - attempt_start_ms)
                tracer.end(span)

        return VisitRecord(
            domain=site.domain,
            rank=site.rank,
            visit_index=visit_index,
            reached=False,
            failure_reason=FailureReason.exhausted(last_reason),
            attempts=attempts_made,
        )

    def _recycle(self, instance: BrowserInstance, reason: str) -> None:
        instance.recycle()
        self.stats.recycles += 1
        self.tracer.event("browser.recycle", browser=instance.index, reason=reason)
        self.metrics.counter("recycles").inc()

    def _backoff(self, site: SiteConfig, visit_index: int, attempt: int) -> None:
        """Advance the simulated clock by the jittered retry delay."""
        rng = np.random.default_rng(
            [self.crawler.seed, _JITTER_STREAM, site.rank, visit_index, attempt]
        )
        delay_ms = self.config.backoff.delay_ms(attempt, rng)
        self.tracer.event("backoff", delay_ms=delay_ms, attempt=attempt)
        self._backoff_ms.observe(delay_ms)
        self.clock.advance(delay_ms)
        self.stats.retries += 1

    # -- checkpointing ---------------------------------------------------

    def _load_checkpoint(
        self, path: Optional[Path]
    ) -> Dict[Tuple[str, int], VisitRecord]:
        completed: Dict[Tuple[str, int], VisitRecord] = {}
        if path is None or not path.exists():
            return completed
        data = json.loads(path.read_text())
        if data.get("version") != CHECKPOINT_VERSION:
            raise ValueError(f"unsupported checkpoint version in {path}")
        if (
            data.get("crawler_name") != self.crawler.name
            or data.get("seed") != self.crawler.seed
            or data.get("instances") != self.crawler.instances
        ):
            raise ValueError(
                f"checkpoint {path} belongs to a different crawl configuration"
            )
        for record_data in data["records"]:
            record = VisitRecord.from_dict(record_data)
            completed[(record.domain, record.visit_index)] = record
        # Advance the one shared clock in place.  The tracer, breakers
        # and any collaborator wired before resume hold *references* to
        # this clock; rebinding a fresh VirtualClock here would leave
        # them all ticking a stale timeline.
        behind = float(data.get("clock_ms", 0.0)) - self.clock.now()
        if behind < 0:
            raise ValueError(
                f"checkpoint {path} is older than this supervisor's clock; "
                "resume with a fresh supervisor"
            )
        self.clock.advance(behind)
        self._restored_browsers = data.get("browsers")
        stats = data.get("stats")
        if stats is not None:
            self.stats = SupervisorStats(**stats)
        self.stats.resumed = len(completed)
        trace_state = data.get("trace")
        if trace_state is not None:
            self.tracer.load_state(trace_state)
        metrics_state = data.get("metrics")
        if metrics_state is not None:
            self.metrics.load_state(metrics_state)
            self._bind_metric_handles()
        ledger_state = data.get("ledger")
        if ledger_state is not None and self.ledger is not None:
            self.ledger.load_state(ledger_state)
        return completed

    def _write_checkpoint(self, path: Path, records: List[VisitRecord]) -> None:
        payload = {
            "version": CHECKPOINT_VERSION,
            "crawler_name": self.crawler.name,
            "seed": self.crawler.seed,
            "instances": self.crawler.instances,
            "clock_ms": self.clock.now(),
            "stats": asdict(self.stats),
            "browsers": [
                instance.state_dict() for instance in self._instances or []
            ],
            "trace": self.tracer.state_dict(),
            "metrics": self.metrics.state_dict(),
            "records": [r.to_dict() for r in records],
        }
        # Only a ledger-enabled supervisor writes the key: default-off
        # checkpoints stay byte-identical to pre-ledger ones.
        if self.ledger is not None:
            payload["ledger"] = self.ledger.state_dict()
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(payload))
        tmp.replace(path)


def visit_coverage(
    result: CrawlResult, population: Sequence[SiteConfig], instances: int
) -> float:
    """Reached visits over the visits a perfect crawler could make
    (unreachable sites are excluded from the denominator)."""
    reachable = sum(1 for site in population if not site.unreachable)
    expected = reachable * instances
    if expected == 0:
        return 1.0
    return len(result.successful_visits) / expected
