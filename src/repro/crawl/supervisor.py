"""The resilient crawl supervisor: retries, recycling, checkpointing.

:class:`CrawlSupervisor` wraps an :class:`~repro.crawl.crawler.
OpenWPMCrawler` with the recovery behaviour a real field study needs
(and the bare double loop lacks):

- **retry with exponential backoff** -- failed visits are retried up to
  a budget, with deterministic seeded jitter advancing the simulated
  clock (never the wall clock);
- **step budgets** -- hangs and page-load timeouts cost exactly the
  per-visit budget on the simulated timeline (the watchdog semantics);
- **browser recycling** -- a browser instance that accumulated too many
  faults (or died outright) is torn down and re-spawned: fresh
  :class:`~repro.browser.window.Window`, fresh driver, re-injected
  :class:`~repro.spoofing.extension.SpoofingExtension` -- matching
  OpenWPM's browser-restart semantics;
- **per-domain circuit breaker** -- a host that keeps failing is
  skipped instead of hammered;
- **checkpoint/resume** -- completed records are flushed to JSON at
  site boundaries, so an interrupted crawl resumes without re-visiting
  completed (site, visit_index) pairs, and the resumed result is
  byte-identical to an uninterrupted run.

Determinism is the design constraint throughout: every visit attempt
draws from its own rng stream derived from ``(seed, rank, visit_index,
attempt)``, so outcomes are independent of execution order and survive
resumption.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.browser.navigator import NavigatorProfile
from repro.browser.window import Window
from repro.clock import VirtualClock
from repro.crawl.crawler import CrawlResult, OpenWPMCrawler
from repro.crawl.population import SiteConfig
from repro.crawl.visit import FailureReason, VisitRecord, simulate_visit
from repro.detection.fingerprint import _reference_navigator
from repro.faults.plan import FaultInjector, FaultPlan
from repro.faults.recovery import BackoffPolicy, CircuitBreaker
from repro.faults.types import FaultError
from repro.webdriver.driver import WebDriver

CHECKPOINT_VERSION = 1

#: Sub-stream tags keeping visit and jitter draws on disjoint streams.
_VISIT_STREAM = 0x51
_JITTER_STREAM = 0x52


@dataclass
class SupervisorConfig:
    """Recovery policy knobs (defaults sized for the paper's crawl)."""

    #: Attempts per visit, including the first.
    max_attempts: int = 4
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    #: Simulated per-visit step budget: what a hang or page-load timeout
    #: costs before the watchdog fires.
    visit_budget_ms: float = 60_000.0
    #: Simulated cost of a completed (or site-side-failed) visit.
    visit_cost_ms: float = 8_000.0
    #: Simulated cost of a fault detected immediately (crash, reset...).
    fault_detect_ms: float = 2_000.0
    #: Recycle a browser instance after this many faults.
    recycle_after_faults: int = 3
    #: Per-attempt probability of a transient web-dynamics failure
    #: (forwarded to :func:`repro.crawl.visit.simulate_visit`).
    per_visit_failure: float = 0.002
    #: Consecutive per-domain failures before the breaker opens.
    breaker_failure_threshold: int = 4
    #: Simulated cooldown before an open breaker half-opens.
    breaker_cooldown_ms: float = 300_000.0
    #: Default checkpoint file (``crawl(checkpoint_path=...)`` overrides).
    checkpoint_path: Optional[str] = None
    #: Flush a checkpoint every N freshly-crawled sites.  Checkpoints
    #: land on site boundaries only, so resumed breaker state is always
    #: exact (all visits of a domain live on one side of the cut).
    checkpoint_every_sites: int = 25


@dataclass
class SupervisorStats:
    """Counters describing one supervised crawl."""

    visits: int = 0
    reached: int = 0
    failed: int = 0
    attempts: int = 0
    retries: int = 0
    recovered: int = 0
    faults_seen: int = 0
    recycles: int = 0
    breaker_skips: int = 0
    resumed: int = 0


class BrowserInstance:
    """One long-lived browser of the crawl (OpenWPM's browser slot).

    Holds the persistent window/driver pair and the fault count that
    triggers recycling.  Recycling re-runs the full spawn sequence:
    fresh window, fresh driver, extension re-injected.
    """

    def __init__(self, index: int, extension=None) -> None:
        self.index = index
        self.extension = extension
        self.fault_count = 0
        self.recycles = 0
        self._spawn()

    def _spawn(self) -> None:
        self.window = Window(profile=NavigatorProfile(webdriver=True))
        self.driver = WebDriver(self.window)
        if self.extension is not None:
            self.extension.inject(self.window)

    def note_fault(self) -> int:
        """Record one fault; returns the running count."""
        self.fault_count += 1
        return self.fault_count

    def recycle(self) -> None:
        """Tear the browser down and spawn a fresh one."""
        self.recycles += 1
        self.fault_count = 0
        self._spawn()


class CrawlSupervisor:
    """Fault-aware wrapper around :class:`OpenWPMCrawler`.

    Parameters
    ----------
    crawler:
        Supplies name, extension, instance count and the seed all rng
        streams derive from.
    config:
        Recovery policy; defaults are reasonable for the seed study.
    plan:
        Optional :class:`~repro.faults.plan.FaultPlan`; without one the
        supervisor runs fault-free (pure web dynamics).
    """

    def __init__(
        self,
        crawler: OpenWPMCrawler,
        config: Optional[SupervisorConfig] = None,
        plan: Optional[FaultPlan] = None,
    ) -> None:
        self.crawler = crawler
        self.config = config or SupervisorConfig()
        self.injector = FaultInjector(plan) if plan is not None else None
        self.clock = VirtualClock()
        self.stats = SupervisorStats()

    # -- main loop -------------------------------------------------------

    def crawl(
        self,
        population: Sequence[SiteConfig],
        *,
        checkpoint_path: Optional[Union[str, Path]] = None,
    ) -> CrawlResult:
        """Visit every site ``crawler.instances`` times, resiliently."""
        config = self.config
        path = checkpoint_path or config.checkpoint_path
        path = Path(path) if path is not None else None
        completed = self._load_checkpoint(path)

        instances = [
            BrowserInstance(i, self.crawler.extension)
            for i in range(self.crawler.instances)
        ]
        reference = _reference_navigator()
        records: List[VisitRecord] = []
        fresh_sites = 0
        for site in population:
            breaker = CircuitBreaker(
                config.breaker_failure_threshold, config.breaker_cooldown_ms
            )
            site_was_fresh = False
            for visit_index in range(self.crawler.instances):
                key = (site.domain, visit_index)
                if key in completed:
                    records.append(completed[key])
                    continue
                site_was_fresh = True
                record = self._visit_with_retry(
                    site, visit_index, instances[visit_index], breaker, reference
                )
                records.append(record)
                completed[key] = record
                self.stats.visits += 1
                if record.reached:
                    self.stats.reached += 1
                else:
                    self.stats.failed += 1
            if site_was_fresh and path is not None:
                fresh_sites += 1
                if fresh_sites >= config.checkpoint_every_sites:
                    self._write_checkpoint(path, records)
                    fresh_sites = 0
        if path is not None:
            self._write_checkpoint(path, records)
        return CrawlResult(crawler_name=self.crawler.name, records=records)

    # -- one visit, with recovery ---------------------------------------

    def _visit_with_retry(
        self,
        site: SiteConfig,
        visit_index: int,
        instance: BrowserInstance,
        breaker: CircuitBreaker,
        reference,
    ) -> VisitRecord:
        config = self.config
        last_reason = FailureReason.TRANSIENT
        attempts_made = 0
        for attempt in range(config.max_attempts):
            if not breaker.allow(self.clock.now()):
                self.stats.breaker_skips += 1
                return VisitRecord(
                    domain=site.domain,
                    rank=site.rank,
                    visit_index=visit_index,
                    reached=False,
                    failure_reason=FailureReason.CIRCUIT_OPEN,
                    attempts=attempts_made,
                )
            attempts_made += 1
            self.stats.attempts += 1
            rng = np.random.default_rng(
                [self.crawler.seed, _VISIT_STREAM, site.rank, visit_index, attempt]
            )
            if self.injector is not None:
                self.injector.arm(site.domain, visit_index, attempt)
            try:
                record = simulate_visit(
                    site,
                    extension=self.crawler.extension,
                    visit_index=visit_index,
                    rng=rng,
                    reference=reference,
                    per_visit_failure=config.per_visit_failure,
                    driver=instance.driver,
                    injector=self.injector,
                )
            except FaultError as fault:
                self.stats.faults_seen += 1
                last_reason = fault.fault_type.value
                cost = (
                    config.visit_budget_ms
                    if fault.fault_type.exhausts_budget
                    else config.fault_detect_ms
                )
                self.clock.advance(min(cost, config.visit_budget_ms))
                breaker.record_failure(self.clock.now())
                if fault.fault_type.browser_fatal:
                    instance.recycle()
                    self.stats.recycles += 1
                elif instance.note_fault() >= config.recycle_after_faults:
                    instance.recycle()
                    self.stats.recycles += 1
                self._backoff(site, visit_index, attempt)
                continue
            finally:
                if self.injector is not None:
                    self.injector.disarm()

            record.attempts = attempts_made
            if record.reached:
                record.recovered = attempts_made > 1
                self.clock.advance(config.visit_cost_ms)
                breaker.record_success()
                if record.recovered:
                    self.stats.recovered += 1
                return record

            # Site-side failure: permanent conditions are not retried.
            self.clock.advance(config.visit_cost_ms)
            breaker.record_failure(self.clock.now())
            if FailureReason.is_permanent(record.failure_reason):
                return record
            last_reason = record.failure_reason or last_reason
            self._backoff(site, visit_index, attempt)

        return VisitRecord(
            domain=site.domain,
            rank=site.rank,
            visit_index=visit_index,
            reached=False,
            failure_reason=FailureReason.exhausted(last_reason),
            attempts=attempts_made,
        )

    def _backoff(self, site: SiteConfig, visit_index: int, attempt: int) -> None:
        """Advance the simulated clock by the jittered retry delay."""
        rng = np.random.default_rng(
            [self.crawler.seed, _JITTER_STREAM, site.rank, visit_index, attempt]
        )
        self.clock.advance(self.config.backoff.delay_ms(attempt, rng))
        self.stats.retries += 1

    # -- checkpointing ---------------------------------------------------

    def _load_checkpoint(
        self, path: Optional[Path]
    ) -> Dict[Tuple[str, int], VisitRecord]:
        completed: Dict[Tuple[str, int], VisitRecord] = {}
        if path is None or not path.exists():
            return completed
        data = json.loads(path.read_text())
        if data.get("version") != CHECKPOINT_VERSION:
            raise ValueError(f"unsupported checkpoint version in {path}")
        if (
            data.get("crawler_name") != self.crawler.name
            or data.get("seed") != self.crawler.seed
            or data.get("instances") != self.crawler.instances
        ):
            raise ValueError(
                f"checkpoint {path} belongs to a different crawl configuration"
            )
        for record_data in data["records"]:
            record = VisitRecord.from_dict(record_data)
            completed[(record.domain, record.visit_index)] = record
        self.clock = VirtualClock(float(data.get("clock_ms", 0.0)))
        stats = data.get("stats")
        if stats is not None:
            self.stats = SupervisorStats(**stats)
        self.stats.resumed = len(completed)
        return completed

    def _write_checkpoint(self, path: Path, records: List[VisitRecord]) -> None:
        payload = {
            "version": CHECKPOINT_VERSION,
            "crawler_name": self.crawler.name,
            "seed": self.crawler.seed,
            "instances": self.crawler.instances,
            "clock_ms": self.clock.now(),
            "stats": asdict(self.stats),
            "records": [r.to_dict() for r in records],
        }
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(payload))
        tmp.replace(path)


def visit_coverage(
    result: CrawlResult, population: Sequence[SiteConfig], instances: int
) -> float:
    """Reached visits over the visits a perfect crawler could make
    (unreachable sites are excluded from the denominator)."""
    reachable = sum(1 for site in population if not site.unreachable)
    expected = reachable * instances
    if expected == 0:
        return 1.0
    return len(result.successful_visits) / expected
