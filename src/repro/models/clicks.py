"""Click placement models (Fig. 2).

- ``Selenium``: the exact centre (implemented in the webdriver layer).
- ``uniform_click_point``: the naive randomisation -- a uniform draw over
  the whole element, which "generates clicks in places humans never
  reach" (corners, edges).
- ``hlisa_click_point``: HLISA's model -- a normal distribution around the
  centre "with parameters drawn from our experiment", truncated to stay
  within the element.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.geometry import Box, Point


@dataclass
class ClickParams:
    """HLISA click-model parameters (defaults from the experiment)."""

    #: Click scatter sigma as a fraction of the element's half extent.
    sigma_frac: float = 0.26
    #: Mean/SD of mouse-button dwell time (ms).
    dwell_mean_ms: float = 92.0
    dwell_sd_ms: float = 20.0
    #: Truncation: maximal offset as a fraction of the half extent.
    max_offset_frac: float = 0.85


def uniform_click_point(box: Box, rng: np.random.Generator) -> Point:
    """Naive baseline: uniform over the element (Fig. 2 bottom-left)."""
    return Point(
        float(rng.uniform(box.left, box.right)),
        float(rng.uniform(box.top, box.bottom)),
    )


def hlisa_click_point(
    box: Box,
    rng: np.random.Generator,
    params: Optional[ClickParams] = None,
) -> Point:
    """HLISA's model: truncated Gaussian around the centre (Fig. 2
    bottom-right)."""
    params = params or ClickParams()
    center = box.center
    half_w = max(box.width / 2.0, 0.5)
    half_h = max(box.height / 2.0, 0.5)
    max_dx = half_w * params.max_offset_frac
    max_dy = half_h * params.max_offset_frac
    # Rejection-sample the truncated normal (cheap at these sigmas).
    for _ in range(32):
        dx = float(rng.normal(0.0, half_w * params.sigma_frac))
        dy = float(rng.normal(0.0, half_h * params.sigma_frac))
        if abs(dx) <= max_dx and abs(dy) <= max_dy:
            return Point(center.x + dx, center.y + dy)
    return Point(
        center.x + float(np.clip(dx, -max_dx, max_dx)),
        center.y + float(np.clip(dy, -max_dy, max_dy)),
    )


def hlisa_dwell_ms(rng: np.random.Generator, params: Optional[ClickParams] = None) -> float:
    """Mouse-button dwell time from HLISA's normal model."""
    params = params or ClickParams()
    return float(max(rng.normal(params.dwell_mean_ms, params.dwell_sd_ms), 20.0))
