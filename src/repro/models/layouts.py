"""Keyboard layouts and layout-aware modifier synthesis.

Section 4.1: "By monitoring the usage of modifier keys, detectors can
infer the keyboard layout, which can be used for static fingerprinting
purposes."  The observable is *which characters arrive with which
modifiers*: ``/`` is an unshifted key on a US keyboard but Shift+7 on a
German one; ``@`` is Shift+2 on US but AltGr+Q on German.

A typing simulator must therefore synthesise modifiers for a *specific*
layout -- and keep it consistent with the rest of the fingerprint (a
``de`` Accept-Language with US-layout typing is a tell, see
:class:`repro.detection.layout.LayoutLanguageMismatchDetector`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, FrozenSet, Optional

#: Modifier requirement of a character on a layout.
PLAIN, SHIFT, ALTGR = "plain", "shift", "altgr"


@dataclass(frozen=True)
class KeyboardLayout:
    """Which modifier each printable character needs."""

    name: str
    #: Language tags this layout is typical for (prefix match).
    languages: FrozenSet[str]
    #: Characters requiring Shift beyond the universal A-Z rule.
    shifted: FrozenSet[str]
    #: Characters requiring AltGr.
    altgr: FrozenSet[str] = frozenset()

    @lru_cache(maxsize=1024)
    def modifier_for(self, char: str) -> str:
        """The modifier a human must hold to type ``char``.

        Memoised per ``(layout, char)``: typing planners look the same
        characters up over and over, and layouts are immutable module
        singletons, so the cache never goes stale.
        """
        if len(char) != 1:
            return PLAIN
        if char in self.altgr:
            return ALTGR
        if char.isalpha() and char.isupper():
            return SHIFT
        if char in self.shifted:
            return SHIFT
        return PLAIN


#: US ANSI layout (the default everywhere in this package).
US_LAYOUT = KeyboardLayout(
    name="us",
    languages=frozenset({"en"}),
    shifted=frozenset('~!@#$%^&*()_+{}|:"<>?'),
)

#: German ISO layout (QWERTZ).  The load-bearing differences from US:
#: ``/ ; : = ? ' " ( )`` move onto Shift; ``@ { } [ ] | ~ \\`` move onto
#: AltGr.
DE_LAYOUT = KeyboardLayout(
    name="de",
    languages=frozenset({"de"}),
    shifted=frozenset("!\"$%&/()=?;:_*'<>°"),
    altgr=frozenset("@{}[]|~\\"),
)

#: Registry by name.
LAYOUTS: Dict[str, KeyboardLayout] = {
    US_LAYOUT.name: US_LAYOUT,
    DE_LAYOUT.name: DE_LAYOUT,
}

#: Characters whose modifier differs between US and DE -- the probe set
#: a layout-inferring detector watches for.
DISCRIMINATING_CHARS: FrozenSet[str] = frozenset(
    char
    for char in set('~!@#$%^&*()_+{}|:"<>?' + "/;='\\[]")
    if US_LAYOUT.modifier_for(char) != DE_LAYOUT.modifier_for(char)
)


def infer_layout(observations: Dict[str, str]) -> Optional[KeyboardLayout]:
    """Infer the layout from observed ``char -> modifier`` pairs.

    Scores each known layout by agreement on the discriminating
    characters; returns the winner, or ``None`` when no discriminating
    character was observed.
    """
    scores: Dict[str, int] = {name: 0 for name in LAYOUTS}
    informative = 0
    for char, modifier in observations.items():
        if char not in DISCRIMINATING_CHARS:
            continue
        informative += 1
        for name, layout in LAYOUTS.items():
            if layout.modifier_for(char) == modifier:
                scores[name] += 1
    if informative == 0:
        return None
    best = max(scores, key=lambda name: scores[name])
    return LAYOUTS[best]
