"""Saving and loading model parameters (JSON).

Calibrated parameters (Appendix E's workflow) are worth keeping: a study
fits them once from recorded subjects and ships them with the crawler
configuration.  These helpers serialise every parameter dataclass --
HLISA's four model-parameter sets and the human profile -- to a single
JSON document and back.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Optional, Type, TypeVar

from repro.humans.profile import HumanProfile
from repro.models.bezier import TrajectoryParams
from repro.models.clicks import ClickParams
from repro.models.scroll_cadence import ScrollParams
from repro.models.typing_rhythm import TypingParams

_FORMAT = "repro-params-v1"

#: section name -> dataclass type.
_SECTIONS: Dict[str, type] = {
    "trajectory": TrajectoryParams,
    "clicks": ClickParams,
    "typing": TypingParams,
    "scroll": ScrollParams,
    "human_profile": HumanProfile,
}

T = TypeVar("T")


def _to_plain(value: Any) -> Any:
    if isinstance(value, tuple):
        return list(value)
    if isinstance(value, frozenset):
        return sorted(value)
    return value


def dumps_params(
    *,
    trajectory: Optional[TrajectoryParams] = None,
    clicks: Optional[ClickParams] = None,
    typing: Optional[TypingParams] = None,
    scroll: Optional[ScrollParams] = None,
    human_profile: Optional[HumanProfile] = None,
) -> str:
    """Serialise any subset of parameter sets to JSON."""
    payload: Dict[str, Any] = {"format": _FORMAT}
    values = {
        "trajectory": trajectory,
        "clicks": clicks,
        "typing": typing,
        "scroll": scroll,
        "human_profile": human_profile,
    }
    for section, value in values.items():
        if value is None:
            continue
        expected = _SECTIONS[section]
        if not isinstance(value, expected):
            raise TypeError(f"{section} must be a {expected.__name__}")
        payload[section] = {
            f.name: _to_plain(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    return json.dumps(payload, indent=2, sort_keys=True)


def loads_params(payload: str) -> Dict[str, Any]:
    """Load a parameter document back into dataclass instances.

    Returns a dict with whichever sections the document contains.
    Unknown sections or fields raise ``ValueError`` (a corrupted or
    newer-format file must not silently half-load).
    """
    data = json.loads(payload)
    if data.get("format") != _FORMAT:
        raise ValueError("not a repro parameter document")
    result: Dict[str, Any] = {}
    for section, fields in data.items():
        if section == "format":
            continue
        cls = _SECTIONS.get(section)
        if cls is None:
            raise ValueError(f"unknown parameter section {section!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(fields) - known
        if unknown:
            raise ValueError(f"unknown fields in {section}: {sorted(unknown)}")
        result[section] = cls(**fields)
    return result


def save_params(path: str, **sections: Any) -> None:
    """Write a parameter document to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_params(**sections))


def load_params(path: str) -> Dict[str, Any]:
    """Read a parameter document from ``path``."""
    with open(path, encoding="utf-8") as handle:
        return loads_params(handle.read())
