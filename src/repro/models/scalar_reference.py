"""Scalar golden references for the vectorised motor kernels.

The hot paths in :mod:`repro.humans.pointing`, :mod:`repro.models.bezier`,
:mod:`repro.models.typing_rhythm` and :mod:`repro.models.scroll_cadence`
generate paths, typing plans and scroll cadences array-at-once.  This
module keeps the per-point/per-draw formulation of each generator --
identical distributions, identical RNG draw order, identical arithmetic
expression shapes -- so the equivalence tests can assert that same-seed
output is byte-identical, and the benchmark can measure the speedup of
the batched kernels over the loops they replaced.

Two rules make byte-identity achievable rather than approximate:

- **Stream order**: numpy's ``Generator`` consumes its bit stream
  value-for-value identically whether ``normal``/``lognormal`` is called
  once with array parameters or once per value, so a batched draw and a
  scalar draw loop realise the *same numbers* at the same seed.
- **Expression shape**: elementwise array arithmetic is IEEE-exact
  against the equivalent scalar arithmetic, but only for the same
  expression -- hence shared kernels like
  :func:`repro.models.bezier.cubic_bezier_coords` avoid ``**`` with
  exponents >= 3 (numpy's array power and Python's scalar power round
  the last ulp differently), and these references sum contextual typing
  pauses into an accumulator before adding, exactly as the batched
  assembly does.

The references include the motor-timing bugfixes (degenerate Fitts
duration, ``n == kernel`` tremor smoothing, bounded correction hook):
they are the *current* model evaluated slowly, not the buggy history.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.geometry import Point
from repro.humans.pointing import (
    DEGENERATE_DISTANCE_PX,
    HumanPointing,
    _smoothed_noise,
    minimum_jerk_profile,
)
from repro.humans.scrolling import HumanScrolling, ScrollTick
from repro.models.bezier import (
    BezierTrajectory,
    TimedPoint,
    TrajectoryParams,
    _ease_min_jerk,
)
from repro.models.refinements import LognormalTypingRhythm
from repro.models.scroll_cadence import ScrollCadence
from repro.models.typing_rhythm import PLAIN, SHIFT, KeyEvent, TypingRhythm


class ScalarHumanPointing(HumanPointing):
    """:class:`HumanPointing` with the per-sample assembly loop."""

    def path(
        self,
        start: Point,
        end: Point,
        *,
        target_width: float = 30.0,
        duration_ms: Optional[float] = None,
    ) -> List[Tuple[float, Point]]:
        profile = self.profile
        distance = start.distance_to(end)
        if distance < DEGENERATE_DISTANCE_PX:
            return [(0.0, start)]
        if duration_ms is None:
            duration_ms = self.duration_ms(start, end, target_width)
        n = max(3, int(round(duration_ms / profile.sample_interval_ms)) + 1)
        s = minimum_jerk_profile(n)
        dt = duration_ms / (n - 1)

        ux, uy = (end.x - start.x) / distance, (end.y - start.y) / distance
        px, py = -uy, ux

        amplitude = (
            distance
            * profile.curve_amplitude_frac
            * float(self.rng.normal(1.0, 0.35))
            * (1.0 if self.rng.random() < 0.5 else -1.0)
        )
        bow = amplitude * np.sin(np.pi * s)

        tremor = _smoothed_noise(self.rng, n, profile.jitter_px)
        envelope = np.sin(np.pi * np.linspace(0.0, 1.0, n)) ** 0.5
        tremor = tremor * envelope

        # The per-sample loop the vectorised kernel replaced: same
        # expressions, evaluated one index at a time.
        points: List[Tuple[float, Point]] = []
        for i in range(n):
            offset = bow[i] + tremor[i]
            x = start.x + (end.x - start.x) * s[i] + offset * px
            y = start.y + (end.y - start.y) * s[i] + offset * py
            points.append((i * dt, Point(float(x), float(y))))

        if self.rng.random() < profile.correction_prob and distance > 60.0:
            points = self._append_correction(points, end, dt, duration_ms)
        return points


def scalar_naive_bezier_path(
    start: Point,
    end: Point,
    rng: np.random.Generator,
    *,
    duration_ms: Optional[float] = None,
    params: Optional[TrajectoryParams] = None,
) -> List[TimedPoint]:
    """Per-point formulation of :func:`repro.models.bezier.naive_bezier_path`."""
    params = params or TrajectoryParams()
    distance = start.distance_to(end)
    if duration_ms is None:
        duration_ms = max(
            distance / params.base_speed_px_s * 1000.0, params.min_duration_ms
        )
    curve = BezierTrajectory(start, end, rng, params.control_offset_frac)
    n = max(2, int(round(duration_ms / params.sample_interval_ms)) + 1)
    dt = duration_ms / (n - 1)
    return [(i * dt, curve.at(i / (n - 1))) for i in range(n)]


def scalar_hlisa_path(
    start: Point,
    end: Point,
    rng: np.random.Generator,
    *,
    duration_ms: Optional[float] = None,
    params: Optional[TrajectoryParams] = None,
) -> List[TimedPoint]:
    """Per-point formulation of :func:`repro.models.bezier.hlisa_path`."""
    params = params or TrajectoryParams()
    distance = start.distance_to(end)
    if distance < 1e-9:
        return [(0.0, start)]
    if duration_ms is None:
        speed = params.base_speed_px_s * float(
            np.exp(rng.normal(0.0, params.speed_noise_sigma))
        )
        duration_ms = max(distance / speed * 1000.0, params.min_duration_ms)
    curve = BezierTrajectory(start, end, rng, params.control_offset_frac)
    n = max(3, int(round(duration_ms / params.sample_interval_ms)) + 1)
    dt = duration_ms / (n - 1)
    eased = _ease_min_jerk(np.linspace(0.0, 1.0, n))

    jitter = rng.normal(0.0, params.jitter_px, size=n)
    if n > 5:
        kernel = np.ones(3) / 3.0
        jitter = np.convolve(jitter, kernel, mode="same")
    fade = np.sin(np.pi * np.linspace(0.0, 1.0, n))
    jitter = jitter * fade

    chord = max(distance, 1e-9)
    px = -(end.y - start.y) / chord
    py = (end.x - start.x) / chord
    points: List[TimedPoint] = []
    for i in range(n):
        base = curve.at(eased[i])
        points.append(
            (i * dt, Point(float(base.x + jitter[i] * px), float(base.y + jitter[i] * py)))
        )
    return points


class ScalarTypingRhythm(TypingRhythm):
    """:class:`TypingRhythm` drawing one value at a time via ``_normal``."""

    def _contextual_pause(self, previous: str, current: str) -> float:
        p = self.params
        extra = 0.0
        if previous == " ":
            extra += self._normal(
                p.pause_new_word_ms, p.pause_new_word_ms * p.pause_sd_frac, 0.0
            )
        if previous == ",":
            extra += self._normal(
                p.pause_comma_ms, p.pause_comma_ms * p.pause_sd_frac, 0.0
            )
        if previous in ".!?":
            extra += self._normal(
                p.pause_sentence_ms, p.pause_sentence_ms * p.pause_sd_frac, 0.0
            )
        if current.isupper() and previous in ".!? ":
            extra += self._normal(
                p.pause_open_sentence_ms, p.pause_open_sentence_ms * p.pause_sd_frac, 0.0
            )
        return extra

    def plan(self, text: str) -> List[KeyEvent]:
        p = self.params
        events: List[KeyEvent] = []
        previous: Optional[str] = None
        for char in text:
            flight = 0.0
            if previous is not None:
                flight = self._normal(p.flight_mean_ms, p.flight_sd_ms, 12.0)
                flight += self._contextual_pause(previous, char)
            dwell = self._normal(p.dwell_mean_ms, p.dwell_sd_ms, 15.0)
            modifier = self.layout.modifier_for(char)
            if modifier is not PLAIN:
                modifier_key = "Shift" if modifier is SHIFT else "AltGraph"
                lead = self._normal(p.shift_lead_mean_ms, p.shift_lead_mean_ms * 0.3, 8.0)
                lag = self._normal(p.shift_lag_mean_ms, p.shift_lag_mean_ms * 0.3, 5.0)
                events.append((max(flight - lead, 4.0), "down", modifier_key))
                events.append((lead, "down", char))
                events.append((dwell, "up", char))
                events.append((lag, "up", modifier_key))
            else:
                events.append((flight, "down", char))
                events.append((dwell, "up", char))
            previous = char
        return events


class ScalarLognormalTypingRhythm(ScalarTypingRhythm):
    """Scalar plan loop with the lognormal counter-refinement's draws."""

    _normal = LognormalTypingRhythm._normal


class ScalarScrollCadence(ScrollCadence):
    """:class:`ScrollCadence` drawing one pause per tick."""

    def plan(self, distance_px: float) -> List[ScrollTick]:
        p = self.params
        if distance_px == 0:
            return []
        direction = 1.0 if distance_px > 0 else -1.0
        delta = direction * p.wheel_tick_px
        pauses: List[float] = []
        remaining = abs(distance_px)
        sweep = self._sweep_length()
        in_sweep = 0
        while remaining > 0:
            if not pauses:
                pause = 0.0
            elif in_sweep == sweep:
                pause = float(
                    max(self.rng.normal(p.finger_pause_mean_ms, p.finger_pause_sd_ms), 100.0)
                )
                sweep = self._sweep_length()
                in_sweep = 0
            else:
                pause = float(
                    max(self.rng.normal(p.tick_pause_mean_ms, p.tick_pause_sd_ms), 12.0)
                )
            pauses.append(pause)
            in_sweep += 1
            remaining -= p.wheel_tick_px
        return [(pause, delta) for pause in pauses]


class ScalarHumanScrolling(HumanScrolling):
    """:class:`HumanScrolling` with per-tick draws and a per-frame drag loop."""

    def plan(self, distance_px: float) -> List[ScrollTick]:
        profile = self.profile
        if distance_px == 0:
            return []
        direction = 1.0 if distance_px > 0 else -1.0
        delta = direction * profile.wheel_tick_px
        pauses: List[float] = []
        remaining = abs(distance_px)
        sweep = self._sweep_length()
        in_sweep = 0
        while remaining > 0:
            if not pauses:
                pause = 0.0
            elif in_sweep == sweep:
                pause = self._finger_pause()
                sweep = self._sweep_length()
                in_sweep = 0
            else:
                pause = self._tick_pause()
            pauses.append(pause)
            in_sweep += 1
            remaining -= profile.wheel_tick_px
        return [(pause, delta) for pause in pauses]

    def plan_scrollbar_drag(
        self,
        distance_px: float,
        current_scroll_y: float = 0.0,
    ) -> List[Tuple[float, float]]:
        if distance_px == 0:
            return []
        duration_ms = float(
            max(500.0, 300.0 + abs(distance_px) * 0.38)
            * np.exp(self.rng.normal(0.0, 0.15))
        )
        n = max(4, int(round(duration_ms / self.DRAG_FRAME_MS)))
        s = minimum_jerk_profile(n)
        tremor = self.rng.normal(0.0, abs(distance_px) * 0.004, size=n)
        tremor[0] = tremor[-1] = 0.0
        plan: List[Tuple[float, float]] = []
        for i in range(1, n):
            target = current_scroll_y + distance_px * s[i] + tremor[i]
            plan.append((self.DRAG_FRAME_MS, float(target)))
        return plan
