"""HLISA's typing model (Section 4.1, "Key presses").

Selenium types at 13,333 cpm with zero dwell, no errors and no modifier
keys.  HLISA instead:

- draws **dwell times** from a normal distribution parametrised from the
  experiment;
- draws **flight times** likewise, adding contextual pauses based on the
  measurements of Alves et al. [1] (new word, comma, sentence boundaries);
- **simulates a Shift press** when the character requires it, so a page
  monitoring modifier keys sees a consistent keyboard layout.

The model intentionally sticks to normal distributions -- the paper's
Appendix F concedes this simplification (human timing is not normal),
which is what separates HLISA from the generative human model in
:mod:`repro.humans.typing` at the distribution level.

Plan generation is vectorised: the (deterministic) scan of the text
builds a *draw schedule* -- the exact ``(mean, sd, floor)`` sequence the
scalar model would request one draw at a time -- and a single batched
generator call realises all of them.  numpy's ``Generator.normal`` with
array parameters consumes the bit stream value-for-value like the
equivalent sequence of scalar draws, so same-seed plans are
byte-identical to the scalar golden reference
(:class:`repro.models.scalar_reference.ScalarTypingRhythm`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.humans.typing import needs_shift
from repro.models.layouts import ALTGR, PLAIN, SHIFT, US_LAYOUT, KeyboardLayout

KeyEvent = Tuple[float, str, str]  # (dt since previous event ms, "down"/"up", key)


@dataclass
class TypingParams:
    """HLISA typing parameters (defaults from the experiment)."""

    dwell_mean_ms: float = 92.0
    dwell_sd_ms: float = 22.0
    flight_mean_ms: float = 140.0
    flight_sd_ms: float = 42.0
    #: Contextual pause means (ms), after Alves et al.
    pause_new_word_ms: float = 200.0
    pause_comma_ms: float = 400.0
    pause_sentence_ms: float = 800.0
    pause_open_sentence_ms: float = 500.0
    pause_sd_frac: float = 0.4
    #: Shift lead/lag around a shifted character (ms).
    shift_lead_mean_ms: float = 48.0
    shift_lag_mean_ms: float = 36.0


class TypingRhythm:
    """Generates HLISA key-event plans for a piece of text.

    ``layout`` selects the keyboard layout whose modifier conventions
    the simulated typist follows (Section 4.1: pages can infer the
    layout from modifier usage, so it must be chosen deliberately and
    kept consistent with the rest of the fingerprint).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        params: Optional[TypingParams] = None,
        layout: KeyboardLayout = US_LAYOUT,
    ) -> None:
        self.rng = rng
        self.params = params or TypingParams()
        self.layout = layout

    def _normal(self, mean: float, sd: float, floor: float) -> float:
        """One scalar draw -- kept for subclass/compat; the batched plan
        path goes through :meth:`_draw_batch` instead."""
        return float(max(self.rng.normal(mean, sd), floor))

    def _draw_batch(self, means: np.ndarray, sds: np.ndarray, floors: np.ndarray) -> np.ndarray:
        """Realise a whole draw schedule with one generator call.

        Subclasses that change the distribution family (e.g. the
        lognormal counter-refinement) override this; the contract is that
        the batch must consume the generator stream exactly as the same
        sequence of per-value draws would.
        """
        if means.size == 0:
            return means
        return np.maximum(self.rng.normal(means, sds), floors)

    def _schedule_pauses(self, schedule: list, previous: str, current: str) -> int:
        """Append this transition's contextual-pause draws; return count."""
        p = self.params
        count = 0
        if previous == " ":
            schedule.append((p.pause_new_word_ms, p.pause_new_word_ms * p.pause_sd_frac, 0.0))
            count += 1
        if previous == ",":
            schedule.append((p.pause_comma_ms, p.pause_comma_ms * p.pause_sd_frac, 0.0))
            count += 1
        if previous in ".!?":
            schedule.append((p.pause_sentence_ms, p.pause_sentence_ms * p.pause_sd_frac, 0.0))
            count += 1
        if current.isupper() and previous in ".!? ":
            schedule.append(
                (p.pause_open_sentence_ms, p.pause_open_sentence_ms * p.pause_sd_frac, 0.0)
            )
            count += 1
        return count

    def plan(self, text: str) -> List[KeyEvent]:
        """Key-event plan: dwell, flight, contextual pauses, Shift."""
        p = self.params
        modifier_for = self.layout.modifier_for

        # Pass 1 (no randomness): the draw schedule, in the exact order
        # the scalar model consumes draws, plus per-char structure.
        schedule: list = []  # (mean, sd, floor) triples
        structure: list = []  # (char, modifier, has_flight, n_pauses)
        previous: Optional[str] = None
        for char in text:
            has_flight = previous is not None
            n_pauses = 0
            if has_flight:
                schedule.append((p.flight_mean_ms, p.flight_sd_ms, 12.0))
                n_pauses = self._schedule_pauses(schedule, previous, char)
            schedule.append((p.dwell_mean_ms, p.dwell_sd_ms, 15.0))
            modifier = modifier_for(char)
            if modifier is not PLAIN:
                schedule.append((p.shift_lead_mean_ms, p.shift_lead_mean_ms * 0.3, 8.0))
                schedule.append((p.shift_lag_mean_ms, p.shift_lag_mean_ms * 0.3, 5.0))
            structure.append((char, modifier, has_flight, n_pauses))
            previous = char

        if not schedule:
            return []
        table = np.array(schedule)
        draws = self._draw_batch(table[:, 0], table[:, 1], table[:, 2]).tolist()

        # Pass 2: assemble events by walking the realised draws.
        events: List[KeyEvent] = []
        i = 0
        for char, modifier, has_flight, n_pauses in structure:
            flight = 0.0
            if has_flight:
                flight = draws[i]
                i += 1
                # Sum the pauses separately, then add once: float addition
                # is non-associative, and the scalar reference accumulates
                # pauses into `extra` before adding to the flight time.
                extra = 0.0
                for _ in range(n_pauses):
                    extra += draws[i]
                    i += 1
                flight += extra
            dwell = draws[i]
            i += 1
            if modifier is not PLAIN:
                modifier_key = "Shift" if modifier is SHIFT else "AltGraph"
                lead = draws[i]
                lag = draws[i + 1]
                i += 2
                events.append((max(flight - lead, 4.0), "down", modifier_key))
                events.append((lead, "down", char))
                events.append((dwell, "up", char))
                events.append((lag, "up", modifier_key))
            else:
                events.append((flight, "down", char))
                events.append((dwell, "up", char))
        return events
