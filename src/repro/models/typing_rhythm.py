"""HLISA's typing model (Section 4.1, "Key presses").

Selenium types at 13,333 cpm with zero dwell, no errors and no modifier
keys.  HLISA instead:

- draws **dwell times** from a normal distribution parametrised from the
  experiment;
- draws **flight times** likewise, adding contextual pauses based on the
  measurements of Alves et al. [1] (new word, comma, sentence boundaries);
- **simulates a Shift press** when the character requires it, so a page
  monitoring modifier keys sees a consistent keyboard layout.

The model intentionally sticks to normal distributions -- the paper's
Appendix F concedes this simplification (human timing is not normal),
which is what separates HLISA from the generative human model in
:mod:`repro.humans.typing` at the distribution level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.humans.typing import needs_shift
from repro.models.layouts import ALTGR, PLAIN, SHIFT, US_LAYOUT, KeyboardLayout

KeyEvent = Tuple[float, str, str]  # (dt since previous event ms, "down"/"up", key)


@dataclass
class TypingParams:
    """HLISA typing parameters (defaults from the experiment)."""

    dwell_mean_ms: float = 92.0
    dwell_sd_ms: float = 22.0
    flight_mean_ms: float = 140.0
    flight_sd_ms: float = 42.0
    #: Contextual pause means (ms), after Alves et al.
    pause_new_word_ms: float = 200.0
    pause_comma_ms: float = 400.0
    pause_sentence_ms: float = 800.0
    pause_open_sentence_ms: float = 500.0
    pause_sd_frac: float = 0.4
    #: Shift lead/lag around a shifted character (ms).
    shift_lead_mean_ms: float = 48.0
    shift_lag_mean_ms: float = 36.0


class TypingRhythm:
    """Generates HLISA key-event plans for a piece of text.

    ``layout`` selects the keyboard layout whose modifier conventions
    the simulated typist follows (Section 4.1: pages can infer the
    layout from modifier usage, so it must be chosen deliberately and
    kept consistent with the rest of the fingerprint).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        params: Optional[TypingParams] = None,
        layout: KeyboardLayout = US_LAYOUT,
    ) -> None:
        self.rng = rng
        self.params = params or TypingParams()
        self.layout = layout

    def _normal(self, mean: float, sd: float, floor: float) -> float:
        return float(max(self.rng.normal(mean, sd), floor))

    def _contextual_pause(self, previous: str, current: str) -> float:
        p = self.params
        extra = 0.0
        if previous == " ":
            extra += self._normal(p.pause_new_word_ms, p.pause_new_word_ms * p.pause_sd_frac, 0.0)
        if previous == ",":
            extra += self._normal(p.pause_comma_ms, p.pause_comma_ms * p.pause_sd_frac, 0.0)
        if previous in ".!?":
            extra += self._normal(p.pause_sentence_ms, p.pause_sentence_ms * p.pause_sd_frac, 0.0)
        if current.isupper() and previous in ".!? ":
            extra += self._normal(
                p.pause_open_sentence_ms, p.pause_open_sentence_ms * p.pause_sd_frac, 0.0
            )
        return extra

    def plan(self, text: str) -> List[KeyEvent]:
        """Key-event plan: dwell, flight, contextual pauses, Shift."""
        p = self.params
        events: List[KeyEvent] = []
        previous: Optional[str] = None
        for char in text:
            flight = 0.0
            if previous is not None:
                flight = self._normal(p.flight_mean_ms, p.flight_sd_ms, 12.0)
                flight += self._contextual_pause(previous, char)
            dwell = self._normal(p.dwell_mean_ms, p.dwell_sd_ms, 15.0)
            modifier = self.layout.modifier_for(char)
            if modifier is not PLAIN:
                modifier_key = "Shift" if modifier is SHIFT else "AltGraph"
                lead = self._normal(p.shift_lead_mean_ms, p.shift_lead_mean_ms * 0.3, 8.0)
                lag = self._normal(p.shift_lag_mean_ms, p.shift_lag_mean_ms * 0.3, 5.0)
                events.append((max(flight - lead, 4.0), "down", modifier_key))
                events.append((lead, "down", char))
                events.append((dwell, "up", char))
                events.append((lag, "up", modifier_key))
            else:
                events.append((flight, "down", char))
                events.append((dwell, "up", char))
            previous = char
        return events
