"""HLISA's scrolling model (Section 4.1, "Scrolling").

Selenium offers no scrolling API; its programmatic scrolls lack wheel
events and cover arbitrary distances.  HLISA extends the API with a
function that simulates mouse-wheel scrolling:

- the default wheel tick distance (57 pixels);
- a normal distribution of short breaks between ticks;
- a slightly longer break "to account for moving one's finger to continue
  scrolling the mouse wheel".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

ScrollTick = Tuple[float, float]  # (dt since previous tick ms, delta_y px)


@dataclass
class ScrollParams:
    """HLISA scroll parameters (defaults from the paper/experiment)."""

    #: Default mouse-wheel scroll distance (paper: 57 px).
    wheel_tick_px: float = 57.0
    #: Mean/SD of the short break between ticks (ms).
    tick_pause_mean_ms: float = 95.0
    tick_pause_sd_ms: float = 30.0
    #: Ticks per wheel sweep before the finger is repositioned.
    ticks_per_sweep_mean: float = 7.0
    #: Mean/SD of the finger-repositioning break (ms).
    finger_pause_mean_ms: float = 370.0
    finger_pause_sd_ms: float = 120.0


class ScrollCadence:
    """Generates HLISA wheel-tick plans."""

    def __init__(self, rng: np.random.Generator, params: Optional[ScrollParams] = None) -> None:
        self.rng = rng
        self.params = params or ScrollParams()

    def plan(self, distance_px: float) -> List[ScrollTick]:
        """Wheel ticks covering ``distance_px`` (sign = direction)."""
        p = self.params
        if distance_px == 0:
            return []
        direction = 1.0 if distance_px > 0 else -1.0
        remaining = abs(distance_px)
        ticks: List[ScrollTick] = []
        in_sweep = 0
        sweep = self._sweep_length()
        while remaining > 0:
            if not ticks:
                pause = 0.0
            elif in_sweep >= sweep:
                pause = float(
                    max(self.rng.normal(p.finger_pause_mean_ms, p.finger_pause_sd_ms), 100.0)
                )
                in_sweep = 0
                sweep = self._sweep_length()
            else:
                pause = float(
                    max(self.rng.normal(p.tick_pause_mean_ms, p.tick_pause_sd_ms), 12.0)
                )
            ticks.append((pause, direction * p.wheel_tick_px))
            remaining -= p.wheel_tick_px
            in_sweep += 1
        return ticks

    def _sweep_length(self) -> int:
        mean = self.params.ticks_per_sweep_mean
        return int(max(2, round(self.rng.normal(mean, mean * 0.3))))
