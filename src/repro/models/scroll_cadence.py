"""HLISA's scrolling model (Section 4.1, "Scrolling").

Selenium offers no scrolling API; its programmatic scrolls lack wheel
events and cover arbitrary distances.  HLISA extends the API with a
function that simulates mouse-wheel scrolling:

- the default wheel tick distance (57 pixels);
- a normal distribution of short breaks between ticks;
- a slightly longer break "to account for moving one's finger to continue
  scrolling the mouse wheel".

Cadence generation is batched per wheel sweep: the tick pauses inside a
sweep share one distribution, so one array draw realises the whole sweep
while consuming the generator stream exactly as the per-tick scalar loop
did (sweep length, then tick pauses, then finger pause, in order) --
same-seed plans are byte-identical to the scalar golden reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

ScrollTick = Tuple[float, float]  # (dt since previous tick ms, delta_y px)


@dataclass
class ScrollParams:
    """HLISA scroll parameters (defaults from the paper/experiment)."""

    #: Default mouse-wheel scroll distance (paper: 57 px).
    wheel_tick_px: float = 57.0
    #: Mean/SD of the short break between ticks (ms).
    tick_pause_mean_ms: float = 95.0
    tick_pause_sd_ms: float = 30.0
    #: Ticks per wheel sweep before the finger is repositioned.
    ticks_per_sweep_mean: float = 7.0
    #: Mean/SD of the finger-repositioning break (ms).
    finger_pause_mean_ms: float = 370.0
    finger_pause_sd_ms: float = 120.0


def count_wheel_ticks(distance_px: float, tick_px: float) -> int:
    """Ticks needed to cover ``distance_px``, by repeated subtraction.

    Deliberately NOT ``ceil(distance / tick)``: the scalar loop decrements
    a float accumulator, and division can disagree with accumulated
    subtraction in the last ulp right at tick boundaries.  Replicating the
    decrement keeps the batched planners tick-count-identical.
    """
    ticks = 0
    remaining = distance_px
    while remaining > 0:
        remaining -= tick_px
        ticks += 1
    return ticks


class ScrollCadence:
    """Generates HLISA wheel-tick plans."""

    def __init__(self, rng: np.random.Generator, params: Optional[ScrollParams] = None) -> None:
        self.rng = rng
        self.params = params or ScrollParams()

    def plan(self, distance_px: float) -> List[ScrollTick]:
        """Wheel ticks covering ``distance_px`` (sign = direction)."""
        p = self.params
        if distance_px == 0:
            return []
        direction = 1.0 if distance_px > 0 else -1.0
        delta = direction * p.wheel_tick_px
        total = count_wheel_ticks(abs(distance_px), p.wheel_tick_px)
        pauses: List[float] = []
        sweep = self._sweep_length()
        # First sweep opens with a free tick; later sweeps open with the
        # finger-repositioning pause.  Within a sweep, all tick pauses
        # come from one batched draw.
        group = min(sweep, total)
        pauses.append(0.0)
        pauses.extend(self._tick_pauses(group - 1))
        emitted = group
        while emitted < total:
            pauses.append(
                float(
                    max(self.rng.normal(p.finger_pause_mean_ms, p.finger_pause_sd_ms), 100.0)
                )
            )
            sweep = self._sweep_length()
            group = min(sweep, total - emitted)
            pauses.extend(self._tick_pauses(group - 1))
            emitted += group
        return [(pause, delta) for pause in pauses]

    def _tick_pauses(self, count: int) -> List[float]:
        """``count`` inter-tick pauses as one stream-preserving batch."""
        if count <= 0:
            return []
        p = self.params
        draws = self.rng.normal(p.tick_pause_mean_ms, p.tick_pause_sd_ms, size=count)
        return np.maximum(draws, 12.0).tolist()

    def _sweep_length(self) -> int:
        mean = self.params.ticks_per_sweep_mean
        return int(max(2, round(self.rng.normal(mean, mean * 0.3))))
