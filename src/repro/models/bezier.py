"""Mouse trajectories: straight line, naive Bézier, and HLISA's curve.

Fig. 1 of the paper contrasts four trajectories:

- (A) **Selenium**: a straight line at uniform speed;
- (B) a human;
- (C) the **naive solution**: a plain Bézier curve -- curved, but traversed
  at uniform speed with no jitter, "still very artificial";
- (D) **HLISA**: a Bézier curve *modified* to start with acceleration and
  end with deceleration, over a jittery curve, with speed/acceleration/
  jitter parameters taken from the experiment.

All three synthetic variants are implemented here; the human one lives in
:mod:`repro.humans.pointing`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.geometry import Point, lerp_point

TimedPoint = Tuple[float, Point]  # (dt since movement onset ms, position)


@dataclass
class TrajectoryParams:
    """HLISA trajectory parameters (defaults from the paper's experiment).

    ``base_speed_px_s`` and the acceleration shape are chosen so generated
    movements sit inside the human envelope measured in Appendix E.
    """

    #: Average cursor speed over a movement (px/s).
    base_speed_px_s: float = 900.0
    #: Trial-to-trial lognormal speed noise (sigma of log).
    speed_noise_sigma: float = 0.15
    #: Control-point offset, as a fraction of the movement distance.
    control_offset_frac: float = 0.18
    #: Jitter standard deviation perpendicular to the curve (px).
    jitter_px: float = 2.4
    #: Sampling interval between emitted pointer positions (ms).
    sample_interval_ms: float = 8.0
    #: Minimal movement duration (ms); must cooperate with the patched
    #: Selenium lower bound of 50 ms (Section 4.1).
    min_duration_ms: float = 50.0


class BezierTrajectory:
    """Cubic Bézier curve with randomised control points."""

    def __init__(self, start: Point, end: Point, rng: np.random.Generator, control_offset_frac: float = 0.18) -> None:
        self.start = start
        self.end = end
        distance = max(start.distance_to(end), 1e-9)
        ux, uy = (end.x - start.x) / distance, (end.y - start.y) / distance
        px, py = -uy, ux
        offset = distance * control_offset_frac

        def control(along: float) -> Point:
            side = float(rng.normal(0.0, 1.0)) * offset
            return Point(
                start.x + (end.x - start.x) * along + px * side,
                start.y + (end.y - start.y) * along + py * side,
            )

        self.c1 = control(1.0 / 3.0)
        self.c2 = control(2.0 / 3.0)

    def at(self, t: float) -> Point:
        """Evaluate the curve at parameter ``t`` in [0, 1]."""
        mt = 1.0 - t
        x = (
            mt**3 * self.start.x
            + 3 * mt**2 * t * self.c1.x
            + 3 * mt * t**2 * self.c2.x
            + t**3 * self.end.x
        )
        y = (
            mt**3 * self.start.y
            + 3 * mt**2 * t * self.c1.y
            + 3 * mt * t**2 * self.c2.y
            + t**3 * self.end.y
        )
        return Point(x, y)


def _ease_min_jerk(tau: np.ndarray) -> np.ndarray:
    """Acceleration/deceleration easing (minimum-jerk position profile)."""
    return 10.0 * tau**3 - 15.0 * tau**4 + 6.0 * tau**5


def straight_line_path(
    start: Point,
    end: Point,
    duration_ms: float,
    sample_interval_ms: float = 16.0,
) -> List[TimedPoint]:
    """Selenium's trajectory: straight line, uniform speed (Fig. 1 A)."""
    n = max(2, int(round(duration_ms / sample_interval_ms)) + 1)
    dt = duration_ms / (n - 1)
    return [(i * dt, lerp_point(start, end, i / (n - 1))) for i in range(n)]


def naive_bezier_path(
    start: Point,
    end: Point,
    rng: np.random.Generator,
    *,
    duration_ms: Optional[float] = None,
    params: Optional[TrajectoryParams] = None,
) -> List[TimedPoint]:
    """The naive solution (Fig. 1 C): plain Bézier at uniform speed.

    Curved, but with no jitter and a flat speed profile -- "still very
    artificial".
    """
    params = params or TrajectoryParams()
    distance = start.distance_to(end)
    if duration_ms is None:
        duration_ms = max(
            distance / params.base_speed_px_s * 1000.0, params.min_duration_ms
        )
    curve = BezierTrajectory(start, end, rng, params.control_offset_frac)
    n = max(2, int(round(duration_ms / params.sample_interval_ms)) + 1)
    dt = duration_ms / (n - 1)
    return [(i * dt, curve.at(i / (n - 1))) for i in range(n)]


def hlisa_path(
    start: Point,
    end: Point,
    rng: np.random.Generator,
    *,
    duration_ms: Optional[float] = None,
    params: Optional[TrajectoryParams] = None,
) -> List[TimedPoint]:
    """HLISA's trajectory (Fig. 1 D).

    A Bézier curve traversed with a minimum-jerk speed profile (initial
    acceleration, final deceleration) and low-amplitude smoothed jitter
    perpendicular to the path.
    """
    params = params or TrajectoryParams()
    distance = start.distance_to(end)
    if distance < 1e-9:
        return [(0.0, start)]
    if duration_ms is None:
        speed = params.base_speed_px_s * float(
            np.exp(rng.normal(0.0, params.speed_noise_sigma))
        )
        duration_ms = max(distance / speed * 1000.0, params.min_duration_ms)
    curve = BezierTrajectory(start, end, rng, params.control_offset_frac)
    n = max(3, int(round(duration_ms / params.sample_interval_ms)) + 1)
    dt = duration_ms / (n - 1)
    eased = _ease_min_jerk(np.linspace(0.0, 1.0, n))

    # Smoothed jitter, zeroed at the endpoints so the cursor lands exactly.
    jitter = rng.normal(0.0, params.jitter_px, size=n)
    if n > 5:
        kernel = np.ones(3) / 3.0
        jitter = np.convolve(jitter, kernel, mode="same")
    fade = np.sin(np.pi * np.linspace(0.0, 1.0, n))
    jitter = jitter * fade

    points: List[TimedPoint] = []
    for i in range(n):
        base = curve.at(float(eased[i]))
        # Perpendicular direction approximated from the chord.
        chord = max(distance, 1e-9)
        px = -(end.y - start.y) / chord
        py = (end.x - start.x) / chord
        points.append(
            (i * dt, Point(base.x + jitter[i] * px, base.y + jitter[i] * py))
        )
    return points
