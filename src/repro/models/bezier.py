"""Mouse trajectories: straight line, naive Bézier, and HLISA's curve.

Fig. 1 of the paper contrasts four trajectories:

- (A) **Selenium**: a straight line at uniform speed;
- (B) a human;
- (C) the **naive solution**: a plain Bézier curve -- curved, but traversed
  at uniform speed with no jitter, "still very artificial";
- (D) **HLISA**: a Bézier curve *modified* to start with acceleration and
  end with deceleration, over a jittery curve, with speed/acceleration/
  jitter parameters taken from the experiment.

All three synthetic variants are implemented here; the human one lives in
:mod:`repro.humans.pointing`.

Curve evaluation is vectorised: one cubic-Bernstein kernel evaluates the
whole parameter grid at once.  The Bernstein basis is written with
explicit multiplications (``mt * mt * mt``, never ``mt ** 3``) because
numpy's array power and Python's scalar power round the last ulp
differently -- the explicit form is IEEE-exact in both, which is what
keeps the scalar golden reference byte-identical to these kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Tuple

import numpy as np

from repro.geometry import Point, lerp_point
from repro.geometry import timed_points as _timed_points

TimedPoint = Tuple[float, Point]  # (dt since movement onset ms, position)


@dataclass
class TrajectoryParams:
    """HLISA trajectory parameters (defaults from the paper's experiment).

    ``base_speed_px_s`` and the acceleration shape are chosen so generated
    movements sit inside the human envelope measured in Appendix E.
    """

    #: Average cursor speed over a movement (px/s).
    base_speed_px_s: float = 900.0
    #: Trial-to-trial lognormal speed noise (sigma of log).
    speed_noise_sigma: float = 0.15
    #: Control-point offset, as a fraction of the movement distance.
    control_offset_frac: float = 0.18
    #: Jitter standard deviation perpendicular to the curve (px).
    jitter_px: float = 2.4
    #: Sampling interval between emitted pointer positions (ms).
    sample_interval_ms: float = 8.0
    #: Minimal movement duration (ms); must cooperate with the patched
    #: Selenium lower bound of 50 ms (Section 4.1).
    min_duration_ms: float = 50.0


def cubic_bezier_coords(
    t,
    p0x: float,
    p0y: float,
    c1x: float,
    c1y: float,
    c2x: float,
    c2y: float,
    p1x: float,
    p1y: float,
):
    """Evaluate a cubic Bézier at parameter(s) ``t`` -> ``(x, y)``.

    Works elementwise on arrays and on scalars; the Bernstein weights use
    explicit multiplication so scalar and array evaluation agree bitwise.
    """
    mt = 1.0 - t
    w0 = mt * mt * mt
    w1 = 3.0 * (mt * mt) * t
    w2 = 3.0 * mt * (t * t)
    w3 = t * t * t
    x = w0 * p0x + w1 * c1x + w2 * c2x + w3 * p1x
    y = w0 * p0y + w1 * c1y + w2 * c2y + w3 * p1y
    return x, y


class BezierTrajectory:
    """Cubic Bézier curve with randomised control points."""

    def __init__(self, start: Point, end: Point, rng: np.random.Generator, control_offset_frac: float = 0.18) -> None:
        self.start = start
        self.end = end
        distance = max(start.distance_to(end), 1e-9)
        ux, uy = (end.x - start.x) / distance, (end.y - start.y) / distance
        px, py = -uy, ux
        offset = distance * control_offset_frac

        def control(along: float) -> Point:
            side = float(rng.normal(0.0, 1.0)) * offset
            return Point(
                start.x + (end.x - start.x) * along + px * side,
                start.y + (end.y - start.y) * along + py * side,
            )

        self.c1 = control(1.0 / 3.0)
        self.c2 = control(2.0 / 3.0)

    def at(self, t: float) -> Point:
        """Evaluate the curve at parameter ``t`` in [0, 1]."""
        x, y = cubic_bezier_coords(
            t,
            self.start.x,
            self.start.y,
            self.c1.x,
            self.c1.y,
            self.c2.x,
            self.c2.y,
            self.end.x,
            self.end.y,
        )
        return Point(float(x), float(y))

    def at_array(self, t: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate the curve at every parameter of ``t`` at once."""
        return cubic_bezier_coords(
            t,
            self.start.x,
            self.start.y,
            self.c1.x,
            self.c1.y,
            self.c2.x,
            self.c2.y,
            self.end.x,
            self.end.y,
        )


def _ease_min_jerk(tau: np.ndarray) -> np.ndarray:
    """Acceleration/deceleration easing (minimum-jerk position profile)."""
    return 10.0 * tau**3 - 15.0 * tau**4 + 6.0 * tau**5


@lru_cache(maxsize=512)
def _eased_grid(n: int) -> np.ndarray:
    """Memoised minimum-jerk easing over ``n`` uniform samples (read-only)."""
    eased = _ease_min_jerk(np.linspace(0.0, 1.0, n))
    eased.flags.writeable = False
    return eased


@lru_cache(maxsize=512)
def _fade_grid(n: int) -> np.ndarray:
    """Memoised endpoint fade for jitter over ``n`` samples (read-only)."""
    fade = np.sin(np.pi * np.linspace(0.0, 1.0, n))
    fade.flags.writeable = False
    return fade


def straight_line_path(
    start: Point,
    end: Point,
    duration_ms: float,
    sample_interval_ms: float = 16.0,
) -> List[TimedPoint]:
    """Selenium's trajectory: straight line, uniform speed (Fig. 1 A)."""
    n = max(2, int(round(duration_ms / sample_interval_ms)) + 1)
    dt = duration_ms / (n - 1)
    return [(i * dt, lerp_point(start, end, i / (n - 1))) for i in range(n)]


def naive_bezier_path(
    start: Point,
    end: Point,
    rng: np.random.Generator,
    *,
    duration_ms: Optional[float] = None,
    params: Optional[TrajectoryParams] = None,
) -> List[TimedPoint]:
    """The naive solution (Fig. 1 C): plain Bézier at uniform speed.

    Curved, but with no jitter and a flat speed profile -- "still very
    artificial".
    """
    params = params or TrajectoryParams()
    distance = start.distance_to(end)
    if duration_ms is None:
        duration_ms = max(
            distance / params.base_speed_px_s * 1000.0, params.min_duration_ms
        )
    curve = BezierTrajectory(start, end, rng, params.control_offset_frac)
    n = max(2, int(round(duration_ms / params.sample_interval_ms)) + 1)
    dt = duration_ms / (n - 1)
    xs, ys = curve.at_array(np.arange(n) / (n - 1))
    return _timed_points(np.arange(n) * dt, xs, ys)


def hlisa_path(
    start: Point,
    end: Point,
    rng: np.random.Generator,
    *,
    duration_ms: Optional[float] = None,
    params: Optional[TrajectoryParams] = None,
) -> List[TimedPoint]:
    """HLISA's trajectory (Fig. 1 D).

    A Bézier curve traversed with a minimum-jerk speed profile (initial
    acceleration, final deceleration) and low-amplitude smoothed jitter
    perpendicular to the path.  Evaluated array-at-once; the RNG draw
    order (two control-point draws, then one jitter array) matches the
    scalar golden reference byte-for-byte.
    """
    params = params or TrajectoryParams()
    distance = start.distance_to(end)
    if distance < 1e-9:
        return [(0.0, start)]
    if duration_ms is None:
        speed = params.base_speed_px_s * float(
            np.exp(rng.normal(0.0, params.speed_noise_sigma))
        )
        duration_ms = max(distance / speed * 1000.0, params.min_duration_ms)
    curve = BezierTrajectory(start, end, rng, params.control_offset_frac)
    n = max(3, int(round(duration_ms / params.sample_interval_ms)) + 1)
    dt = duration_ms / (n - 1)
    eased = _eased_grid(n)

    # Smoothed jitter, zeroed at the endpoints so the cursor lands exactly.
    jitter = rng.normal(0.0, params.jitter_px, size=n)
    if n > 5:
        kernel = np.ones(3) / 3.0
        jitter = np.convolve(jitter, kernel, mode="same")
    jitter = jitter * _fade_grid(n)

    # Perpendicular direction approximated from the chord.
    chord = max(distance, 1e-9)
    px = -(end.y - start.y) / chord
    py = (end.x - start.x) / chord
    base_x, base_y = curve.at_array(eased)
    return _timed_points(
        np.arange(n) * dt, base_x + jitter * px, base_y + jitter * py
    )
