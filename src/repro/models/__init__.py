"""HLISA's internal interaction models.

These are the models Section 4.1 builds into HLISA, parametrised "with
values found in our experiment":

- :mod:`repro.models.bezier` -- mouse trajectories: a Bézier curve modified
  to start with acceleration and end with deceleration, overlaid with
  jitter (Fig. 1 D).  Also the *naive* plain-Bézier baseline (Fig. 1 C)
  and a straight-line helper.
- :mod:`repro.models.clicks` -- click placement from a normal distribution
  (Fig. 2 bottom-right), plus the naive uniform baseline (bottom-left).
- :mod:`repro.models.typing_rhythm` -- random dwell times from a normal
  distribution, Shift synthesis for capitals, and contextual pauses based
  on Alves et al.
- :mod:`repro.models.scroll_cadence` -- mouse-wheel scrolling with the
  default 57 px tick, normally-distributed short breaks and a longer break
  for repositioning the finger.
- :mod:`repro.models.calibration` -- fits model parameters from recorded
  (human) interaction, closing the loop of Appendix E.

Note the deliberate simplification the paper concedes in Appendix F:
HLISA uses **normal distributions** throughout, while real human timing is
not normally distributed -- the gap a refined level-2 detector could
exploit (see :mod:`repro.armsrace`).
"""

from repro.models.bezier import (
    BezierTrajectory,
    TrajectoryParams,
    hlisa_path,
    naive_bezier_path,
    straight_line_path,
)
from repro.models.clicks import ClickParams, hlisa_click_point, uniform_click_point
from repro.models.typing_rhythm import TypingParams, TypingRhythm
from repro.models.scroll_cadence import ScrollParams, ScrollCadence
from repro.models.calibration import (
    calibrate_click_params,
    calibrate_typing_params,
    calibrate_scroll_params,
)
from repro.models.scalar_reference import (
    ScalarHumanPointing,
    ScalarHumanScrolling,
    ScalarLognormalTypingRhythm,
    ScalarScrollCadence,
    ScalarTypingRhythm,
    scalar_hlisa_path,
    scalar_naive_bezier_path,
)

__all__ = [
    "BezierTrajectory",
    "TrajectoryParams",
    "hlisa_path",
    "naive_bezier_path",
    "straight_line_path",
    "ClickParams",
    "hlisa_click_point",
    "uniform_click_point",
    "TypingParams",
    "TypingRhythm",
    "ScrollParams",
    "ScrollCadence",
    "calibrate_click_params",
    "calibrate_typing_params",
    "calibrate_scroll_params",
    "ScalarHumanPointing",
    "ScalarHumanScrolling",
    "ScalarLognormalTypingRhythm",
    "ScalarScrollCadence",
    "ScalarTypingRhythm",
    "scalar_hlisa_path",
    "scalar_naive_bezier_path",
]
