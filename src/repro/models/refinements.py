"""Intra-level refinements of the arms race (Section 4.2 / Appendix F).

The paper's model allows both sides to *refine* within a rung: "either
side can refine their techniques -- in this case, the models on which
detection/simulation is based."  Appendix F names the concrete opening:
"HLISA currently uses a normal distribution ... while human behaviour is
not normally distributed."

This module implements one full refinement cycle:

- :class:`SkewAwareTypingDetector` -- a *refined* level-2 detector that
  tests the shape (skewness) of the dwell-time distribution.  Real
  keystroke timings are right-skewed; stock HLISA's normal draws are
  symmetric.  Deliberately **not** part of the standard battery -- it is
  the next move in the race, not the status quo.
- :class:`LognormalTypingRhythm` -- the simulator's counter-refinement:
  HLISA's typing model with moment-matched lognormal draws, which
  restores the skew and defeats the refined detector.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.detection.base import DetectionLevel, Detector, Verdict
from repro.events.recorder import EventRecorder
from repro.humans.typing import lognormal_ms, needs_shift
from repro.models.typing_rhythm import KeyEvent, TypingParams, TypingRhythm


def sample_skewness(values) -> float:
    """Adjusted Fisher-Pearson sample skewness."""
    arr = np.asarray(list(values), dtype=float)
    n = arr.size
    if n < 3:
        raise ValueError("need at least 3 values for skewness")
    mean = arr.mean()
    sd = arr.std(ddof=1)
    if sd < 1e-12:
        return 0.0
    g1 = float(np.mean(((arr - mean) / sd) ** 3))
    return g1 * np.sqrt(n * (n - 1)) / (n - 2)


class SkewAwareTypingDetector(Detector):
    """Refined level-2 detector: dwell-time distribution *shape*.

    Human dwell times are right-skewed (lognormal-like, skewness well
    above zero); a symmetric dwell distribution over enough keystrokes
    marks a normal-model simulator.  Needs many samples -- shape tests
    on small samples are noise.
    """

    name = "skew-aware-typing"
    level = DetectionLevel.DEVIATION
    minimum_strokes = 60
    #: Human dwell skewness sits around 3*cv (~0.7 at cv 0.25); the
    #: threshold leaves head-room for sampling noise.
    skew_threshold = 0.30

    def observe(self, recorder: EventRecorder) -> Verdict:
        strokes = [
            s
            for s in recorder.key_strokes()
            if s.key not in ("Shift", "Control", "Alt", "Meta")
        ]
        if len(strokes) < self.minimum_strokes:
            return self._human()
        dwells = [s.dwell_ms for s in strokes]
        skew = sample_skewness(dwells)
        if skew < self.skew_threshold:
            return self._bot(
                0.7,
                f"dwell-time skewness {skew:.2f}: symmetric distribution "
                "(human keystroke timings are right-skewed)",
            )
        return self._human()


class LognormalTypingRhythm(TypingRhythm):
    """The counter-refinement: HLISA's typing with lognormal draws.

    Same API, same parameters, same contextual pauses and Shift model --
    only the distribution family changes, restoring the skew the refined
    detector measures.
    """

    def _normal(self, mean: float, sd: float, floor: float) -> float:
        # Replace every normal draw in the plan generation with a
        # moment-matched lognormal one.
        if mean <= 0:
            return floor
        return float(max(lognormal_ms(self.rng, mean, max(sd, 1e-6)), floor))

    def _draw_batch(self, means, sds, floors):
        # Batched counterpart of :meth:`_normal` for the vectorised plan
        # path: moment-matched lognormal draws realised in one generator
        # call.  Non-positive means take the floor *without* consuming a
        # draw, exactly as the scalar guard does, so the stream position
        # stays identical to the per-value sequence.
        out = np.asarray(floors, dtype=float).copy()
        mask = means > 0
        if mask.any():
            m = means[mask]
            s = np.maximum(sds[mask], 1e-6)
            variance_ratio = (s / m) ** 2
            sigma2 = np.log1p(variance_ratio)
            mu = np.log(m) - sigma2 / 2.0
            out[mask] = np.maximum(
                self.rng.lognormal(mu, np.sqrt(sigma2)), floors[mask]
            )
        return out
