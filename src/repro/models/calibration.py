"""Fitting HLISA model parameters from recorded interaction.

Appendix E's workflow: record a human performing simple tasks, derive the
distribution parameters, and use them as HLISA's model parameters ("We use
the speed, acceleration and jitter of the mouse movement observed in the
experiment as a baseline").  These fitters close that loop against data
captured by :class:`repro.events.recorder.EventRecorder`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.events.recorder import ClickRecord, EventRecorder, KeyStroke, flight_times
from repro.geometry import Box
from repro.models.clicks import ClickParams
from repro.models.scroll_cadence import ScrollParams
from repro.models.typing_rhythm import TypingParams


def calibrate_click_params(
    clicks: Sequence[ClickRecord],
    target: Optional[Box] = None,
) -> ClickParams:
    """Fit the click model from recorded clicks.

    Scatter sigma is estimated relative to each click target's half
    extents (the dispatch-time ``target_box`` snapshot, so moving-target
    recordings calibrate correctly); pass ``target`` explicitly only for
    recordings that lack box snapshots.  Dwell comes from the
    press/release gaps.
    """
    if not clicks:
        raise ValueError("no clicks to calibrate from")
    dx_list, dy_list = [], []
    for click in clicks:
        box = click.target_box if target is None else target
        if box is None:
            continue
        center = box.center
        dx_list.append((click.position[0] - center.x) / max(box.width / 2.0, 1e-9))
        dy_list.append((click.position[1] - center.y) / max(box.height / 2.0, 1e-9))
    if not dx_list:
        raise ValueError("no clicks carry target geometry")
    dx = np.array(dx_list)
    dy = np.array(dy_list)
    sigma_frac = float(np.sqrt((np.var(dx) + np.var(dy)) / 2.0))
    dwells = np.array([c.dwell_ms for c in clicks])
    return ClickParams(
        sigma_frac=max(sigma_frac, 0.02),
        dwell_mean_ms=float(np.mean(dwells)),
        dwell_sd_ms=float(max(np.std(dwells), 1.0)),
    )


def calibrate_typing_params(strokes: Sequence[KeyStroke]) -> TypingParams:
    """Fit dwell/flight distributions from recorded keystrokes.

    Contextual pauses are excluded from the flight estimate by trimming
    the top decile (pauses are rare, long, and would inflate the mean).
    """
    if len(strokes) < 3:
        raise ValueError("need at least 3 keystrokes to calibrate")
    character_strokes = [s for s in strokes if s.key not in ("Shift", "Control", "Alt", "Meta")]
    dwells = np.array([s.dwell_ms for s in character_strokes])
    flights = np.array(
        [f for f in flight_times(character_strokes) if f > 0]
    )
    if flights.size:
        cutoff = np.quantile(flights, 0.9)
        core_flights = flights[flights <= cutoff]
    else:
        core_flights = np.array([140.0])
    return TypingParams(
        dwell_mean_ms=float(np.mean(dwells)),
        dwell_sd_ms=float(max(np.std(dwells), 1.0)),
        flight_mean_ms=float(np.mean(core_flights)),
        flight_sd_ms=float(max(np.std(core_flights), 1.0)),
    )


def calibrate_scroll_params(recorder: EventRecorder) -> ScrollParams:
    """Fit the scroll cadence from recorded wheel events.

    The tick distance is taken from the modal wheel delta; pauses are
    split into short (within-sweep) and long (finger repositioning) by a
    2-means style threshold.
    """
    ticks = recorder.wheel_ticks()
    if len(ticks) < 3:
        raise ValueError("need at least 3 wheel events to calibrate")
    deltas = np.array([abs(t.delta_y) for t in ticks])
    tick_px = float(np.median(deltas))
    gaps = np.diff(np.array([t.timestamp for t in ticks]))
    gaps = gaps[gaps > 0]
    if gaps.size == 0:
        raise ValueError("wheel events carry no time information")
    threshold = float(np.quantile(gaps, 0.8))
    short = gaps[gaps <= threshold]
    long = gaps[gaps > threshold]
    short_mean = float(np.mean(short)) if short.size else 95.0
    long_mean = float(np.mean(long)) if long.size else short_mean * 4.0
    ticks_per_sweep = (
        float(gaps.size / max(long.size, 1)) if long.size else float(gaps.size)
    )
    return ScrollParams(
        wheel_tick_px=tick_px,
        tick_pause_mean_ms=short_mean,
        tick_pause_sd_ms=float(max(np.std(short), 1.0)) if short.size else 30.0,
        ticks_per_sweep_mean=max(ticks_per_sweep, 2.0),
        finger_pause_mean_ms=long_mean,
        finger_pause_sd_ms=float(max(np.std(long), 1.0)) if long.size else 120.0,
    )
