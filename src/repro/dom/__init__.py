"""A minimal DOM: an element tree with explicit layout boxes.

The reproduction does not need HTML parsing or CSS -- pages are built
programmatically (by the experiment tasks and the synthetic crawl sites)
with explicit geometry.  What *is* needed faithfully is everything
interaction detectors observe: hit testing (which element is under the
cursor), focus, element centres (Selenium clicks exactly there), scrollable
document heights, and event bubbling from element to document.
"""

from repro.dom.element import Element
from repro.dom.document import Document
from repro.dom.hostile import (
    install_challenge,
    install_hidden_input,
    install_overlay,
)

__all__ = [
    "Element",
    "Document",
    "install_challenge",
    "install_hidden_input",
    "install_overlay",
]
