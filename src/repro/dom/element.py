"""DOM elements with layout boxes."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.events.dispatch import EventTarget
from repro.geometry import Box, Point

#: Tags that can receive keyboard focus by clicking.
FOCUSABLE_TAGS = frozenset({"input", "textarea", "button", "select", "a"})


class Element(EventTarget):
    """A DOM element.

    Parameters
    ----------
    tag:
        Lower-case tag name (``"div"``, ``"input"``, ...).
    box:
        Layout box in **page** coordinates.  Elements without layout (e.g.
        display:none) pass ``None`` and are unclickable.
    id / classes / attributes / text:
        The usual DOM surface, used by selectors and assertions.
    """

    def __init__(
        self,
        tag: str,
        box: Optional[Box] = None,
        *,
        id: Optional[str] = None,
        classes: Optional[List[str]] = None,
        attributes: Optional[Dict[str, str]] = None,
        text: str = "",
    ) -> None:
        super().__init__()
        self.tag = tag.lower()
        self.box = box
        self.id = id
        self.classes: List[str] = list(classes or [])
        self.attributes: Dict[str, str] = dict(attributes or {})
        self.text = text
        self.children: List[Element] = []
        self.parent: Optional[Element] = None
        self.document = None  # set when attached to a Document
        #: Value of form controls (what typing writes into).
        self.value: str = ""
        #: Whether the element currently holds keyboard focus.
        self.focused: bool = False
        #: Elements can be hidden (e.g. honeypots): hidden elements have no
        #: hit-test presence but bots that go "through the DOM" still find
        #: them -- a classic detector trick.
        self.visible: bool = True
        #: HTML5 ``draggable``: dragging such an element produces the
        #: dragstart/drag/dragover/drop/dragend family of Appendix C
        #: instead of plain mouse movement.
        self.draggable: bool = attributes is not None and attributes.get("draggable") == "true"

    # -- tree ---------------------------------------------------------------

    def append_child(self, child: "Element") -> "Element":
        """Attach ``child`` and return it (for chaining)."""
        child.parent = self
        child.document = self.document
        self.children.append(child)
        if self.document is not None:
            self.document.register(child)
        return child

    def remove(self) -> "Element":
        """Detach this element (and its subtree) from the tree.

        The inverse of :meth:`append_child`: the subtree leaves its
        parent's children, the document's id registry, and hit-testing.
        Used by overlay dismissal (a robust crawler removes cookie
        banners the way a consent-manager script would).
        """
        if self.parent is not None and self in self.parent.children:
            self.parent.children.remove(self)
        self.parent = None
        if self.document is not None:
            self.document.unregister(self)
        return self

    def iter_subtree(self) -> Iterator["Element"]:
        """Depth-first iteration over this element and its descendants."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    @property
    def parent_target(self):
        """Bubbling path: parent element, then the document."""
        if self.parent is not None:
            return self.parent
        return self.document

    # -- geometry --------------------------------------------------------------

    @property
    def center(self) -> Point:
        """The element's exact centre (where Selenium clicks)."""
        if self.box is None:
            raise ValueError(f"element <{self.tag}> has no layout box")
        return self.box.center

    def contains_point(self, point: Point) -> bool:
        """Hit test against this element's own box (page coordinates)."""
        return self.visible and self.box is not None and self.box.contains(point)

    # -- state -------------------------------------------------------------------

    @property
    def focusable(self) -> bool:
        """Whether clicking this element gives it keyboard focus."""
        return self.tag in FOCUSABLE_TAGS or self.attributes.get("tabindex") is not None

    def matches(self, selector: str) -> bool:
        """Minimal CSS-selector matching: ``tag``, ``#id``, ``.class``."""
        selector = selector.strip()
        if selector.startswith("#"):
            return self.id == selector[1:]
        if selector.startswith("."):
            return selector[1:] in self.classes
        return self.tag == selector.lower()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ident = f"#{self.id}" if self.id else ""
        return f"<Element {self.tag}{ident} box={self.box}>"
