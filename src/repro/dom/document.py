"""The document: element registry, hit testing, focus management."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dom.element import Element
from repro.events.dispatch import EventTarget
from repro.geometry import Box, Point


class Document(EventTarget):
    """A page's document.

    Parameters
    ----------
    width / height:
        Page dimensions.  ``height`` may far exceed the viewport (the
        paper's scrolling task uses a 30,000 px page).
    """

    def __init__(self, width: float = 1366.0, height: float = 768.0) -> None:
        super().__init__()
        self.width = width
        self.height = height
        self.body = Element("body", Box(0, 0, width, height), id="body")
        self.body.document = self
        self._by_id: Dict[str, Element] = {"body": self.body}
        self.window = None  # set by the owning Window
        #: Element currently holding keyboard focus (None = body).
        self.active_element: Optional[Element] = None
        #: Page visibility state ("visible" or "hidden").
        self.visibility_state: str = "visible"

    # -- registry ----------------------------------------------------------

    def register(self, element: Element) -> None:
        """Index ``element`` (and its subtree) for id lookup."""
        for node in element.iter_subtree():
            node.document = self
            if node.id is not None:
                self._by_id[node.id] = node

    def unregister(self, element: Element) -> None:
        """Drop ``element`` (and its subtree) from the id registry.

        The registry maps an id to the *latest* registered element, so
        unregistering only removes entries still pointing into this
        subtree.  Focus held inside the removed subtree is released.
        """
        for node in element.iter_subtree():
            if node.id is not None and self._by_id.get(node.id) is node:
                del self._by_id[node.id]
            if self.active_element is node:
                self.active_element = None
                node.focused = False
            node.document = None

    def create_element(
        self,
        tag: str,
        box: Optional[Box] = None,
        *,
        parent: Optional[Element] = None,
        **kwargs,
    ) -> Element:
        """Create an element and attach it (to ``parent`` or the body)."""
        element = Element(tag, box, **kwargs)
        (parent or self.body).append_child(element)
        return element

    # -- queries -------------------------------------------------------------

    def get_element_by_id(self, element_id: str) -> Optional[Element]:
        """``document.getElementById``."""
        return self._by_id.get(element_id)

    def query_selector(self, selector: str) -> Optional[Element]:
        """First element matching a minimal selector (tag/#id/.class)."""
        for element in self.body.iter_subtree():
            if element.matches(selector):
                return element
        return None

    def query_selector_all(self, selector: str) -> List[Element]:
        """All elements matching a minimal selector, in tree order."""
        return [e for e in self.body.iter_subtree() if e.matches(selector)]

    def element_at(self, point: Point) -> Element:
        """Hit test: the deepest visible element containing ``point``.

        Falls back to the body, as browsers do.
        """
        hit = self.body
        for element in self.body.iter_subtree():
            if element is not self.body and element.contains_point(point):
                hit = element
        return hit

    # -- focus ------------------------------------------------------------------

    def set_focus(self, element: Optional[Element]) -> List:
        """Move keyboard focus, returning the focus-related events to fire.

        The caller (input pipeline) dispatches the returned events so their
        timestamps come from the shared clock.
        """
        from repro.events.event import Event

        transitions = []
        previous = self.active_element
        if previous is element:
            return transitions
        if previous is not None:
            previous.focused = False
            transitions.append(("blur", previous))
            transitions.append(("focusout", previous))
        self.active_element = element
        if element is not None:
            element.focused = True
            transitions.append(("focus", element))
            transitions.append(("focusin", element))
        return transitions

    @property
    def parent_target(self) -> Optional[EventTarget]:
        """Bubbling path: document -> window."""
        return self.window

    @property
    def scroll_height(self) -> float:
        """Total scrollable height of the page."""
        return self.height

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Document {self.width:.0f}x{self.height:.0f} elements={len(self._by_id)}>"
