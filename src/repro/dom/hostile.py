"""Hostile page furniture: overlays, interstitials, hidden inputs.

The builders install the DOM a hostile archetype presents into a *live*
document -- the same document the crawl's WebDriver is controlling --
so watchdog recovery manipulates real tree state (dismissing an overlay
removes its subtree from layout, hit-testing and the id registry)
rather than toggling a flag.  Each builder is idempotent per document:
re-installing replaces the previous instance, so repeated hostile
visits on one long-lived browser window never accumulate stale
furniture.
"""

from __future__ import annotations

from repro.dom.document import Document
from repro.dom.element import Element
from repro.geometry import Box

#: Well-known element ids, used by detection and cleanup.
OVERLAY_ID = "hostile-overlay"
OVERLAY_ACCEPT_ID = "hostile-overlay-accept"
CHALLENGE_ID = "hostile-challenge"
HIDDEN_INPUT_ID = "hostile-hidden-input"


def _replace(document: Document, element_id: str) -> None:
    """Remove a previously installed element with ``element_id``."""
    existing = document.get_element_by_id(element_id)
    if existing is not None:
        existing.remove()


def install_overlay(document: Document, kind: str = "modal") -> Element:
    """Install a full-page modal/cookie overlay with an accept button.

    The overlay covers the whole page, so it wins every hit test until
    dismissed -- the way a consent wall eats the clicks a crawler aims
    at the content underneath.
    """
    _replace(document, OVERLAY_ID)
    overlay = document.create_element(
        "div",
        Box(0, 0, document.width, document.height),
        id=OVERLAY_ID,
        classes=["overlay", kind],
        text="We value your privacy" if kind == "cookie-banner" else "",
    )
    document.create_element(
        "button",
        Box(
            document.width / 2.0 - 80.0,
            document.height / 2.0 + 40.0,
            160.0,
            40.0,
        ),
        parent=overlay,
        id=OVERLAY_ACCEPT_ID,
        text="Accept",
    )
    return overlay


def dismiss_overlay(overlay: Element) -> None:
    """Remove the overlay subtree (what clicking "Accept" achieves)."""
    overlay.remove()


def install_challenge(document: Document) -> Element:
    """Install a challenge interstitial (the checking-your-browser wall)."""
    _replace(document, CHALLENGE_ID)
    return document.create_element(
        "div",
        Box(0, 0, document.width, document.height),
        id=CHALLENGE_ID,
        classes=["challenge"],
        text="Checking your browser before accessing this site...",
    )


def install_hidden_input(document: Document) -> Element:
    """Install a required input with no layout box (display:none-like).

    Pointer interaction cannot reach it (no hit-test presence); only a
    scripted direct fill -- the fallback a robust automation layer keeps
    for exactly this case -- can populate it.
    """
    _replace(document, HIDDEN_INPUT_ID)
    field = document.create_element(
        "input",
        None,
        id=HIDDEN_INPUT_ID,
        classes=["hidden"],
        attributes={"required": "true"},
    )
    field.visible = False
    return field


def has_hostile_furniture(document: Document) -> bool:
    """Whether any hostile element is currently installed."""
    return any(
        document.get_element_by_id(element_id) is not None
        for element_id in (OVERLAY_ID, CHALLENGE_ID, HIDDEN_INPUT_ID)
    )
