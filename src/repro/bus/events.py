"""The typed event taxonomy carried by :class:`repro.bus.EventBus`.

Two families of events travel the bus (docs/EVENT_BUS.md):

- **notifications** describe something that already happened
  (:class:`FaultObserved`, :class:`AttemptFinished`).  Subscribers react
  but cannot veto.
- **requests** ask a capable subscriber to act.  Command requests
  (:class:`NavigateToUrl`, :class:`QueryElements`, ...) are executed by
  a :class:`~repro.browser.session.BrowserSession` adapter; hostile-page
  requests (:class:`OverlayDetected`, :class:`PageStalled`, ...) are
  :class:`Resolvable` -- a watchdog that handles one calls
  :meth:`Resolvable.resolve`, and the publisher inspects ``resolved``
  after dispatch to decide between recovery and graceful degradation.

Every event is a plain dataclass: no callbacks into the bus, no wall
clock, no global state.  ``ts_ms`` and ``seq`` are stamped by the bus at
publish time from the shared :class:`~repro.clock.VirtualClock`, so two
same-seed runs stamp identical streams.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")


def event_name(event_type: type) -> str:
    """The canonical snake-case name of an event class.

    ``NavigateToUrl`` -> ``navigate_to_url``.  Used for ``bus.events.*``
    metric counters and ``bus.*`` trace events, so the name must be a
    pure function of the class name.
    """
    return _CAMEL_BOUNDARY.sub("_", event_type.__name__).lower()


@dataclass
class BusEvent:
    """Base class of everything published on the bus.

    ``ts_ms`` (virtual-clock time) and ``seq`` (per-bus sequence number)
    are assigned by :meth:`repro.bus.EventBus.publish`; constructing an
    event does not stamp it.
    """

    ts_ms: float = field(default=0.0, init=False)
    seq: int = field(default=0, init=False)

    @property
    def name(self) -> str:
        return event_name(type(self))


@dataclass
class Resolvable(BusEvent):
    """An event a subscriber may resolve on the publisher's behalf.

    The publisher checks :attr:`resolved` after ``publish`` returns:
    unresolved hostile-page events degrade into a typed visit failure
    instead of an exception (the graceful-degradation contract).
    """

    resolved: bool = field(default=False, init=False)
    #: Who resolved it (watchdog name), for the trace.
    resolved_by: Optional[str] = field(default=None, init=False)
    #: What the resolver decided (``"dismissed"``, ``"aborted"``, ...).
    resolution: Optional[str] = field(default=None, init=False)

    def resolve(self, by: str, resolution: str) -> None:
        """Mark this event handled (idempotent; first resolver wins)."""
        if self.resolved:
            return
        self.resolved = True
        self.resolved_by = by
        self.resolution = resolution


# -- crawl lifecycle notifications ---------------------------------------


@dataclass
class AttemptStarted(BusEvent):
    """One visit attempt is about to run."""

    domain: str
    visit_index: int
    attempt: int
    browser: int


@dataclass
class AttemptFinished(BusEvent):
    """One visit attempt ended (successfully or not)."""

    domain: str
    visit_index: int
    attempt: int
    browser: int
    reached: bool
    failure_reason: Optional[str] = None


@dataclass
class FaultObserved(BusEvent):
    """A typed crawler-side fault surfaced during an attempt.

    ``instance`` is the :class:`~repro.crawl.supervisor.BrowserInstance`
    the fault struck; watchdogs use it to account per-browser health and
    to target recycle requests.
    """

    fault_type: str
    hook: str
    domain: str
    visit_index: int
    attempt: int
    browser_fatal: bool
    instance: Any = None


@dataclass
class BrowserRecycleRequested(BusEvent):
    """A watchdog asks the supervisor to tear down and respawn a browser."""

    reason: str
    instance: Any = None


@dataclass
class BrowserRecycled(BusEvent):
    """The supervisor recycled a browser (confirmation notification)."""

    reason: str
    browser: int = 0


# -- browser command requests --------------------------------------------


@dataclass
class NavigateToUrl(BusEvent):
    """Navigate the target browser to ``url``."""

    url: str
    browser: int = 0
    #: Set by the executing session adapter.
    handled: bool = field(default=False, init=False)


@dataclass
class QueryElements(BusEvent):
    """Find elements in the target browser's current document."""

    by: str
    value: str
    browser: int = 0
    handled: bool = field(default=False, init=False)
    result: Any = field(default=None, init=False)


@dataclass
class RunScript(BusEvent):
    """Execute a (scroll-idiom) script in the target browser."""

    script: str
    browser: int = 0
    handled: bool = field(default=False, init=False)
    result: Any = field(default=None, init=False)


@dataclass
class ScrollTo(BusEvent):
    """Programmatic scroll through the target browser's input pipeline."""

    x: float
    y: float
    browser: int = 0
    handled: bool = field(default=False, init=False)


# -- hostile-page requests (resolved by watchdogs) -----------------------


@dataclass
class OverlayDetected(Resolvable):
    """A modal/cookie overlay blocks the page.

    ``dismiss`` removes the overlay from the live document;
    ``action_chain`` holds the interrupted driver actions a resolver
    must replay after dismissal (the resume-the-chain contract).
    """

    domain: str
    kind: str  # "modal" | "cookie-banner"
    dismiss: Optional[Callable[[], None]] = None
    action_chain: List[Callable[[], None]] = field(default_factory=list)


@dataclass
class ChallengeDetected(Resolvable):
    """A challenge interstitial (CAPTCHA-wall style) gates the page.

    ``wait_out`` models waiting for the challenge to clear; resolvers
    pay the wait on the virtual clock before calling it.
    """

    domain: str
    wait_out: Optional[Callable[[], None]] = None


@dataclass
class InputObstructed(Resolvable):
    """A required input is hidden or too tiny for pointer interaction.

    ``fill_direct`` performs the scripted direct-keys fallback a robust
    automation layer uses on hidden elements.
    """

    domain: str
    element_id: str
    fill_direct: Optional[Callable[[], None]] = None


@dataclass
class PageStalled(Resolvable):
    """The page is consuming the visit's step budget without progress.

    A stall watchdog resolves with ``"aborted"``: the attempt is charged
    exactly the step budget and fails with ``failure_reason="stalled"``.
    Unresolved stalls model a crawler with no watchdog: the visit hangs
    until an external kill (``"stalled-unbounded"``, permanent).
    """

    domain: str
    visit_index: int
    attempt: int
