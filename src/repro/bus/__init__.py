"""repro.bus -- the deterministic crawl event bus.

A trimmed-down, fully deterministic take on browser-use's bubus: typed
events, ordered synchronous dispatch stamped from the shared virtual
clock, subscriber registry, and obs integration (``bus.events.*``
counters, ``bus.*`` trace events).  The crawl layers --
:class:`~repro.crawl.supervisor.CrawlSupervisor`, the
:class:`~repro.browser.session.BrowserSession` adapters and the
:mod:`~repro.crawl.watchdogs` -- communicate through it instead of
calling each other directly.  See docs/EVENT_BUS.md.
"""

from repro.bus.bus import (
    EventBus,
    Handler,
    NULL_BUS,
    NullBus,
    Subscription,
    resolve_or_none,
)
from repro.bus.events import (
    AttemptFinished,
    AttemptStarted,
    BrowserRecycleRequested,
    BrowserRecycled,
    BusEvent,
    ChallengeDetected,
    FaultObserved,
    InputObstructed,
    NavigateToUrl,
    OverlayDetected,
    PageStalled,
    QueryElements,
    Resolvable,
    RunScript,
    ScrollTo,
    event_name,
)

__all__ = [
    "EventBus",
    "Handler",
    "NULL_BUS",
    "NullBus",
    "Subscription",
    "resolve_or_none",
    "BusEvent",
    "Resolvable",
    "event_name",
    "AttemptStarted",
    "AttemptFinished",
    "FaultObserved",
    "BrowserRecycleRequested",
    "BrowserRecycled",
    "NavigateToUrl",
    "QueryElements",
    "RunScript",
    "ScrollTo",
    "OverlayDetected",
    "ChallengeDetected",
    "InputObstructed",
    "PageStalled",
]
