"""A small deterministic event bus (the bubus-style crawl backbone).

Design constraints, in order:

1. **Determinism** -- dispatch is *synchronous and ordered*: ``publish``
   delivers the event to matching subscribers in registration order and
   returns only when every handler has run.  Events published from
   inside a handler dispatch immediately (depth-first), so the complete
   event order is a pure function of code and seed.  Timestamps come
   from the shared :class:`~repro.clock.VirtualClock`; sequence numbers
   are a per-bus counter.
2. **No swallowed errors** -- the bus never catches handler exceptions.
   A handler that raises aborts the publish and the error propagates to
   the publisher with its type intact (lint rule FLT004 holds handlers
   to the same discipline).
3. **Observability** -- every publish increments a ``bus.events.<name>``
   metric counter and, when a tracer is attached, records a
   ``bus.<name>`` trace event on the innermost open span, so bus
   traffic lands in checkpoints and in ``repro.obs report``.

Subscribers match by event *class*: a handler subscribed to a base
class receives subclasses too (dispatch walks the event's MRO).  Within
one publish, handlers run in subscription order regardless of which
class in the MRO matched them.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.bus.events import BusEvent, event_name
from repro.clock import VirtualClock
from repro.obs.tracer import NULL_TRACER

Handler = Callable[[BusEvent], None]


class Subscription:
    """One registered handler (the token :meth:`EventBus.unsubscribe`
    takes)."""

    __slots__ = ("event_type", "handler", "name", "order")

    def __init__(
        self, event_type: Type[BusEvent], handler: Handler, name: str, order: int
    ) -> None:
        self.event_type = event_type
        self.handler = handler
        self.name = name
        self.order = order

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Subscription {self.name!r} -> "
            f"{self.event_type.__name__} (#{self.order})>"
        )


class EventBus:
    """Typed, ordered, synchronous event dispatch on the simulated clock.

    Parameters
    ----------
    clock:
        The one shared :class:`VirtualClock` events are stamped from.
    tracer:
        Optional :class:`repro.obs.Tracer`; defaults to the inert
        :data:`~repro.obs.tracer.NULL_TRACER`.  The bus reads the
        tracer's metrics registry for its ``bus.events.*`` counters.
    """

    def __init__(self, clock: VirtualClock, tracer=None) -> None:
        self.clock = clock
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._subscriptions: Dict[Type[BusEvent], List[Subscription]] = {}
        self._next_order = 0
        self._published = 0

    @property
    def metrics(self):
        return self.tracer.metrics

    # -- registry --------------------------------------------------------

    def subscribe(
        self,
        event_type: Type[BusEvent],
        handler: Handler,
        *,
        name: Optional[str] = None,
    ) -> Subscription:
        """Register ``handler`` for ``event_type`` (and its subclasses).

        Returns the subscription token.  Handlers fire in subscription
        order; the order counter is global across event types, so a
        handler registered earlier always runs earlier no matter which
        MRO entry matched it.
        """
        if not (isinstance(event_type, type) and issubclass(event_type, BusEvent)):
            raise TypeError(f"{event_type!r} is not a BusEvent subclass")
        subscription = Subscription(
            event_type,
            handler,
            name or getattr(handler, "__qualname__", repr(handler)),
            self._next_order,
        )
        self._next_order += 1
        self._subscriptions.setdefault(event_type, []).append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Remove a subscription (no-op if already removed)."""
        bucket = self._subscriptions.get(subscription.event_type)
        if bucket and subscription in bucket:
            bucket.remove(subscription)

    def subscribers(self, event_type: Type[BusEvent]) -> List[Subscription]:
        """The subscriptions an event of ``event_type`` would reach, in
        dispatch order."""
        matched: List[Subscription] = []
        for klass in event_type.__mro__:
            if klass is BusEvent:
                matched.extend(self._subscriptions.get(BusEvent, []))
                break
            if not issubclass(klass, BusEvent):
                continue
            matched.extend(self._subscriptions.get(klass, []))
        matched.sort(key=lambda s: s.order)
        return matched

    @property
    def events_published(self) -> int:
        """Total events published on this bus (monotonic)."""
        return self._published

    # -- dispatch --------------------------------------------------------

    def publish(self, event: BusEvent) -> BusEvent:
        """Stamp ``event`` and deliver it synchronously, in order.

        Returns the event so publishers can read back fields the
        handlers set (``result``, ``resolved``, ...).  Handler
        exceptions propagate untouched.
        """
        event.ts_ms = self.clock.now()
        self._published += 1
        event.seq = self._published
        name = event.name
        tracer = self.tracer
        tracer.metrics.counter("bus.events." + name).inc()
        if tracer.enabled:
            # No ``seq`` attr on the trace event: the per-bus counter
            # restarts on checkpoint resume (completed visits are skipped,
            # not replayed), so carrying it would break the resumed
            # trace's byte-identity with an uninterrupted run.
            tracer.event("bus." + name)
        for subscription in self.subscribers(type(event)):
            subscription.handler(event)
        return event

    # -- introspection ---------------------------------------------------

    def registry_snapshot(self) -> List[Tuple[str, str]]:
        """``(event_type_name, subscriber_name)`` pairs in dispatch
        order -- the property tests pin registration-order determinism
        on this."""
        rows: List[Tuple[str, str, int]] = []
        for event_type in self._subscriptions:
            for subscription in self._subscriptions[event_type]:
                rows.append(
                    (event_name(event_type), subscription.name, subscription.order)
                )
        rows.sort(key=lambda row: row[2])
        return [(event, name) for event, name, _ in rows]


#: Sentinel "no bus": publishing is a cheap no-op that still returns the
#: event, so code paths can stay branch-free.
class NullBus:
    """Inert bus: accepts subscriptions and publishes nothing."""

    clock = None
    tracer = NULL_TRACER
    metrics = NULL_TRACER.metrics
    events_published = 0

    def subscribe(self, event_type, handler, *, name=None):
        return Subscription(event_type, handler, name or "null", 0)

    def unsubscribe(self, subscription) -> None:
        return None

    def subscribers(self, event_type) -> List[Subscription]:
        return []

    def publish(self, event: BusEvent) -> BusEvent:
        return event

    def registry_snapshot(self) -> List[Tuple[str, str]]:
        return []


NULL_BUS = NullBus()


def resolve_or_none(bus, event: Any) -> Optional[Any]:
    """Publish a :class:`~repro.bus.events.Resolvable` and hand it back,
    or ``None`` when there is no live bus (watchdogs-off baselines pass
    ``None``/:data:`NULL_BUS` and degrade immediately)."""
    if bus is None or isinstance(bus, NullBus):
        return None
    return bus.publish(event)
