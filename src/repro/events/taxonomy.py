"""The interaction-event taxonomy of the paper's Appendices C and D.

Appendix C lists the events Firefox exposes that are "related to or
triggered by interaction", grouped by the object they fire on.  The paper's
prose says 57 events; the printed lists contain 54 distinct names (36
document + 16 element + 2 window).  We encode the lists *as printed* and
record the discrepancy here rather than invent three extra names.

Appendix D reduces the taxonomy to a covering set: the events that together
"cover all interaction information available to a web page".  The printed
covering set, grouped by interaction category, is encoded in
:data:`COVERING_SET`.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Events that fire on (or are observed at) the document (Appendix C).
DOCUMENT_EVENTS: Tuple[str, ...] = (
    "copy",
    "cut",
    "dragend",
    "dragenter",
    "dragleave",
    "dragover",
    "dragstart",
    "drag",
    "drop",
    "fullscreenchange",
    "gotpointercapture",
    "keydown",
    "keypress",
    "keyup",
    "lostpointercapture",
    "paste",
    "pointercancel",
    "pointerdown",
    "pointerenter",
    "pointerleave",
    "pointermove",
    "pointerout",
    "pointerover",
    "pointerup",
    "scroll",
    "selectionchange",
    "selectstart",
    "touchcancel",
    "touchend",
    "touchmove",
    "touchstart",
    "transitionend",
    "transitionrun",
    "transitionstart",
    "visibilitychange",
    "wheel",
)

#: Events that fire on individual elements (Appendix C).
ELEMENT_EVENTS: Tuple[str, ...] = (
    "auxclick",
    "blur",
    "click",
    "contextmenu",
    "dblclick",
    "focusin",
    "focusout",
    "focus",
    "mousedown",
    "mouseenter",
    "mouseleave",
    "mousemove",
    "mouseout",
    "mouseover",
    "mouseup",
    "select",
)

#: Events that fire on the window (Appendix C).
WINDOW_EVENTS: Tuple[str, ...] = (
    "resize",
    "focus",
)

#: All distinct interaction-related event names.
ALL_INTERACTION_EVENTS: Tuple[str, ...] = tuple(
    dict.fromkeys(DOCUMENT_EVENTS + ELEMENT_EVENTS + WINDOW_EVENTS)
)

#: Appendix D's covering set, grouped by interaction category.  Together
#: these events expose every piece of interaction information a page can
#: observe; everything else in Appendix C is redundant with them.
COVERING_SET: Dict[str, Tuple[str, ...]] = {
    "mouse_movement": ("mousemove",),
    "mouse_clicking": ("dblclick", "mousedown", "mouseup"),
    "scrolling": ("scroll", "wheel"),
    "typing": ("keydown", "keyup"),
    "touch": ("touchstart", "touchend"),
    "focus": ("visibilitychange", "blur", "focus"),
}

#: Flat tuple of the covering-set event names.
COVERING_SET_EVENTS: Tuple[str, ...] = tuple(
    name for group in COVERING_SET.values() for name in group
)

#: Number of event names the paper's prose claims (Appendix D: "57 events").
#: The printed appendix lists fewer distinct names; see module docstring.
PAPER_CLAIMED_EVENT_COUNT = 57
