"""Listener registration and bubbling dispatch.

A trimmed-down DOM event flow: events dispatched on an element bubble up
through its ancestors to the document and then the window, except for the
handful of non-bubbling types (``focus``/``blur``, ``mouseenter``/
``mouseleave``), matching the semantics detectors rely on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.events.event import Event

Listener = Callable[[Event], None]

#: Event types that do not propagate upwards in this model.  In the real
#: DOM, ``focus``/``blur`` and ``scroll`` do not *bubble* either, but they
#: are observable at the document/window via the capture phase (or their
#: bubbling twins ``focusin``/``focusout``); since this model has no
#: capture phase, they are allowed to propagate so a document-level
#: recorder sees what a real instrumented page sees.
NON_BUBBLING = frozenset({"mouseenter", "mouseleave", "load"})


class EventTarget:
    """Mixin providing ``addEventListener``-style listener management.

    Subclasses (elements, documents, windows) may define a ``parent_target``
    property returning the next target in the bubbling path.
    """

    def __init__(self) -> None:
        self._listeners: Dict[str, List[Listener]] = {}

    # -- registration -------------------------------------------------------

    def add_event_listener(self, event_type: str, listener: Listener) -> None:
        """Register ``listener`` for events of ``event_type``."""
        self._listeners.setdefault(event_type, []).append(listener)

    def remove_event_listener(self, event_type: str, listener: Listener) -> None:
        """Unregister a previously added listener (no-op if absent)."""
        listeners = self._listeners.get(event_type)
        if listeners and listener in listeners:
            listeners.remove(listener)

    def listener_count(self, event_type: Optional[str] = None) -> int:
        """Number of listeners for ``event_type`` (or all types)."""
        if event_type is not None:
            return len(self._listeners.get(event_type, []))
        return sum(len(ls) for ls in self._listeners.values())

    # -- dispatch -------------------------------------------------------------

    @property
    def parent_target(self) -> Optional["EventTarget"]:
        """Next target in the bubbling path (``None`` terminates)."""
        return None

    def handle_event(self, event: Event) -> None:
        """Invoke this target's listeners for ``event`` (no bubbling)."""
        for listener in list(self._listeners.get(event.type, [])):
            listener(event)

    def dispatch_event(self, event: Event) -> None:
        """Dispatch ``event`` at this target and bubble it upwards."""
        if event.target is None:
            event.target = self
        self.handle_event(event)
        if event.type in NON_BUBBLING:
            return
        node = self.parent_target
        while node is not None:
            node.handle_event(event)
            node = node.parent_target
