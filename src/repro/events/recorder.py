"""The recording website of Appendix E.

The paper measures interaction "from the website perspective" with a page
whose JavaScript records events.  :class:`EventRecorder` plays that role:
it subscribes to a window/document for the Appendix D covering set (or any
requested set) and stores the raw timeline, with typed accessors the
analysis layer builds on.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.events.event import Event
from repro.events.taxonomy import COVERING_SET_EVENTS


class EventRecorder:
    """Records dispatched events in arrival order.

    Parameters
    ----------
    event_types:
        Event names to record; defaults to the Appendix D covering set.
    """

    def __init__(self, event_types: Optional[Iterable[str]] = None) -> None:
        self.event_types: Tuple[str, ...] = tuple(event_types or COVERING_SET_EVENTS)
        self.events: List[Event] = []
        self._attached_to: List = []

    # -- wiring ---------------------------------------------------------------

    def attach(self, target) -> "EventRecorder":
        """Subscribe to ``target`` (a window, document or element)."""
        for event_type in self.event_types:
            target.add_event_listener(event_type, self._record)
        self._attached_to.append(target)
        return self

    def detach(self) -> None:
        """Unsubscribe from every previously attached target."""
        for target in self._attached_to:
            for event_type in self.event_types:
                target.remove_event_listener(event_type, self._record)
        self._attached_to.clear()

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()

    def _record(self, event: Event) -> None:
        self.events.append(event)

    # -- access ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def of_type(self, *event_types: str) -> List[Event]:
        """Recorded events whose type is one of ``event_types``, in order."""
        wanted = set(event_types)
        return [e for e in self.events if e.type in wanted]

    def mouse_path(self) -> List[Tuple[float, float, float]]:
        """``(timestamp, x, y)`` triples of every mousemove, in order."""
        return [
            (e.timestamp, e.client_x, e.client_y) for e in self.of_type("mousemove")
        ]

    def clicks(self) -> List["ClickRecord"]:
        """Pair up mousedown/mouseup into clicks with dwell times.

        Unmatched downs (button still held at the end of the recording) are
        omitted.
        """
        records: List[ClickRecord] = []
        pending: dict = {}
        for event in self.of_type("mousedown", "mouseup"):
            if event.type == "mousedown":
                pending[event.button] = event
            else:
                down = pending.pop(event.button, None)
                if down is not None:
                    records.append(ClickRecord(down=down, up=event))
        return records

    def key_strokes(self) -> List["KeyStroke"]:
        """Pair up keydown/keyup into keystrokes with dwell times.

        Interleaved (rollover) typing is handled: each keyup matches the
        oldest unmatched keydown *of the same key*.
        """
        strokes: List[KeyStroke] = []
        pending: dict = {}
        for event in self.of_type("keydown", "keyup"):
            if event.type == "keydown":
                pending.setdefault(event.key, []).append(event)
            else:
                downs = pending.get(event.key)
                if downs:
                    strokes.append(KeyStroke(down=downs.pop(0), up=event))
        strokes.sort(key=lambda s: s.down.timestamp)
        return strokes

    def wheel_ticks(self) -> List[Event]:
        """All wheel events, in order."""
        return self.of_type("wheel")

    def scroll_events(self) -> List[Event]:
        """All scroll events, in order."""
        return self.of_type("scroll")

    def time_span(self) -> float:
        """Milliseconds between the first and last recorded event."""
        if len(self.events) < 2:
            return 0.0
        return self.events[-1].timestamp - self.events[0].timestamp


class ClickRecord:
    """A matched mousedown/mouseup pair."""

    def __init__(self, down: Event, up: Event) -> None:
        self.down = down
        self.up = up

    @property
    def dwell_ms(self) -> float:
        """Time the button was held (paper: Selenium's is negligible)."""
        return self.up.timestamp - self.down.timestamp

    @property
    def position(self) -> Tuple[float, float]:
        """Viewport coordinates of the press."""
        return (self.down.client_x, self.down.client_y)

    @property
    def button(self) -> int:
        return self.down.button

    @property
    def target(self):
        return self.down.target

    @property
    def target_box(self):
        """The target's layout box *at press time* (moving elements keep
        their dispatch-time geometry here)."""
        return self.down.target_box

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Click {self.position} dwell={self.dwell_ms:.1f}ms>"


class KeyStroke:
    """A matched keydown/keyup pair."""

    def __init__(self, down: Event, up: Event) -> None:
        self.down = down
        self.up = up

    @property
    def key(self) -> str:
        return self.down.key

    @property
    def dwell_ms(self) -> float:
        """Time the key was held down."""
        return self.up.timestamp - self.down.timestamp

    def flight_ms_to(self, next_stroke: "KeyStroke") -> float:
        """Flight time: this key's release to the next key's press.

        Negative values indicate rollover (the next key was pressed before
        this one was released), which the paper observed in fast human
        typing and never in Selenium's.
        """
        return next_stroke.down.timestamp - self.up.timestamp

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KeyStroke {self.key!r} dwell={self.dwell_ms:.1f}ms>"


def flight_times(strokes: Sequence[KeyStroke]) -> List[float]:
    """Flight times between consecutive keystrokes."""
    return [
        strokes[i].flight_ms_to(strokes[i + 1]) for i in range(len(strokes) - 1)
    ]
