"""Interaction events: taxonomy, event objects, dispatch and recording.

The paper's Appendix C enumerates the Firefox events "related to or
triggered by interaction"; Appendix D reduces them to a small covering set
that captures *all* interaction information available to a web page.  This
package provides:

- :mod:`repro.events.taxonomy` -- the event name lists, exactly as printed
  in the paper, plus the Appendix D covering set grouped by interaction
  category;
- :class:`repro.events.event.Event` -- the event object (timestamp,
  coordinates, key, deltas, modifier flags);
- :class:`repro.events.dispatch.EventTarget` -- listener registration and
  bubbling dispatch;
- :class:`repro.events.recorder.EventRecorder` -- the "website that records
  interaction" of Appendix E, storing a raw timeline with typed filters.
"""

from repro.events.taxonomy import (
    DOCUMENT_EVENTS,
    ELEMENT_EVENTS,
    WINDOW_EVENTS,
    ALL_INTERACTION_EVENTS,
    COVERING_SET,
    COVERING_SET_EVENTS,
)
from repro.events.event import Event
from repro.events.dispatch import EventTarget
from repro.events.recorder import EventRecorder

__all__ = [
    "DOCUMENT_EVENTS",
    "ELEMENT_EVENTS",
    "WINDOW_EVENTS",
    "ALL_INTERACTION_EVENTS",
    "COVERING_SET",
    "COVERING_SET_EVENTS",
    "Event",
    "EventTarget",
    "EventRecorder",
]
