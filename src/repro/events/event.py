"""The event object dispatched through the simulated browser.

A single class covers mouse, wheel, keyboard, touch and focus events; the
fields irrelevant to a given type stay at their neutral defaults, mirroring
how DOM event interfaces share a common base.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple


@dataclass
class Event:
    """A DOM-style interaction event.

    Attributes
    ----------
    type:
        Event name (one of :data:`repro.events.taxonomy.ALL_INTERACTION_EVENTS`).
    timestamp:
        Milliseconds since page load, quantised to the browser's event
        granularity (1 ms, per Appendix D).
    target:
        The :class:`~repro.dom.element.Element` (or document/window object)
        the event fired on.
    client_x / client_y:
        Pointer position in viewport coordinates (integer-valued floats, as
        browsers report integers).
    page_x / page_y:
        Pointer position in page coordinates (client + scroll offset).
    button / buttons:
        Pressed button for down/up events (0 left, 1 middle, 2 right) and
        the button bitmask held during the event.
    delta_x / delta_y:
        Wheel deltas in pixels.
    key / code:
        Logical key value (e.g. ``"A"``) and physical code (e.g. ``"KeyA"``).
    shift_key / ctrl_key / alt_key / meta_key:
        Modifier state at dispatch time.  The paper notes Selenium emits
        capital letters *without* a Shift press -- detectable here.
    detail:
        Click count for click/dblclick (as in the DOM).
    is_trusted:
        ``True`` for events produced by the input pipeline; scripts that
        synthesise events (``dispatchEvent``) produce untrusted ones.
    """

    type: str
    timestamp: float
    target: Any = None
    client_x: float = 0.0
    client_y: float = 0.0
    page_x: float = 0.0
    page_y: float = 0.0
    button: int = 0
    buttons: int = 0
    delta_x: float = 0.0
    delta_y: float = 0.0
    key: str = ""
    code: str = ""
    shift_key: bool = False
    ctrl_key: bool = False
    alt_key: bool = False
    meta_key: bool = False
    detail: int = 0
    is_trusted: bool = True
    #: Snapshot of the target element's layout box at dispatch time (what
    #: a handler reading ``getBoundingClientRect`` would have seen).  The
    #: live ``target.box`` may change later (moving elements), so
    #: analysis code must use this snapshot.
    target_box: Any = None
    #: Free-form extras (e.g. visibility state for ``visibilitychange``).
    extra: dict = field(default_factory=dict)

    @property
    def client_point(self) -> Tuple[float, float]:
        """Viewport coordinates as a tuple."""
        return (self.client_x, self.client_y)

    @property
    def modifiers(self) -> Tuple[bool, bool, bool, bool]:
        """``(shift, ctrl, alt, meta)`` modifier flags."""
        return (self.shift_key, self.ctrl_key, self.alt_key, self.meta_key)

    def target_id(self) -> Optional[str]:
        """The target element's id, if the target is an element with one."""
        return getattr(self.target, "id", None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bits = [f"{self.type}@{self.timestamp:.0f}ms"]
        if self.type.startswith(("mouse", "click", "dblclick", "aux", "context", "pointer")):
            bits.append(f"({self.client_x:.0f},{self.client_y:.0f})")
        if self.key:
            bits.append(f"key={self.key!r}")
        if self.delta_y:
            bits.append(f"dy={self.delta_y:.0f}")
        return f"<Event {' '.join(bits)}>"
