"""Reproduction of "HLISA: towards a more reliable measurement tool" (IMC 2021).

The package is organised in layers, bottom-up:

- :mod:`repro.jsobject` -- a JavaScript-like object model (prototype chains,
  property descriptors, proxies) that the fingerprint-spoofing study runs on.
- :mod:`repro.dom`, :mod:`repro.events`, :mod:`repro.browser` -- a simulated
  browser: element tree with layout, the interaction-event taxonomy of the
  paper's Appendix C, and an input pipeline that converts OS-level input into
  DOM events with Firefox's quirks.
- :mod:`repro.webdriver` -- a Selenium-like automation layer, exhibiting the
  interaction artefacts the paper measures (straight uniform-speed pointer
  moves, exact-centre clicks, zero dwell times, inhuman typing speed).
- :mod:`repro.humans` -- a generative model of human interaction used as the
  "human subject" in all experiments.
- :mod:`repro.models` + :mod:`repro.core` -- HLISA itself: humanised
  trajectories, click scatter, typing rhythm and scroll cadence behind a
  drop-in ``HLISA_ActionChains`` replacement (the paper's Table 3 API).
- :mod:`repro.detection`, :mod:`repro.armsrace` -- bot detectors at each
  level of the paper's arms-race model (Fig. 3) plus fingerprint probes.
- :mod:`repro.spoofing`, :mod:`repro.crawl` -- the four property-spoofing
  methods (Table 1) and the simulated 1,000-site field study (Table 2,
  Fig. 4).
- :mod:`repro.experiment`, :mod:`repro.analysis`, :mod:`repro.stats`,
  :mod:`repro.tools` -- the measurement harness of Appendices D/E, metric
  extraction, statistics, and the Appendix G tool-comparison backends.

Quickstart (mirrors the paper's Listing 2)::

    from repro import HLISA_ActionChains, make_browser_driver

    driver = make_browser_driver()
    ac = HLISA_ActionChains(driver)
    element = driver.find_element_by_id("text_area")
    ac.move_to_element(element)
    ac.send_keys_to_element(element, "Text..")
    ac.perform()
"""

from repro.core.hlisa_action_chains import HLISA_ActionChains
from repro.webdriver.driver import WebDriver, make_browser_driver
from repro.webdriver.action_chains import ActionChains
from repro.webdriver.action_builder import ActionBuilder
from repro.webdriver.keys import Keys

__version__ = "1.0.0"

__all__ = [
    "HLISA_ActionChains",
    "ActionChains",
    "ActionBuilder",
    "Keys",
    "WebDriver",
    "make_browser_driver",
    "__version__",
]
