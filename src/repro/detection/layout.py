"""Keyboard-layout inference from modifier usage (Section 4.1).

    "By monitoring the usage of modifier keys, detectors can infer the
    keyboard layout, which can be used for static fingerprinting
    purposes."

:func:`observe_modifier_usage` reconstructs, from the key-event stream,
which modifier accompanied each printable character;
:func:`repro.models.layouts.infer_layout` turns those observations into
a layout guess; and :class:`LayoutLanguageMismatchDetector` cross-checks
the guess against the browser's claimed language -- a German-language
fingerprint typing with US-layout modifier conventions is lying about
something.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.detection.base import DetectionLevel, Detector, Verdict
from repro.events.recorder import EventRecorder
from repro.models.layouts import ALTGR, PLAIN, SHIFT, KeyboardLayout, infer_layout


def observe_modifier_usage(recorder: EventRecorder) -> Dict[str, str]:
    """Reconstruct ``char -> modifier`` from the key-event stream.

    Modifier state is rebuilt from the Shift/AltGraph down/up events --
    exactly what a page script monitoring ``keydown`` can do.
    """
    held = {"Shift": False, "AltGraph": False}
    observations: Dict[str, str] = {}
    for event in recorder.of_type("keydown", "keyup"):
        if event.key in held:
            held[event.key] = event.type == "keydown"
            continue
        if event.type != "keydown" or len(event.key) != 1:
            continue
        if held["AltGraph"]:
            observations[event.key] = ALTGR
        elif held["Shift"]:
            observations[event.key] = SHIFT
        else:
            observations[event.key] = PLAIN
    return observations


def infer_layout_from_recording(recorder: EventRecorder) -> Optional[KeyboardLayout]:
    """The detector-side layout guess (None without discriminating chars)."""
    return infer_layout(observe_modifier_usage(recorder))


class LayoutLanguageMismatchDetector(Detector):
    """Typed layout disagrees with the claimed browser language.

    Static fingerprint (``navigator.language``) and dynamic behaviour
    (modifier conventions) must tell the same story; a simulator that
    picked its typing model and its fingerprint independently breaks the
    consistency -- a level-3 check in the Fig. 3 sense.
    """

    name = "layout-language-mismatch"
    level = DetectionLevel.CONSISTENCY

    def __init__(self, window) -> None:
        self.window = window

    def observe(self, recorder: EventRecorder) -> Verdict:
        layout = infer_layout_from_recording(recorder)
        if layout is None:
            return self._human()  # nothing discriminating was typed
        language = self.window.navigator.get("language")
        if not isinstance(language, str) or not language:
            return self._human()
        prefix = language.split("-")[0].lower()
        if any(prefix == tag for tag in layout.languages):
            return self._human()
        # The inferred layout is typical for other languages entirely.
        return self._bot(
            0.7,
            f"browser claims language {language!r} but the typing follows "
            f"the {layout.name!r} keyboard layout",
        )
