"""Fingerprint-based bot detection (Section 3 / Table 1).

Two layers:

1. The **webdriver flag**: ``navigator.webdriver`` is ``true`` by W3C
   convention in automated browsers; Vastel et al. found detectors depend
   heavily on it.  :func:`probe_webdriver_flag` reads it the way a page
   script would.
2. **Spoof-detection probes** -- the five side effects of Table 1, each
   implemented as the observable JavaScript behaviour the paper
   describes, evaluated against a pristine reference navigator:

   - incorrect order of navigator properties (``for-in`` enumeration);
   - modified ``navigator._length`` (template-attack property count);
   - new ``Object.keys(navigator)``;
   - defined ``navigator.__proto__.webdriver`` (the WebIDL brand check is
     gone after ``setPrototypeOf``);
   - unnamed ``window.navigator`` functions (Listing 1's ``toString``
     probe).

:class:`TemplateAttack` implements the Schwarz et al. style structural
diff the paper uses to find side effects automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Set

from repro.browser.navigator import NavigatorProfile, make_navigator
from repro.jsobject import (
    JSFunction,
    JSTypeError,
    for_in_names,
    get_own_property_names,
    object_keys,
)
from repro.obs.probes import (
    PROBE_SCOPE_PREFIX,
    REFERENCE_LABEL_PREFIX,
    LedgerEntry,
    ProbeLedger,
    instrument,
)

#: Function-valued navigator properties the ``toString`` probe inspects.
PROBED_FUNCTIONS = ("toString", "hasOwnProperty", "javaEnabled", "sendBeacon")

#: Ledger probe name for the plain ``navigator.webdriver`` read (the five
#: Table 1 probes are named after their :class:`SideEffect`).
PROBE_WEBDRIVER_FLAG = "WEBDRIVER_FLAG"


class SideEffect(Enum):
    """The detectable side effects of Table 1, row by row."""

    INCORRECT_PROPERTY_ORDER = "incorrect order of navigator properties"
    MODIFIED_LENGTH = "modified navigator._length"
    NEW_OBJECT_KEYS = "new Object.keys(navigator)"
    PROTO_WEBDRIVER_DEFINED = "defined navigator.__proto__.webdriver"
    UNNAMED_FUNCTIONS = "unnamed window.navigator functions"


@dataclass
class FingerprintProbeResult:
    """Everything the fingerprinting layer learned about a browser."""

    #: ``navigator.webdriver`` as the page sees it (None = undefined).
    webdriver_value: Optional[bool]
    #: Side effects revealing a spoofing attempt.
    side_effects: Set[SideEffect] = field(default_factory=set)
    #: With an instrumented window: per fired side effect, the ledger
    #: slice (the exact accesses) of the probe that revealed it.
    ledger_slices: Dict[SideEffect, List[LedgerEntry]] = field(default_factory=dict)
    #: With an instrumented window: every probe's ledger slice, fired or
    #: not, keyed by probe name (``SideEffect.name`` / ``WEBDRIVER_FLAG``).
    probe_slices: Dict[str, List[LedgerEntry]] = field(default_factory=dict)

    @property
    def webdriver_visible(self) -> bool:
        """The naive check most real-world detectors rely on."""
        return self.webdriver_value is True

    @property
    def spoofing_detected(self) -> bool:
        """Whether any Table 1 side effect fired."""
        return bool(self.side_effects)

    @property
    def bot_suspected(self) -> bool:
        """Combined verdict of a fingerprint-only detector."""
        return self.webdriver_visible or self.spoofing_detected


def _reference_navigator():
    """A pristine navigator to compare against.

    The structural observables (order, counts, keys, brand checks,
    function names) do not depend on the profile's values, so the default
    profile serves as reference for any browser.
    """
    return make_navigator(NavigatorProfile())


# -- probe-ledger plumbing ----------------------------------------------------


def _window_ledger(window) -> Optional[ProbeLedger]:
    """The probe ledger attached to a window, re-instrumenting on use.

    A window is instrumented either explicitly
    (:func:`repro.obs.probes.instrument_window`) or by a supervisor that
    sets ``window.probe_ledger`` at browser spawn.  Because spoofing may
    have replaced ``window.navigator`` (method 4) or its prototype
    (method 3) since, the navigator graph is re-walked here; attaching
    records nothing and is idempotent, so probes see a fully instrumented
    graph without the ledger observing its own bookkeeping.
    """
    navigator = window.navigator
    ledger = getattr(window, "probe_ledger", None)
    if ledger is None:
        ledger = getattr(navigator, "_probe_ledger", None)
    if ledger is not None and (
        navigator._probe_ledger is not ledger
        or navigator._probe_label != "navigator"
    ):
        # Only walk when the root is not yet carrying this ledger: every
        # graph mutation (spoofing install, proxy swap) re-instruments
        # its result, so an already-attached root means an attached graph.
        instrument(navigator, ledger, "navigator")
    return ledger


def _instrument_reference(reference, ledger: ProbeLedger) -> None:
    """Instrument the pristine comparison navigator with ``ref:`` labels,
    so both access streams of a comparison probe land in one ledger."""
    if getattr(reference, "_probe_ledger", None) is not ledger:
        instrument(reference, ledger, REFERENCE_LABEL_PREFIX + "navigator")


# -- individual probes ------------------------------------------------------


def probe_webdriver_flag(window) -> Optional[bool]:
    """Read ``navigator.webdriver`` as page JavaScript would."""
    ledger = _window_ledger(window)
    if ledger is None:
        value = window.navigator.get("webdriver")
    else:
        with ledger.scope(PROBE_SCOPE_PREFIX + PROBE_WEBDRIVER_FLAG):
            value = window.navigator.get("webdriver")
            ledger.record(
                "probe.result",
                "detector",
                key=PROBE_WEBDRIVER_FLAG,
                detail={"fired": value is True},
            )
    if isinstance(value, bool):
        return value
    return None


def probe_property_order(window, reference=None) -> bool:
    """Table 1 row 1: ``for-in`` order differs from a stock Firefox.

    A spoof that creates an *own* property makes it enumerate before the
    prototype's canonical order.
    """
    reference = reference or _reference_navigator()
    return for_in_names(window.navigator) != for_in_names(reference)


def probe_property_count(window, reference=None) -> bool:
    """Table 1 row 2: the template-attack property count changed.

    "each attempt to spoof a property increments the navigator.length
    property ... its original value remains in the prototype chain."
    """
    reference = reference or _reference_navigator()
    return _template_length(window.navigator) != _template_length(reference)


def _template_length(navigator) -> int:
    """Total own-property count along the prototype chain."""
    count = len(get_own_property_names(navigator))
    node = navigator.proto
    while node is not None:
        count += len(get_own_property_names(node))
        node = node.proto
    return count


def probe_object_keys(window, reference=None) -> bool:
    """Table 1 row 3: ``Object.keys(navigator)`` differs from stock.

    In stock Firefox every navigator property lives on the prototype, so
    the instance's own-key listing is empty; own shadow properties created
    by spoofing show up here (or, with ``defineProperty``'s default
    ``enumerable: false``, make the attribute vanish from enumeration).
    """
    reference = reference or _reference_navigator()
    return object_keys(window.navigator) != object_keys(reference)


def probe_proto_webdriver(window) -> bool:
    """Table 1 row 4: ``navigator.__proto__.webdriver`` is defined.

    In stock Firefox the prototype's accessor has a WebIDL brand check:
    reading it with the prototype itself as ``this`` throws a TypeError.
    After ``setPrototypeOf`` spoofing, the substituted prototype returns a
    plain value.
    """
    proto = window.navigator.proto
    if proto is None:
        return True  # a null-prototype navigator is itself an anomaly
    try:
        proto.get("webdriver", receiver=proto)
    except JSTypeError:
        return False
    return True


def probe_function_tostring(window) -> bool:
    """Table 1 row 5 / Listing 1: navigator methods lost their names.

    ``window.navigator.toString.toString()`` must read
    ``function toString() { [native code] }``; proxy-wrapped navigators
    hand out anonymous bound wrappers instead.
    """
    navigator = window.navigator
    for name in PROBED_FUNCTIONS:
        value = navigator.get(name)
        if isinstance(value, JSFunction):
            rendering = value.to_string()
            if f"function {name}(" not in rendering:
                return True
    return False


def probe_frozen_navigator(window) -> bool:
    """Extra probe (beyond Table 1): a frozen/sealed navigator.

    Stealth scripts sometimes ``Object.freeze`` their spoofed objects to
    prevent pages from undoing the override; a stock ``navigator`` is
    never frozen or sealed, so integrity itself is a tell.
    """
    navigator = window.navigator
    target = getattr(navigator, "target", navigator)  # probe through proxies
    is_frozen = getattr(target, "is_frozen", None)
    is_sealed = getattr(target, "is_sealed", None)
    return bool((is_frozen and is_frozen()) or (is_sealed and is_sealed()))


def run_all_probes(window, reference=None) -> FingerprintProbeResult:
    """Run the webdriver check and all five Table 1 probes.

    On an instrumented window (see :mod:`repro.obs.probes`), every
    probe's accesses are recorded under a ``detector.probe:<NAME>`` scope
    -- both on the probed navigator and, for comparison probes, on the
    ``ref:``-labelled reference -- and each fired side effect carries its
    ledger slice in the result.  Probe outcomes are identical either way:
    instrumentation only observes.
    """
    reference = reference or _reference_navigator()
    ledger = _window_ledger(window)
    probes = (
        (SideEffect.INCORRECT_PROPERTY_ORDER, lambda: probe_property_order(window, reference)),
        (SideEffect.MODIFIED_LENGTH, lambda: probe_property_count(window, reference)),
        (SideEffect.NEW_OBJECT_KEYS, lambda: probe_object_keys(window, reference)),
        (SideEffect.PROTO_WEBDRIVER_DEFINED, lambda: probe_proto_webdriver(window)),
        (SideEffect.UNNAMED_FUNCTIONS, lambda: probe_function_tostring(window)),
    )
    side_effects: Set[SideEffect] = set()
    result = FingerprintProbeResult(webdriver_value=None, side_effects=side_effects)
    if ledger is None:
        for effect, probe in probes:
            if probe():
                side_effects.add(effect)
        result.webdriver_value = probe_webdriver_flag(window)
        return result
    _instrument_reference(reference, ledger)
    for effect, probe in probes:
        with ledger.scope(PROBE_SCOPE_PREFIX + effect.name):
            start = len(ledger)
            fired = probe()
            ledger.record(
                "probe.result",
                "detector",
                key=effect.name,
                detail={"fired": bool(fired)},
            )
            entries = ledger.slice_from(start)
        result.probe_slices[effect.name] = entries
        if fired:
            side_effects.add(effect)
            result.ledger_slices[effect] = entries
    start = len(ledger)
    result.webdriver_value = probe_webdriver_flag(window)
    result.probe_slices[PROBE_WEBDRIVER_FLAG] = ledger.slice_from(start)
    return result


# -- template attack ----------------------------------------------------------


class TemplateAttack:
    """A JavaScript-template-attack-style structural differ.

    Captures a template of an object (own property names, per-prototype
    property names, enumeration order, per-property value types) and
    reports every difference against another object.  This is the
    systematic tool the paper uses to *find* side effects, as opposed to
    the targeted probes above.
    """

    def __init__(self, reference=None) -> None:
        self.reference_template = self.capture(
            reference if reference is not None else _reference_navigator()
        )

    @staticmethod
    def capture(obj) -> Dict[str, Any]:
        """Capture the structural template of an object."""
        chain: List[List[str]] = []
        node = obj.proto
        while node is not None:
            chain.append(get_own_property_names(node))
            node = node.proto
        types: Dict[str, str] = {}
        for name in for_in_names(obj):
            try:
                value = obj.get(name)
            except JSTypeError:
                types[name] = "<throws>"
                continue
            types[name] = type(value).__name__
        return {
            "own": get_own_property_names(obj),
            "keys": object_keys(obj),
            "for_in": for_in_names(obj),
            "chain": chain,
            "types": types,
        }

    def diff(self, obj) -> List[str]:
        """Differences of ``obj`` against the captured reference."""
        observed = self.capture(obj)
        reference = self.reference_template
        differences: List[str] = []
        if observed["own"] != reference["own"]:
            differences.append(
                f"own properties changed: {reference['own']} -> {observed['own']}"
            )
        if observed["keys"] != reference["keys"]:
            differences.append(
                f"Object.keys changed: {reference['keys']} -> {observed['keys']}"
            )
        if observed["for_in"] != reference["for_in"]:
            differences.append("for-in enumeration changed")
        if observed["chain"] != reference["chain"]:
            differences.append("prototype chain structure changed")
        for name, type_name in observed["types"].items():
            ref_type = reference["types"].get(name)
            if ref_type is not None and ref_type != type_name:
                differences.append(
                    f"property {name!r} type changed: {ref_type} -> {type_name}"
                )
        return differences

    def detects(self, obj) -> bool:
        """Whether the template attack finds any difference at all."""
        return bool(self.diff(obj))
