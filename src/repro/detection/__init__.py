"""Bot detectors, organised by the arms-race levels of the paper's Fig. 3.

The website side of the arms race:

- **Level 1** (:mod:`repro.detection.artificial`): "detect artificial
  behaviour" -- superhuman speed, perfect straight lines, exact-centre
  clicks, zero dwell times, 13,333 cpm typing, capitals without Shift,
  teleporting scrolls.  Catches plain Selenium.
- **Level 2** (:mod:`repro.detection.deviation`): "detect deviations from
  human behaviour" -- distributional tests on click scatter, trajectory
  shape (smooth curves without tremor), rhythmless typing, metronome
  scrolling.  Catches the naive improvements.
- **Level 3** (:mod:`repro.detection.consistency`): "tracking consistency
  of behaviour" -- cross-signal couplings such as the Fitts'-law relation
  between movement time and target difficulty, and the speed-accuracy
  trade-off.  This is the level the paper says is conceptually required
  to catch HLISA.
- **Level 4** (:mod:`repro.detection.profile_match`): "recognise specific
  user profile" -- enrolment-based matching of one individual's
  parameters (the level the paper notes may collide with the GDPR).

Fingerprint detection is orthogonal to interaction and lives in
:mod:`repro.detection.fingerprint`: the ``webdriver`` flag, a JavaScript
template attack, and the five side-effect probes of Table 1.

:mod:`repro.detection.battery` assembles standard batteries per level and
produces reports.
"""

from repro.detection.base import Detector, Verdict, DetectionLevel
from repro.detection.artificial import ARTIFICIAL_DETECTORS
from repro.detection.deviation import DEVIATION_DETECTORS
from repro.detection.consistency import CONSISTENCY_DETECTORS
from repro.detection.profile_match import EnrolledProfileDetector
from repro.detection.fingerprint import (
    FingerprintProbeResult,
    SideEffect,
    probe_webdriver_flag,
    probe_property_order,
    probe_property_count,
    probe_object_keys,
    probe_proto_webdriver,
    probe_function_tostring,
    run_all_probes,
    TemplateAttack,
)
from repro.detection.battery import DetectorBattery, BatteryReport
from repro.detection.crosscheck import (
    SmoothScrollMismatchDetector,
    TouchClaimDetector,
    cross_check,
)
from repro.detection.replay import CrossSessionReplayDetector
from repro.detection.traversal import TraversalDetector

__all__ = [
    "Detector",
    "Verdict",
    "DetectionLevel",
    "ARTIFICIAL_DETECTORS",
    "DEVIATION_DETECTORS",
    "CONSISTENCY_DETECTORS",
    "EnrolledProfileDetector",
    "FingerprintProbeResult",
    "SideEffect",
    "probe_webdriver_flag",
    "probe_property_order",
    "probe_property_count",
    "probe_object_keys",
    "probe_proto_webdriver",
    "probe_function_tostring",
    "run_all_probes",
    "TemplateAttack",
    "DetectorBattery",
    "BatteryReport",
    "SmoothScrollMismatchDetector",
    "TouchClaimDetector",
    "cross_check",
    "CrossSessionReplayDetector",
    "TraversalDetector",
]
