"""Level-2 detectors: "detect deviations from human behaviour" (Fig. 3).

The naive improvements stay within what is humanly *possible* but not
within what humans actually *do*.  These detectors compare observed
behaviour to a model of human behaviour:

- click scatter should be a centre-clustered cloud, not uniform over the
  element, and should occasionally miss the centre by a lot but never sit
  in the far corners (Fig. 2);
- long movements should carry tremor and a bell-shaped speed profile --
  a perfectly smooth curve is a parametric curve, not a hand (Fig. 1 C);
- typing should have variable dwell/flight; a metronome is a bot;
- scroll ticks should come in sweeps with finger-repositioning breaks.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.analysis.clicks import click_metrics
from repro.analysis.scroll_metrics import scroll_metrics
from repro.analysis.trajectory import per_movement_metrics
from repro.analysis.typing_metrics import typing_metrics
from repro.detection.base import DetectionLevel, Detector, Verdict
from repro.events.recorder import EventRecorder


class ClickScatterDetector(Detector):
    """Distributional test on click placement (needs many clicks)."""

    name = "click-scatter"
    level = DetectionLevel.DEVIATION
    minimum_clicks = 20

    def observe(self, recorder: EventRecorder) -> Verdict:
        clicks = recorder.clicks()
        positions: List = []
        boxes: List = []
        for click in clicks:
            box = click.target_box
            if box is None or box.width < 4 or box.height < 4:
                continue
            positions.append(click.position)
            boxes.append(box)
        if len(positions) < self.minimum_clicks:
            return self._human()
        metrics = click_metrics(positions, boxes)
        if metrics.exact_center_rate > 0.25:
            return self._bot(
                0.9,
                f"{metrics.exact_center_rate:.0%} of clicks on the exact centre "
                "(humans hardly ever click there)",
            )
        if metrics.corner_rate > 0.04:
            return self._bot(
                0.85,
                f"{metrics.corner_rate:.0%} of clicks in far corners "
                "(uniform randomisation reaches places humans never do)",
            )
        if metrics.n >= 30 and metrics.uniform_p_x > 0.2:
            return self._bot(
                0.8,
                "click placement consistent with a uniform distribution "
                "over the element (humans cluster around the centre)",
            )
        if metrics.mean_radial_offset < 0.05:
            return self._bot(
                0.8, "click scatter implausibly tight around the centre"
            )
        if metrics.mean_radial_offset > 0.95:
            return self._bot(0.7, "click scatter implausibly wide")
        return self._human()


class UniformSpeedDetector(Detector):
    """Movements at constant speed (no acceleration or deceleration).

    A constant-velocity cursor is within physical reach of a hand for a
    moment, but real movements always show a bell-shaped speed profile --
    making uniformity a *deviation from human behaviour* (the "artificial
    noise" class of Fig. 3's second rung), which is exactly what the
    naive Bézier baseline gets wrong (Fig. 1 C).
    """

    name = "uniform-speed"
    level = DetectionLevel.DEVIATION

    def observe(self, recorder: EventRecorder) -> Verdict:
        flagged = 0
        considered = 0
        for metrics in per_movement_metrics(recorder.mouse_path()):
            if metrics.chord_length < 200 or metrics.n_samples < 8:
                continue
            considered += 1
            if metrics.speed_cv < 0.10:
                flagged += 1
        if considered and flagged / considered > 0.5:
            return self._bot(
                0.9, f"{flagged}/{considered} movements at uniform speed"
            )
        return self._human()


class TrajectoryShapeDetector(Detector):
    """Smooth parametric curves and flat speed profiles."""

    name = "trajectory-shape"
    level = DetectionLevel.DEVIATION

    def observe(self, recorder: EventRecorder) -> Verdict:
        movements = [
            m
            for m in per_movement_metrics(recorder.mouse_path())
            if m.chord_length > 250 and m.n_samples >= 12
        ]
        if len(movements) < 2:
            return self._human()
        # Tremor-free curves: a curved path with essentially no residual
        # from a smooth polynomial is a parametric curve (naive Bézier).
        smooth = [m for m in movements if m.jitter_rms_px < 0.55]
        if len(smooth) / len(movements) > 0.6:
            return self._bot(
                0.85,
                f"{len(smooth)}/{len(movements)} long movements carry no "
                "motor tremor",
            )
        # Flat speed: humans accelerate then decelerate.
        flat = [
            m
            for m in movements
            if m.speed_cv < 0.2 and m.edge_to_middle_speed_ratio > 0.8
        ]
        if len(flat) / len(movements) > 0.6:
            return self._bot(
                0.8,
                f"{len(flat)}/{len(movements)} movements lack an "
                "acceleration/deceleration profile",
            )
        return self._human()


class RhythmlessTypingDetector(Detector):
    """Constant dwell/flight times: humanly possible pace, inhuman rhythm."""

    name = "rhythmless-typing"
    level = DetectionLevel.DEVIATION

    def observe(self, recorder: EventRecorder) -> Verdict:
        strokes = recorder.key_strokes()
        if len(strokes) < 15:
            return self._human()
        metrics = typing_metrics(strokes)
        if metrics.dwell_std_ms < 6.0:
            return self._bot(
                0.9,
                f"key dwell std {metrics.dwell_std_ms:.1f} ms -- metronomic",
            )
        if metrics.flight_std_ms < 10.0 and metrics.n_strokes >= 20:
            return self._bot(
                0.85,
                f"flight-time std {metrics.flight_std_ms:.1f} ms -- metronomic",
            )
        return self._human()


class PauselessTypingDetector(Detector):
    """No contextual pauses in a long text.

    Human writing pauses at word and sentence boundaries (Alves et al.);
    a flight-time distribution whose upper tail is no longer than its
    median has no pauses at all.
    """

    name = "pauseless-typing"
    level = DetectionLevel.DEVIATION

    def observe(self, recorder: EventRecorder) -> Verdict:
        strokes = [
            s
            for s in recorder.key_strokes()
            if s.key not in ("Shift", "Control", "Alt", "Meta")
        ]
        if len(strokes) < 40:
            return self._human()
        downs = np.array([s.down.timestamp for s in strokes])
        gaps = np.diff(downs)
        gaps = gaps[gaps > 0]
        if gaps.size < 20:
            return self._human()
        ratio = float(np.quantile(gaps, 0.95) / max(np.median(gaps), 1e-9))
        if ratio < 1.6:
            return self._bot(
                0.75,
                f"95th-percentile keystroke gap only {ratio:.2f}x the median "
                "-- no word/sentence pauses",
            )
        return self._human()


class MetronomeScrollDetector(Detector):
    """Scroll ticks at a fixed interval, without sweep structure.

    Scoped to *tick-wise* scrolling (per-event steps around the 57 px
    wheel tick): continuous scrolling -- scrollbar drags, smooth-scroll
    frames, trackpads -- is frame-paced by the display, and any cadence
    test there would flag humans (the paper's Appendix D point that
    scrolling is a weak detection signal).
    """

    name = "metronome-scroll"
    level = DetectionLevel.DEVIATION

    #: Per-event step range considered tick-wise scrolling (px).
    TICK_STEP_RANGE = (40.0, 80.0)
    #: Gaps at or below the display frame interval mean continuous
    #: (drag/animated) scrolling, not discrete wheel ticks.
    FRAME_PACED_GAP_MS = 40.0

    def observe(self, recorder: EventRecorder) -> Verdict:
        metrics = scroll_metrics(recorder.scroll_events(), recorder.wheel_ticks())
        if metrics.n_scroll_events < 12:
            return self._human()
        if metrics.median_tick_gap_ms <= 0:
            return self._human()
        low, high = self.TICK_STEP_RANGE
        if not (low <= metrics.median_scroll_step_px <= high):
            return self._human()  # continuous scrolling: out of scope
        if metrics.median_tick_gap_ms <= self.FRAME_PACED_GAP_MS:
            return self._human()  # frame-paced drag/animation: out of scope
        if not metrics.has_sweep_structure:
            ratio = metrics.p90_tick_gap_ms / metrics.median_tick_gap_ms
            return self._bot(
                0.7,
                f"scroll cadence has no finger-repositioning breaks "
                f"(p90/median gap = {ratio:.2f})",
            )
        return self._human()


#: The standard level-2 battery.
DEVIATION_DETECTORS = (
    UniformSpeedDetector,
    ClickScatterDetector,
    TrajectoryShapeDetector,
    RhythmlessTypingDetector,
    PauselessTypingDetector,
    MetronomeScrollDetector,
)
