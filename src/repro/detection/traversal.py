"""The third detection avenue: site traversal (navigational patterns).

The paper's introduction names three web-bot detection avenues:
fingerprinting, interaction, and *site traversal* -- and argues that the
third "cannot be solved generically, as such paths depend on the study
being executed".  This module supplies the detector side (in the spirit
of Tan & Kumar's navigational-pattern classification) so the claim can
be demonstrated: HLISA changes interaction, not traversal, so a
traversal detector flags an HLISA-driven crawl exactly as it flags a
Selenium one.

A traversal is a sequence of page visits ``(url, dwell_ms)``.  Bot
signatures:

- **systematic order**: pages visited in a monotone (list/rank/BFS)
  order; humans wander, backtrack and revisit;
- **metronomic dwell**: near-constant per-page time; human dwell is
  heavy-tailed;
- **no revisits**: a crawler working through a list never returns;
  humans return to hub pages constantly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

PageVisit = Tuple[str, float]  # (url, dwell_ms)


@dataclass(frozen=True)
class TraversalMetrics:
    """Summary of one navigation sequence."""

    n_visits: int
    n_unique: int
    revisit_rate: float
    #: Kendall-tau-style monotonicity of the visit order against the
    #: lexicographic page order (1.0 = perfectly systematic sweep).
    order_monotonicity: float
    dwell_cv: float
    dwell_p95_over_median: float


def traversal_metrics(visits: Sequence[PageVisit]) -> TraversalMetrics:
    """Compute :class:`TraversalMetrics` from a visit sequence."""
    visits = list(visits)
    if len(visits) < 3:
        raise ValueError("need at least 3 page visits")
    urls = [u for u, _ in visits]
    dwells = np.array([d for _, d in visits], dtype=float)
    unique = list(dict.fromkeys(urls))
    revisit_rate = 1.0 - len(unique) / len(urls)

    # Monotonicity of first-visit order vs sorted page order.
    order = {url: i for i, url in enumerate(sorted(set(urls)))}
    ranks = [order[u] for u in urls]
    concordant = discordant = 0
    for i in range(len(ranks) - 1):
        if ranks[i + 1] > ranks[i]:
            concordant += 1
        elif ranks[i + 1] < ranks[i]:
            discordant += 1
    steps = max(concordant + discordant, 1)
    monotonicity = (concordant - discordant) / steps

    median = float(np.median(dwells))
    return TraversalMetrics(
        n_visits=len(visits),
        n_unique=len(unique),
        revisit_rate=revisit_rate,
        order_monotonicity=float(monotonicity),
        dwell_cv=float(np.std(dwells) / np.mean(dwells)) if np.mean(dwells) > 0 else 0.0,
        dwell_p95_over_median=float(np.quantile(dwells, 0.95) / median) if median > 0 else 0.0,
    )


class TraversalDetector:
    """Flags systematic, rhythm-less, revisit-free navigation.

    Study-dependent by nature: thresholds assume a browsing-like context
    (a dozen-plus pages).  This is deliberately *not* part of the
    interaction batteries -- the paper's point is precisely that no
    interaction API can fix traversal.
    """

    name = "navigational-pattern"
    minimum_visits = 12

    def __init__(
        self,
        monotonicity_threshold: float = 0.85,
        dwell_cv_threshold: float = 0.25,
        revisit_threshold: float = 0.05,
    ) -> None:
        self.monotonicity_threshold = monotonicity_threshold
        self.dwell_cv_threshold = dwell_cv_threshold
        self.revisit_threshold = revisit_threshold

    def observe(self, visits: Sequence[PageVisit]) -> Tuple[bool, List[str]]:
        """Returns ``(is_bot, reasons)`` for a navigation sequence."""
        if len(visits) < self.minimum_visits:
            return False, []
        metrics = traversal_metrics(visits)
        reasons: List[str] = []
        signals = 0
        if abs(metrics.order_monotonicity) >= self.monotonicity_threshold:
            signals += 1
            reasons.append(
                f"systematic page order (monotonicity "
                f"{metrics.order_monotonicity:+.2f})"
            )
        if metrics.dwell_cv <= self.dwell_cv_threshold:
            signals += 1
            reasons.append(f"metronomic dwell times (CV {metrics.dwell_cv:.2f})")
        if metrics.revisit_rate <= self.revisit_threshold:
            signals += 1
            reasons.append(f"no revisits ({metrics.revisit_rate:.0%})")
        return signals >= 2, reasons


# -- traversal generators (for the demonstration benches) --------------------


def crawler_traversal(
    pages: Sequence[str],
    dwell_ms: float = 10000.0,
    rng: Optional[np.random.Generator] = None,
) -> List[PageVisit]:
    """How measurement crawlers traverse: in list order, fixed timeout.

    OpenWPM-style studies visit each page once, in order, with a
    configured per-page dwell (the paper's own field study visited its
    list with a fixed timeout).  Tiny jitter models load-time variance.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    return [
        (page, float(dwell_ms + rng.normal(0, dwell_ms * 0.02))) for page in pages
    ]


def human_traversal(
    pages: Sequence[str],
    n_visits: int = 40,
    rng: Optional[np.random.Generator] = None,
) -> List[PageVisit]:
    """How people browse: hub-and-spoke wandering with heavy-tailed dwell."""
    rng = rng if rng is not None else np.random.default_rng(1)
    pages = list(pages)
    hub = pages[0]
    visits: List[PageVisit] = []
    current = hub
    for _ in range(n_visits):
        dwell = float(rng.lognormal(np.log(8000), 0.9))
        visits.append((current, dwell))
        if current != hub and rng.random() < 0.45:
            current = hub  # back to the hub (revisit)
        else:
            current = str(rng.choice(pages))
    return visits
