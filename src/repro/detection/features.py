"""Behavioural feature vectors (used by profile matching).

A compact numeric description of one recording: pointing kinematics,
click placement, typing rhythm.  Missing modalities yield ``None`` so the
profile matcher can restrict itself to features both enrolment and probe
recordings share.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.analysis.clicks import click_metrics
from repro.analysis.trajectory import per_movement_metrics
from repro.analysis.typing_metrics import typing_metrics
from repro.events.recorder import EventRecorder

FeatureVector = Dict[str, Optional[float]]

#: Feature names, in canonical order.
FEATURE_NAMES = (
    "mean_speed_px_s",
    "speed_cv",
    "jitter_rms_px",
    "straightness",
    "click_offset_mean",
    "click_offset_std",
    "click_dwell_mean_ms",
    "key_dwell_mean_ms",
    "key_dwell_std_ms",
    "key_flight_mean_ms",
    "chars_per_minute",
)


def extract_features(recorder: EventRecorder) -> FeatureVector:
    """Extract the feature vector from one recording.

    Absent modalities (no clicks recorded, no typing, ...) produce
    ``None`` entries rather than fabricated zeros.
    """
    features: FeatureVector = {name: None for name in FEATURE_NAMES}

    movements = [
        m
        for m in per_movement_metrics(recorder.mouse_path())
        if m.chord_length > 80
    ]
    if movements:
        features["mean_speed_px_s"] = float(
            np.mean([m.mean_speed_px_s for m in movements])
        )
        features["speed_cv"] = float(np.mean([m.speed_cv for m in movements]))
        features["jitter_rms_px"] = float(
            np.mean([m.jitter_rms_px for m in movements])
        )
        features["straightness"] = float(
            np.mean([m.straightness for m in movements])
        )

    clicks = recorder.clicks()
    positions, boxes = [], []
    for click in clicks:
        box = click.target_box
        if box is not None and box.width >= 4 and box.height >= 4:
            positions.append(click.position)
            boxes.append(box)
    if len(positions) >= 5:
        cm = click_metrics(positions, boxes)
        features["click_offset_mean"] = cm.mean_radial_offset
        features["click_offset_std"] = cm.std_radial_offset
        features["click_dwell_mean_ms"] = float(
            np.mean([c.dwell_ms for c in clicks])
        )

    strokes = recorder.key_strokes()
    if len(strokes) >= 10:
        tm = typing_metrics(strokes)
        features["key_dwell_mean_ms"] = tm.dwell_mean_ms
        features["key_dwell_std_ms"] = tm.dwell_std_ms
        features["key_flight_mean_ms"] = tm.flight_mean_ms
        features["chars_per_minute"] = tm.chars_per_minute

    return features
