"""Cross-session replay detection (Section 4.2's "perfect replayability").

A bot replaying recorded human interaction defeats every within-session
detector -- the distributions and couplings are genuinely human.  What it
cannot fake is *variability across visits*: humans never produce the
same timing sequence twice; a replay does, exactly.

:class:`CrossSessionReplayDetector` keeps a library of timing signatures
from previous visits and flags a new session whose signature correlates
near-perfectly with a stored one.  Signatures are built from inter-event
timing (keystroke gaps, movement-sample gaps), which replays preserve to
the millisecond.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.detection.base import DetectionLevel, Detector, Verdict
from repro.events.recorder import EventRecorder


def timing_signature(recorder: EventRecorder, max_len: int = 400) -> np.ndarray:
    """A session's timing fingerprint: concatenated inter-event gaps.

    Keystroke-press gaps followed by mousedown gaps -- replays preserve
    both exactly; two genuine human sessions differ everywhere.
    """
    key_times = [e.timestamp for e in recorder.of_type("keydown")]
    click_times = [e.timestamp for e in recorder.of_type("mousedown")]
    gaps: List[float] = []
    for times in (key_times, click_times):
        if len(times) >= 2:
            gaps.extend(np.diff(times).tolist())
    return np.array(gaps[:max_len], dtype=float)


def signature_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of matching gaps (within 2 ms) over the shared prefix.

    Robust to truncated sessions; 1.0 = byte-identical timing.
    """
    n = min(a.size, b.size)
    if n < 10:
        return 0.0
    return float(np.mean(np.abs(a[:n] - b[:n]) <= 2.0))


@dataclass
class CrossSessionReplayDetector(Detector):
    """Flags sessions whose timing matches a previously seen visit."""

    name = "cross-session-replay"
    level = DetectionLevel.CONSISTENCY
    #: Similarity above which two sessions are "the same recording".
    similarity_threshold: float = 0.9
    #: Minimum signature length to compare at all.
    minimum_gaps: int = 20
    _library: List[np.ndarray] = field(default_factory=list)

    def observe(self, recorder: EventRecorder) -> Verdict:
        """Judge a session against the library, then remember it."""
        signature = timing_signature(recorder)
        verdict = self._judge(signature)
        if signature.size >= self.minimum_gaps:
            self._library.append(signature)
        return verdict

    def _judge(self, signature: np.ndarray) -> Verdict:
        if signature.size < self.minimum_gaps:
            return self._human()
        for stored in self._library:
            similarity = signature_similarity(signature, stored)
            if similarity >= self.similarity_threshold:
                return self._bot(
                    min(similarity, 1.0),
                    f"timing signature matches a previous visit at "
                    f"{similarity:.0%} (humans never repeat exactly)",
                )
        return self._human()

    @property
    def sessions_seen(self) -> int:
        return len(self._library)
