"""Detector interface and verdicts."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import List

from repro.events.recorder import EventRecorder


class DetectionLevel(IntEnum):
    """The detector escalation levels of the paper's Fig. 3.

    Numbering follows the arms-race ladder: a level-``k`` detector is
    expected to catch simulators below level ``k`` on the simulator side
    and to pass simulators at or above it.
    """

    ARTIFICIAL = 1  # "Detect artificial behaviour"
    DEVIATION = 2  # "Detect deviations from human behaviour"
    CONSISTENCY = 3  # "Tracking consistency of behaviour"
    PROFILE = 4  # "Recognise specific user profile"


@dataclass
class Verdict:
    """One detector's opinion about one recording."""

    detector: str
    is_bot: bool
    #: Confidence-ish score in [0, 1]; 0 = certainly human.
    score: float = 0.0
    #: Human-readable evidence (empty when not flagged).
    reasons: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.is_bot


class Detector:
    """Base class: observe a recording, return a verdict.

    Detectors see interaction only through the recorded DOM events --
    the same channel a real website has.
    """

    #: Detector name (shown in reports).
    name: str = "detector"
    #: Arms-race level this detector belongs to.
    level: DetectionLevel = DetectionLevel.ARTIFICIAL

    def observe(self, recorder: EventRecorder) -> Verdict:
        raise NotImplementedError

    def _human(self) -> Verdict:
        return Verdict(self.name, is_bot=False, score=0.0)

    def _bot(self, score: float, *reasons: str) -> Verdict:
        return Verdict(self.name, is_bot=True, score=min(max(score, 0.0), 1.0), reasons=list(reasons))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} level={int(self.level)}>"
