"""Detector batteries: cumulative per-level detector sets and reports.

A website "at level k" of the arms race deploys every detector up to and
including level ``k`` -- escalation adds capabilities, it does not discard
the cheap checks.  :class:`DetectorBattery` assembles that set and runs a
recording through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.detection.artificial import ARTIFICIAL_DETECTORS
from repro.detection.base import DetectionLevel, Detector, Verdict
from repro.detection.consistency import CONSISTENCY_DETECTORS
from repro.detection.deviation import DEVIATION_DETECTORS
from repro.detection.profile_match import EnrolledProfileDetector
from repro.events.recorder import EventRecorder


@dataclass
class BatteryReport:
    """All verdicts from one battery run."""

    level: DetectionLevel
    verdicts: List[Verdict] = field(default_factory=list)

    @property
    def is_bot(self) -> bool:
        """Whether any detector flagged the recording."""
        return any(v.is_bot for v in self.verdicts)

    @property
    def triggered(self) -> List[Verdict]:
        """The verdicts that flagged the recording."""
        return [v for v in self.verdicts if v.is_bot]

    def triggered_names(self) -> List[str]:
        return [v.detector for v in self.triggered]

    def __str__(self) -> str:
        if not self.is_bot:
            return f"[level {int(self.level)}] human"
        names = ", ".join(self.triggered_names())
        return f"[level {int(self.level)}] BOT ({names})"


class DetectorBattery:
    """All interaction detectors up to a given arms-race level.

    Parameters
    ----------
    level:
        Highest detector level to include (cumulative).
    profile_detector:
        An *enrolled* :class:`EnrolledProfileDetector` for level 4; when
        ``level`` is ``PROFILE`` and none is supplied, level 4 is simply
        skipped (profiles require enrolment data).
    """

    def __init__(
        self,
        level: DetectionLevel = DetectionLevel.CONSISTENCY,
        profile_detector: Optional[EnrolledProfileDetector] = None,
    ) -> None:
        self.level = level
        self.detectors: List[Detector] = []
        if level >= DetectionLevel.ARTIFICIAL:
            self.detectors.extend(cls() for cls in ARTIFICIAL_DETECTORS)
        if level >= DetectionLevel.DEVIATION:
            self.detectors.extend(cls() for cls in DEVIATION_DETECTORS)
        if level >= DetectionLevel.CONSISTENCY:
            self.detectors.extend(cls() for cls in CONSISTENCY_DETECTORS)
        if level >= DetectionLevel.PROFILE and profile_detector is not None:
            if not profile_detector.enrolled:
                raise ValueError("profile detector must be enrolled first")
            self.detectors.append(profile_detector)

    def evaluate(self, recorder: EventRecorder) -> BatteryReport:
        """Run every detector over the recording."""
        report = BatteryReport(level=self.level)
        for detector in self.detectors:
            report.verdicts.append(detector.observe(recorder))
        return report

    def evaluate_only_level(self, recorder: EventRecorder) -> BatteryReport:
        """Run only this battery's top-level detectors (for the arms-race
        matrix, where each rung is examined in isolation)."""
        report = BatteryReport(level=self.level)
        for detector in self.detectors:
            if detector.level == self.level:
                report.verdicts.append(detector.observe(recorder))
        return report
