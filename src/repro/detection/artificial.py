"""Level-1 detectors: "detect artificial behaviour" (Fig. 3).

These catch interaction that is *impossible* or essentially impossible
for a human: the signatures Section 4.1 attributes to plain Selenium.
Thresholds are generous -- a level-1 detector must never flag a human, so
each bound sits well outside the human envelope.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.analysis.clicks import normalised_offsets
from repro.analysis.trajectory import per_movement_metrics
from repro.analysis.typing_metrics import typing_metrics
from repro.detection.base import DetectionLevel, Detector, Verdict
from repro.events.recorder import EventRecorder

#: Sustained cursor speed beyond trained-human capability (px/s).
MAX_HUMAN_MEAN_SPEED = 3000.0
#: Instantaneous peak beyond plausible flicks (px/s).
MAX_HUMAN_PEAK_SPEED = 12000.0
#: Sustained typing beyond world-record pace (cpm).
MAX_HUMAN_CPM = 1100.0
#: A wheel tick is 57 px; a single scroll event beyond this many px
#: without wheel context cannot come from a wheel.
TELEPORT_SCROLL_PX = 4 * 57.0


class SuperhumanSpeedDetector(Detector):
    """Cursor movements faster than a human arm."""

    name = "superhuman-speed"
    level = DetectionLevel.ARTIFICIAL

    def observe(self, recorder: EventRecorder) -> Verdict:
        for metrics in per_movement_metrics(recorder.mouse_path()):
            if metrics.chord_length < 100:
                continue
            if metrics.mean_speed_px_s > MAX_HUMAN_MEAN_SPEED:
                return self._bot(
                    1.0,
                    f"mean cursor speed {metrics.mean_speed_px_s:.0f} px/s "
                    f"exceeds {MAX_HUMAN_MEAN_SPEED:.0f}",
                )
            if metrics.peak_speed_px_s > MAX_HUMAN_PEAK_SPEED:
                return self._bot(
                    0.9,
                    f"peak cursor speed {metrics.peak_speed_px_s:.0f} px/s",
                )
        return self._human()


class StraightLineDetector(Detector):
    """Long movements that are perfect straight lines."""

    name = "straight-line"
    level = DetectionLevel.ARTIFICIAL

    def observe(self, recorder: EventRecorder) -> Verdict:
        flagged = 0
        considered = 0
        for metrics in per_movement_metrics(recorder.mouse_path()):
            if metrics.chord_length < 150 or metrics.n_samples < 6:
                continue
            considered += 1
            if metrics.straightness > 0.9985:
                flagged += 1
        if considered and flagged / considered > 0.5:
            return self._bot(
                0.95, f"{flagged}/{considered} long movements perfectly straight"
            )
        return self._human()


class PerfectCenterClickDetector(Detector):
    """Every click exactly in the centre of its element (Fig. 2)."""

    name = "perfect-center-clicks"
    level = DetectionLevel.ARTIFICIAL

    def observe(self, recorder: EventRecorder) -> Verdict:
        clicks = recorder.clicks()
        positions: List = []
        boxes: List = []
        for click in clicks:
            box = click.target_box
            if box is None or box.width < 4 or box.height < 4:
                continue
            positions.append(click.position)
            boxes.append(box)
        if len(positions) < 3:
            return self._human()
        offsets = normalised_offsets(positions, boxes)
        radial = np.hypot([o[0] for o in offsets], [o[1] for o in offsets])
        center_rate = float(np.mean(radial < 0.025))
        if center_rate > 0.8:
            return self._bot(
                1.0, f"{center_rate:.0%} of clicks exactly on element centres"
            )
        return self._human()


class ZeroDwellClickDetector(Detector):
    """Mouse button pressed and released in (essentially) no time."""

    name = "zero-dwell-clicks"
    level = DetectionLevel.ARTIFICIAL

    def observe(self, recorder: EventRecorder) -> Verdict:
        clicks = recorder.clicks()
        if len(clicks) < 2:
            return self._human()
        dwells = np.array([c.dwell_ms for c in clicks])
        if float(np.mean(dwells)) < 5.0:
            return self._bot(1.0, f"mean click dwell {np.mean(dwells):.1f} ms")
        return self._human()


class InhumanTypingSpeedDetector(Detector):
    """Typing far beyond human speed (Selenium: 13,333 cpm)."""

    name = "inhuman-typing-speed"
    level = DetectionLevel.ARTIFICIAL

    def observe(self, recorder: EventRecorder) -> Verdict:
        strokes = recorder.key_strokes()
        if len(strokes) < 10:
            return self._human()
        metrics = typing_metrics(strokes)
        if metrics.chars_per_minute > MAX_HUMAN_CPM:
            return self._bot(
                1.0, f"typing speed {metrics.chars_per_minute:.0f} cpm"
            )
        return self._human()


class ZeroKeyDwellDetector(Detector):
    """Keys released the instant they are pressed."""

    name = "zero-key-dwell"
    level = DetectionLevel.ARTIFICIAL

    def observe(self, recorder: EventRecorder) -> Verdict:
        strokes = recorder.key_strokes()
        if len(strokes) < 5:
            return self._human()
        metrics = typing_metrics(strokes)
        if metrics.has_negligible_dwell:
            return self._bot(1.0, f"mean key dwell {metrics.dwell_mean_ms:.1f} ms")
        return self._human()


class MissingModifierDetector(Detector):
    """Capitals or shifted symbols typed without any Shift press.

    The paper: "while humans need to press modifier keys to press
    characters like capital letters, Selenium can input any character
    that exists without pressing additional modifier keys."
    """

    name = "missing-modifiers"
    level = DetectionLevel.ARTIFICIAL

    def observe(self, recorder: EventRecorder) -> Verdict:
        strokes = recorder.key_strokes()
        if not strokes:
            return self._human()
        metrics = typing_metrics(strokes)
        if metrics.shifted_without_modifier > 0:
            return self._bot(
                1.0,
                f"{metrics.shifted_without_modifier} shifted characters "
                "arrived without a Shift press",
            )
        return self._human()


class TeleportScrollDetector(Detector):
    """Single scroll events covering arbitrary distances (Section 4.1).

    The paper's caveat (Appendix D) is honoured: wheel-less scrolling
    alone is *not* conclusive, and large jumps are legitimate when a
    scroll-causing key (space, PageDown/Up, Home/End) was pressed just
    before -- the page can see those keydowns, so the detector must
    exempt them or flag space-bar-scrolling humans.
    """

    name = "teleport-scroll"
    level = DetectionLevel.ARTIFICIAL

    #: A scroll within this window after a scroll key is key-caused.
    KEY_EXEMPTION_MS = 200.0
    SCROLL_KEYS = frozenset({" ", "PageDown", "PageUp", "Home", "End"})

    def observe(self, recorder: EventRecorder) -> Verdict:
        scrolls = recorder.scroll_events()
        if len(scrolls) < 1:
            return self._human()
        key_times = [
            e.timestamp
            for e in recorder.of_type("keydown")
            if e.key in self.SCROLL_KEYS
        ]

        def key_caused(timestamp: float) -> bool:
            return any(
                0.0 <= timestamp - t <= self.KEY_EXEMPTION_MS for t in key_times
            )

        previous_offset = 0.0
        for event in scrolls:
            step = abs(event.page_y - previous_offset)
            previous_offset = event.page_y
            if step > TELEPORT_SCROLL_PX and not key_caused(event.timestamp):
                return self._bot(
                    0.9, f"single scroll event covered {step:.0f} px"
                )
        return self._human()


class NoMovementClickDetector(Detector):
    """A click with no approach movement at all.

    ``WebElement.click`` teleports the cursor; a human cursor must travel
    to the element first.
    """

    name = "click-without-movement"
    level = DetectionLevel.ARTIFICIAL

    def observe(self, recorder: EventRecorder) -> Verdict:
        clicks = recorder.clicks()
        if not clicks:
            return self._human()
        path = recorder.mouse_path()
        for click in clicks:
            t_click = click.down.timestamp
            approach = [
                p for p in path if t_click - 2000.0 <= p[0] <= t_click
            ]
            if len(approach) < 3:
                return self._bot(
                    0.85, "click arrived without preceding cursor movement"
                )
        return self._human()


class UntrustedEventDetector(Detector):
    """Events synthesised by page scripts (``isTrusted == false``).

    The cheapest bots skip input synthesis entirely and call
    ``element.dispatchEvent`` / ``element.click()`` from script; the
    browser marks such events untrusted.  One untrusted interaction
    event is conclusive.
    """

    name = "untrusted-events"
    level = DetectionLevel.ARTIFICIAL

    def observe(self, recorder: EventRecorder) -> Verdict:
        for event in recorder.events:
            if not event.is_trusted:
                return self._bot(
                    1.0, f"untrusted {event.type!r} event (script-dispatched)"
                )
        return self._human()


class MissingPointerTwinDetector(Detector):
    """Mouse events arriving without their pointer-event twins.

    Real input produces a ``pointerdown`` before every ``mousedown`` (and
    ``pointermove`` alongside ``mousemove``); scripts that fabricate only
    the mouse family forget the twins.  Only meaningful when the
    recording shows mouse activity at all.
    """

    name = "missing-pointer-twins"
    level = DetectionLevel.ARTIFICIAL

    def observe(self, recorder: EventRecorder) -> Verdict:
        mouse_downs = len(recorder.of_type("mousedown"))
        pointer_downs = len(recorder.of_type("pointerdown"))
        if mouse_downs >= 2 and pointer_downs == 0:
            return self._bot(
                0.95,
                f"{mouse_downs} mousedown events without a single "
                "pointerdown twin",
            )
        return self._human()


#: The standard level-1 battery.
ARTIFICIAL_DETECTORS = (
    UntrustedEventDetector,
    MissingPointerTwinDetector,
    SuperhumanSpeedDetector,
    StraightLineDetector,
    PerfectCenterClickDetector,
    ZeroDwellClickDetector,
    InhumanTypingSpeedDetector,
    ZeroKeyDwellDetector,
    MissingModifierDetector,
    TeleportScrollDetector,
    NoMovementClickDetector,
)
