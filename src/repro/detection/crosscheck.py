"""Cross-layer consistency checks: fingerprint x interaction.

The paper treats fingerprinting and interaction as separate detection
avenues; the *combination* is stronger than either ("detectors can only
escalate further by incorporating information beyond interaction").
These detectors need both a window (fingerprint surface) and a recording
(interaction), so they sit outside the interaction-only batteries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.detection.base import DetectionLevel, Detector, Verdict
from repro.events.recorder import EventRecorder


class TouchClaimDetector(Detector):
    """The device claims touch; the visitor only ever uses a mouse.

    A navigator reporting ``maxTouchPoints > 0`` (a phone/tablet profile)
    whose entire session consists of mouse events and zero touch events
    is either a desktop browser lying about its identity or an automation
    framework that -- like HLISA (Appendix F: "HLISA does not account for
    touch actions") -- cannot synthesise touch.
    """

    name = "touch-claim-mismatch"
    level = DetectionLevel.CONSISTENCY
    minimum_mouse_events = 30

    def __init__(self, window) -> None:
        self.window = window

    def observe(self, recorder: EventRecorder) -> Verdict:
        claimed = self.window.navigator.get("maxTouchPoints")
        if not isinstance(claimed, int) or claimed <= 0:
            return self._human()
        touches = recorder.of_type("touchstart", "touchend")
        mouse = recorder.of_type("mousemove", "mousedown")
        if len(mouse) >= self.minimum_mouse_events and not touches:
            return self._bot(
                0.8,
                f"navigator claims {claimed} touch points but the session "
                f"contains {len(mouse)} mouse events and no touch at all",
            )
        return self._human()


class SmoothScrollMismatchDetector(Detector):
    """Tick-jump scrolling on a smooth-scrolling browser profile.

    With Firefox's smooth scrolling enabled, every wheel tick animates
    over several sub-tick scroll events; a visitor whose scroll offsets
    jump a full 57 px at a time is bypassing the compositor -- i.e.
    scripting ``scrollBy`` (the future-work refinement the paper notes
    HLISA would need for smooth-scrolling profiles).
    """

    name = "smooth-scroll-mismatch"
    level = DetectionLevel.CONSISTENCY
    minimum_scroll_events = 12

    def __init__(self, window) -> None:
        self.window = window

    def observe(self, recorder: EventRecorder) -> Verdict:
        if not getattr(self.window, "smooth_scroll", False):
            return self._human()
        scrolls = recorder.scroll_events()
        if len(scrolls) < self.minimum_scroll_events:
            return self._human()
        import numpy as np

        offsets = np.array([e.page_y for e in scrolls], dtype=float)
        steps = np.abs(np.diff(np.concatenate([[0.0], offsets])))
        steps = steps[steps > 0]
        if steps.size and float(np.median(steps)) >= 50.0:
            return self._bot(
                0.75,
                f"median scroll step {float(np.median(steps)):.0f} px on a "
                "smooth-scrolling profile (animated frames expected)",
            )
        return self._human()


@dataclass
class CrossCheckReport:
    """Verdicts from the cross-layer battery."""

    verdicts: List[Verdict]

    @property
    def is_bot(self) -> bool:
        return any(v.is_bot for v in self.verdicts)


def cross_check(window, recorder: EventRecorder) -> CrossCheckReport:
    """Run all fingerprint-x-interaction consistency checks."""
    detectors = [TouchClaimDetector(window), SmoothScrollMismatchDetector(window)]
    return CrossCheckReport([d.observe(recorder) for d in detectors])
