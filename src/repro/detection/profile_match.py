"""Level-4 detector: "recognise specific user profile" (Fig. 3).

    "This requires an enrolment period during which the detector learns
    the specific individual's interaction patterns.  The only way to
    defeat such detection mechanisms is to move from simulating
    interaction that is plausibly human, to simulating the specific
    interaction profile of a specific individual."

The detector enrols on recordings of one user, stores per-feature means
and standard deviations, and flags any recording whose feature vector
deviates too far -- even when the behaviour is perfectly plausible for
*some* human.  (The paper notes this level of tracking may fall under the
GDPR's purview.)
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.detection.base import DetectionLevel, Detector, Verdict
from repro.detection.features import FEATURE_NAMES, extract_features
from repro.events.recorder import EventRecorder


class EnrolledProfileDetector(Detector):
    """Per-user profile matching over behavioural features."""

    name = "enrolled-profile"
    level = DetectionLevel.PROFILE

    #: Per-feature |z| counted as a strong deviation.
    STRONG_Z = 2.5
    #: Number of strong deviations that rejects a probe outright.
    STRONG_VOTES = 2

    def __init__(self, z_threshold: float = 3.0, min_features: int = 3) -> None:
        #: Mean absolute z-score beyond which a probe is rejected.
        self.z_threshold = z_threshold
        #: Minimum shared features required to issue a verdict at all.
        self.min_features = min_features
        self._means: Dict[str, float] = {}
        self._stds: Dict[str, float] = {}
        self.enrolled = False

    # -- enrolment ---------------------------------------------------------

    def enroll(self, recordings: Sequence[EventRecorder]) -> None:
        """Learn the user's profile from several recordings."""
        if len(recordings) < 2:
            raise ValueError("enrolment needs at least 2 recordings")
        per_feature: Dict[str, List[float]] = {name: [] for name in FEATURE_NAMES}
        for recorder in recordings:
            for name, value in extract_features(recorder).items():
                if value is not None:
                    per_feature[name].append(value)
        for name, values in per_feature.items():
            if len(values) >= 2:
                self._means[name] = float(np.mean(values))
                # Floor the std at 10% of the mean so a freakishly
                # consistent enrolment doesn't reject everything.
                spread = float(np.std(values, ddof=1))
                floor = abs(self._means[name]) * 0.10 + 1e-6
                self._stds[name] = max(spread, floor)
        if not self._means:
            raise ValueError("enrolment recordings carried no usable features")
        self.enrolled = True

    # -- matching -------------------------------------------------------------

    def z_scores(self, recorder: EventRecorder) -> Dict[str, float]:
        """Per-feature |z| of a probe recording against the profile."""
        if not self.enrolled:
            raise RuntimeError("detector has not been enrolled")
        probe = extract_features(recorder)
        scores: Dict[str, float] = {}
        for name, value in probe.items():
            if value is None or name not in self._means:
                continue
            scores[name] = abs(value - self._means[name]) / self._stds[name]
        return scores

    def observe(self, recorder: EventRecorder) -> Verdict:
        scores = self.z_scores(recorder)
        if len(scores) < self.min_features:
            return self._human()
        mean_z = float(np.mean(list(scores.values())))
        strong = [name for name, z in scores.items() if z >= self.STRONG_Z]
        if mean_z > self.z_threshold or len(strong) >= self.STRONG_VOTES:
            worst: Tuple[str, float] = max(scores.items(), key=lambda kv: kv[1])
            return self._bot(
                min(max(mean_z / (2 * self.z_threshold), len(strong) / 4.0), 1.0),
                f"behaviour deviates from the enrolled profile "
                f"(mean |z| = {mean_z:.1f}; {len(strong)} strong deviations; "
                f"worst: {worst[0]} at {worst[1]:.1f})",
            )
        return self._human()
