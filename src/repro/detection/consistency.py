"""Level-3 detectors: "tracking consistency of behaviour" (Fig. 3).

    "The next escalation is to recognise that certain interactions are
    correlated.  For example, faster mouse movement may be correlated
    with higher (or lower) accuracy clicks.  Detectors that move to this
    level will detect simulators that lack such internal consistency."

HLISA draws each signal from its own independent distribution, so the
couplings human motor control produces are missing:

- **distance-speed coupling** (Fitts' law): humans complete long
  movements at higher average speed (time grows only logarithmically
  with distance); HLISA's average speed is distance-independent;
- **speed-accuracy trade-off**: hurried human movements end in sloppier
  clicks; HLISA's click scatter ignores how the cursor arrived;
- **environment consistency**: a double-click whose two clicks are more
  than 500 ms apart is impossible in a default desktop environment but
  accepted under Selenium's observed 600 ms interval (Appendix D).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.trajectory import TrajectoryMetrics, split_movements, trajectory_metrics
from repro.detection.base import DetectionLevel, Detector, Verdict
from repro.events.recorder import ClickRecord, EventRecorder


def _pearson(x: np.ndarray, y: np.ndarray) -> float:
    if x.size < 3 or np.std(x) < 1e-12 or np.std(y) < 1e-12:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def _approach_movements(
    recorder: EventRecorder,
) -> List[Tuple[ClickRecord, TrajectoryMetrics]]:
    """Pair each click with the cursor movement that led to it."""
    movements = split_movements(recorder.mouse_path())
    if not movements:
        return []
    pairs: List[Tuple[ClickRecord, TrajectoryMetrics]] = []
    for click in recorder.clicks():
        t_click = click.down.timestamp
        best = None
        for movement in movements:
            end_t = movement[-1][0]
            if end_t <= t_click + 1.0 and (best is None or end_t > best[-1][0]):
                best = movement
        if best is None or t_click - best[-1][0] > 1500.0:
            continue
        try:
            pairs.append((click, trajectory_metrics(best)))
        except ValueError:
            continue
    return pairs


class DistanceSpeedCouplingDetector(Detector):
    """Fitts'-law signature: long movements should be faster on average.

    Human movement time grows logarithmically with distance, so average
    speed rises steeply with distance.  A simulator drawing speed from a
    distance-independent distribution shows no such correlation.
    """

    name = "distance-speed-coupling"
    level = DetectionLevel.CONSISTENCY
    minimum_movements = 25

    def observe(self, recorder: EventRecorder) -> Verdict:
        movements = [
            m
            for m in (
                trajectory_metrics(seg)
                for seg in split_movements(recorder.mouse_path())
                if len(seg) >= 4
            )
            if m.chord_length > 60 and m.duration_ms > 0
        ]
        if len(movements) < self.minimum_movements:
            return self._human()
        distances = np.array([m.chord_length for m in movements])
        speeds = np.array([m.mean_speed_px_s for m in movements])
        if float(np.ptp(distances)) < 200.0:
            return self._human()  # no distance variation: nothing to test
        r = _pearson(distances, speeds)
        if r < 0.25:
            return self._bot(
                0.8,
                f"movement speed uncorrelated with distance (r={r:.2f}); "
                "human movement times follow Fitts' law",
            )
        return self._human()


class SpeedAccuracyCouplingDetector(Detector):
    """Hurried approaches should end in sloppier clicks."""

    name = "speed-accuracy-coupling"
    level = DetectionLevel.CONSISTENCY
    minimum_clicks = 30

    def observe(self, recorder: EventRecorder) -> Verdict:
        pairs = _approach_movements(recorder)
        speeds: List[float] = []
        offsets: List[float] = []
        for click, metrics in pairs:
            box = click.target_box
            if box is None or box.width < 4 or metrics.chord_length < 60:
                continue
            center = box.center
            dx = (click.position[0] - center.x) / max(box.width / 2.0, 1e-9)
            dy = (click.position[1] - center.y) / max(box.height / 2.0, 1e-9)
            # Normalise speed by the Fitts-expected speed for this
            # distance *and target size*, so only the subject's hurry
            # remains -- not the task geometry.
            distance = metrics.chord_length
            width = max(min(box.width, box.height), 1.0)
            expected_t = 120.0 + 140.0 * math.log2(distance / width + 1.0)
            relative_speed = (distance / max(metrics.duration_ms, 1.0)) / (
                distance / expected_t
            )
            speeds.append(relative_speed)
            offsets.append(math.hypot(dx, dy))
        if len(speeds) < self.minimum_clicks:
            return self._human()
        offset_arr = np.array(offsets)
        if float(np.std(offset_arr)) < 1e-6:
            # Degenerate scatter (everything dead-centre) is level-1 prey.
            return self._human()
        r = _pearson(np.array(speeds), offset_arr)
        if r < 0.12:
            return self._bot(
                0.75,
                f"click accuracy independent of approach speed (r={r:.2f}); "
                "humans trade speed for accuracy",
            )
        return self._human()


class DoubleClickEnvironmentDetector(Detector):
    """Double clicks only a Selenium-configured environment would accept.

    Firefox asks its environment for the maximal double-click interval:
    500 ms on a default desktop, 600 ms observed under Selenium
    (Appendix D).  A ``dblclick`` whose two clicks are 500-600 ms apart
    therefore reveals the automated environment.
    """

    name = "double-click-environment"
    level = DetectionLevel.CONSISTENCY

    def observe(self, recorder: EventRecorder) -> Verdict:
        dblclicks = recorder.of_type("dblclick")
        if not dblclicks:
            return self._human()
        downs = [e.timestamp for e in recorder.of_type("mousedown")]
        for dbl in dblclicks:
            prior = [t for t in downs if t <= dbl.timestamp]
            if len(prior) < 2:
                continue
            gap = prior[-1] - prior[-2]
            if 500.0 < gap <= 600.0:
                return self._bot(
                    0.95,
                    f"double click accepted at a {gap:.0f} ms interval -- "
                    "beyond the default 500 ms environment limit",
                )
        return self._human()


#: The standard level-3 battery (level-specific detectors only; batteries
#: are cumulative across levels, see :mod:`repro.detection.battery`).
CONSISTENCY_DETECTORS = (
    DistanceSpeedCouplingDetector,
    SpeedAccuracyCouplingDetector,
    DoubleClickEnvironmentDetector,
)
