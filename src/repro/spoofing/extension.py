"""The OpenWPM spoofing extension (Section 3.2).

    "We developed a browser extension to spoof the webdriver property in
    OpenWPM clients based on our selected method."

The extension applies the proxy method (the paper's selection from the
Table 1 comparison) to every page the crawler loads.  Like its real
counterpart, it can -- rarely -- break sites whose own scripts interact
badly with a wrapped ``navigator``; the crawl simulation models that
breakage on susceptible sites (Section 3.2 found one deformed layout and
one ever-loading video whose root cause the authors could not identify).
"""

from __future__ import annotations

from repro.spoofing.methods import SpoofingMethod, apply_spoofing


class SpoofingExtension:
    """A browser extension hiding ``navigator.webdriver``.

    Parameters
    ----------
    method:
        The spoofing method to inject; defaults to the proxy method the
        paper selected.
    """

    def __init__(self, method: SpoofingMethod = SpoofingMethod.PROXY) -> None:
        self.method = method

    def inject(self, window) -> None:
        """Run the content script against a freshly loaded page.

        On an instrumented window the injection is scoped in the probe
        ledger (``extension.inject:<method>`` wrapping the method's own
        ``spoof.install:<method>`` scope), attributing install-time
        object operations to the extension.
        """
        from repro.obs.probes import ledger_of

        ledger = ledger_of(window)
        if ledger is None:
            apply_spoofing(window, self.method)
            return
        with ledger.scope(f"extension.inject:{self.method.name.lower()}"):
            apply_spoofing(window, self.method)

    @property
    def name(self) -> str:
        return f"webdriver-spoofer ({self.method.name.lower()})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SpoofingExtension {self.method.name}>"
