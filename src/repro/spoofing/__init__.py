"""Property spoofing: the four JavaScript methods of Section 3.1.

Each method hides ``navigator.webdriver`` the way the corresponding
JavaScript idiom does, and each inherits that idiom's side effects
(Table 1) *mechanically* from the object-model semantics:

1. :func:`spoof_define_property` -- ``Object.defineProperty(navigator,
   'webdriver', ...)``;
2. :func:`spoof_define_getter` -- ``navigator.__defineGetter__(
   'webdriver', ...)`` (deprecated by Mozilla, still evaluated);
3. :func:`spoof_set_prototype_of` -- ``Object.setPrototypeOf`` with a
   patched copy of ``Navigator.prototype``;
4. :func:`spoof_proxy` -- wrapping ``navigator`` in a ``Proxy`` whose
   ``get`` trap lies (the method the paper selects).

:class:`~repro.spoofing.extension.SpoofingExtension` packages the chosen
method as the OpenWPM browser extension of Section 3.2.
"""

from repro.spoofing.methods import (
    SpoofingMethod,
    SPOOFING_METHODS,
    spoof_define_property,
    spoof_define_getter,
    spoof_set_prototype_of,
    spoof_proxy,
    apply_spoofing,
)
from repro.spoofing.extension import SpoofingExtension

__all__ = [
    "SpoofingMethod",
    "SPOOFING_METHODS",
    "spoof_define_property",
    "spoof_define_getter",
    "spoof_set_prototype_of",
    "spoof_proxy",
    "apply_spoofing",
    "SpoofingExtension",
]
