"""The four spoofing methods (Section 3.1).

Every function takes a window, hides ``navigator.webdriver`` (returns
``False`` to page scripts), and installs the result back into
``window.navigator``.  None of them is told what its side effects are --
those emerge from the object model, exactly as the paper measured.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Dict

from repro.jsobject import (
    JSObject,
    JSProxy,
    PropertyDescriptor,
)
from repro.jsobject.proxy import make_stealth_get_trap


class SpoofingMethod(Enum):
    """Identifier of a spoofing method (numbering as in the paper)."""

    DEFINE_PROPERTY = 1
    DEFINE_GETTER = 2
    SET_PROTOTYPE_OF = 3
    PROXY = 4


def spoof_define_property(window) -> None:
    """Method 1: ``Object.defineProperty(navigator, 'webdriver', ...)``.

    As the paper notes, the bare call leaves the property non-enumerable
    ("disappears from the listing when calling Object.keys"); the
    remedied variant sets ``enumerable: true``.  We apply the remedied
    variant -- the order and count side effects remain either way,
    because an *own* shadow property now exists on the instance.
    """
    window.navigator.define_property(
        "webdriver",
        PropertyDescriptor(
            get=lambda this: False,
            enumerable=True,
            configurable=True,
        ),
    )


def spoof_define_property_unremedied(window) -> None:
    """Method 1 as naive stealth scripts write it (no ``enumerable``).

    ``defineProperty`` defaults the flag to ``False``, so the attribute
    vanishes from enumeration -- the paper's exact observation.
    """
    window.navigator.define_property(
        "webdriver",
        PropertyDescriptor(get=lambda this: False, configurable=True),
    )


def spoof_define_getter(window) -> None:
    """Method 2: ``navigator.__defineGetter__('webdriver', () => false)``.

    Deprecated by Mozilla; always creates an enumerable own accessor.
    """
    window.navigator.define_getter("webdriver", lambda this: False)


def spoof_set_prototype_of(window) -> None:
    """Method 3: substitute a patched copy of ``Navigator.prototype``.

    The copy preserves every property name in canonical order (so
    enumeration order and property counts stay intact) but replaces the
    ``webdriver`` accessor with a plain getter.  What cannot be preserved
    is the WebIDL brand check: reading ``webdriver`` off the new
    prototype *itself* no longer throws -- Table 1's
    "Defined navigator.__proto__.webdriver".
    """
    navigator = window.navigator
    original_proto = navigator.proto
    if original_proto is None:
        raise ValueError("navigator has no prototype to replace")
    patched = JSObject(proto=original_proto.proto, js_class=original_proto.js_class)
    for name in original_proto.own_property_names():
        descriptor = original_proto.get_own_property(name)
        if name == "webdriver":
            patched.define_property(
                name,
                PropertyDescriptor.accessor(
                    get=lambda this: False, enumerable=True, configurable=True
                ),
            )
        else:
            patched.define_property(
                name,
                PropertyDescriptor(
                    value=descriptor.value,
                    has_value=not descriptor.is_accessor(),
                    writable=descriptor.writable,
                    get=descriptor.get,
                    set=descriptor.set,
                    enumerable=descriptor.enumerable,
                    configurable=descriptor.configurable,
                ),
            )
    navigator.set_prototype_of(patched)


def spoof_proxy(window) -> None:
    """Method 4: wrap ``navigator`` in a Proxy (the paper's choice).

    The ``get`` trap answers ``false`` for ``webdriver`` and forwards
    everything else; function-valued properties are returned bound to the
    real navigator so WebIDL brand checks keep passing.  Reflective traps
    forward, so enumeration order, counts and ``Object.keys`` are
    untouched -- the only residue is the anonymous bound wrappers
    (Listing 1).
    """
    target = window.navigator
    if isinstance(target, JSProxy):
        target = target.target
    window.navigator = JSProxy(
        target,
        handler={"get": make_stealth_get_trap({"webdriver": False})},
    )


#: Method registry, keyed by the paper's numbering.
SPOOFING_METHODS: Dict[SpoofingMethod, Callable] = {
    SpoofingMethod.DEFINE_PROPERTY: spoof_define_property,
    SpoofingMethod.DEFINE_GETTER: spoof_define_getter,
    SpoofingMethod.SET_PROTOTYPE_OF: spoof_set_prototype_of,
    SpoofingMethod.PROXY: spoof_proxy,
}


def apply_spoofing(window, method: SpoofingMethod) -> None:
    """Apply one of the four methods to a window.

    On an instrumented window (:mod:`repro.obs.probes`), the install's
    own object operations are recorded under a ``spoof.install:<method>``
    scope, and the navigator graph is re-instrumented afterwards -- the
    proxy method replaces ``window.navigator`` outright and the
    ``setPrototypeOf`` method splices in a fresh prototype, both of which
    would otherwise escape the ledger.
    """
    from repro.obs.probes import SPOOF_SCOPE_PREFIX, instrument, ledger_of

    ledger = ledger_of(window)
    if ledger is None:
        ledger = ledger_of(window.navigator)
    if ledger is None:
        SPOOFING_METHODS[method](window)
        return
    with ledger.scope(SPOOF_SCOPE_PREFIX + method.name.lower()):
        SPOOFING_METHODS[method](window)
    instrument(window.navigator, ledger, "navigator")
