"""HLISA: the Human-Like Interaction Selenium API (the paper's core
contribution).

:class:`~repro.core.hlisa_action_chains.HLISA_ActionChains` is a drop-in
replacement for Selenium's ``ActionChains`` offering "the same calls and
signatures as in the original Selenium API ... with the exception of a few
additions" (Table 3).  Integration takes two changed lines, as in the
paper's Listing 2::

    from repro.core.hlisa_action_chains import HLISA_ActionChains

    ac = HLISA_ActionChains(webdriver)
    element = driver.find_element_by_id("text_area")
    ac.move_to_element(element)
    ac.send_keys_to_element(element, "Text..")
    ac.perform()

Internally HLISA only calls the *fine-grained* functions of the Selenium
API (pointer moves, ``key_down``/``key_up``, ``click_and_hold``/
``release``, pauses), which makes it "resistant to changes in the Selenium
source code that do not affect the Selenium API".  One internal override
is needed: Selenium's lower bound on pointer-move durations is reduced to
50 ms via :func:`repro.core.patching.patch_pointer_move_duration`.
"""

from repro.core.hlisa_action_chains import HLISA_ActionChains
from repro.core.patching import (
    patch_pointer_move_duration,
    unpatch_pointer_move_duration,
    HLISA_POINTER_MOVE_DURATION_MS,
)

__all__ = [
    "HLISA_ActionChains",
    "patch_pointer_move_duration",
    "unpatch_pointer_move_duration",
    "HLISA_POINTER_MOVE_DURATION_MS",
]
