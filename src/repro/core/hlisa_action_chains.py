"""``HLISA_ActionChains``: the paper's Table 3 API, in full.

Every Selenium ``ActionChains`` call is provided with the same signature;
recognisably-artificial behaviours are replaced by the humanised models of
:mod:`repro.models`; a few functions are new (``move_to``,
``move_to_element_outside_viewport``, ``scroll_by``, ``scroll_to``).

Execution strategy (Section 4.1, "Implementation and deployment"): HLISA
plans human-like interaction, then realises it exclusively through
**fine-grained Selenium API calls** -- pointer moves of
:data:`~repro.core.patching.HLISA_POINTER_MOVE_DURATION_MS` (50 ms, after
patching Selenium's lower bound), ``key_down``/``key_up``,
``click_and_hold``/``release`` and pauses.  Each humanised curve thus
reaches the browser as a piecewise-linear chain of short Selenium moves,
exactly as the real HLISA drives real Selenium.

Scrolling goes through the driver's scripted ``window.scrollBy`` in
57-px wheel ticks with human cadence.  No trusted ``wheel`` events are
produced -- the same limitation the real HLISA has -- which the paper
argues is acceptable because many human scrolling methods (scroll bar,
arrow keys, anchors) produce no wheel events either (Appendix D).
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.core import patching
from repro.geometry import Point
from repro.models.bezier import TrajectoryParams, hlisa_path
from repro.models.clicks import ClickParams, hlisa_click_point, hlisa_dwell_ms
from repro.models.layouts import US_LAYOUT, KeyboardLayout
from repro.models.scroll_cadence import ScrollCadence, ScrollParams
from repro.models.typing_rhythm import TypingParams, TypingRhythm
from repro.webdriver.action_chains import ActionChains
from repro.webdriver.actions import PointerDown, PointerUp
from repro.webdriver.webelement import WebElement


class HLISA_ActionChains:
    """Drop-in, human-like replacement for Selenium's ``ActionChains``.

    Parameters
    ----------
    webdriver:
        The (simulated) Selenium driver to act through.
    seed:
        Seed for the action chain's random generator; pass an int for
        reproducible interaction, ``None`` for fresh randomness.
    layout:
        Keyboard layout whose modifier conventions typing follows; keep
        it consistent with the browser's language fingerprint
        (Section 4.1: pages can infer the layout from modifier usage).
    trajectory_params / click_params / typing_params / scroll_params:
        Model parameters; defaults are the values "found in our
        experiment" (see :mod:`repro.models.calibration` for re-fitting
        them from recorded data).
    """

    def __init__(
        self,
        webdriver,
        *,
        seed: Optional[int] = None,
        trajectory_params: Optional[TrajectoryParams] = None,
        click_params: Optional[ClickParams] = None,
        typing_params: Optional[TypingParams] = None,
        scroll_params: Optional[ScrollParams] = None,
        layout: KeyboardLayout = US_LAYOUT,
    ) -> None:
        self._driver = webdriver
        self._rng = np.random.default_rng(seed)
        self._trajectory_params = trajectory_params or TrajectoryParams(
            sample_interval_ms=patching.HLISA_POINTER_MOVE_DURATION_MS
        )
        self._click_params = click_params or ClickParams()
        self._typing = TypingRhythm(self._rng, typing_params, layout=layout)
        self._scroll = ScrollCadence(self._rng, scroll_params)
        self._queue: List[Callable[[], None]] = []
        # HLISA needs short Selenium pointer moves (Section 4.1).
        patching.patch_pointer_move_duration()

    # ------------------------------------------------------------------ #
    # chain plumbing (Table 3: perform / reset_actions / pause)
    # ------------------------------------------------------------------ #

    def perform(self) -> None:
        """Execute all queued actions, then clear the chain.

        Under an observability-wired driver (``driver.tracer``), the
        whole batch runs inside one ``hlisa.perform`` span whose
        ``events`` attribute counts the trusted DOM events the batch
        synthesised through the input pipeline.
        """
        tracer = getattr(self._driver, "tracer", None)
        if tracer is None or not tracer.enabled:
            for thunk in self._queue:
                thunk()
            self._queue = []
            return
        pipeline = self._driver.pipeline
        span = tracer.start("hlisa.perform", actions=len(self._queue))
        events_before = pipeline.events_dispatched
        try:
            for thunk in self._queue:
                thunk()
            self._queue = []
        finally:
            span.attrs["events"] = pipeline.events_dispatched - events_before
            tracer.end(span)

    def reset_actions(self) -> "HLISA_ActionChains":
        """Remove all actions from the current chain."""
        self._queue = []
        return self

    def pause(self, duration: float) -> "HLISA_ActionChains":
        """Pause the chain for ``duration`` **seconds** (Table 3)."""

        def _do() -> None:
            ActionChains(self._driver).pause(duration).perform()

        self._queue.append(_do)
        return self

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _pointer(self) -> Point:
        return self._driver.pipeline.pointer

    def _run_path_through_selenium(self, target: Point) -> None:
        """Move the pointer along a humanised curve to ``target``.

        The curve is sampled at the patched Selenium move duration and
        issued as a chain of fine-grained, fixed-duration pointer moves.
        """
        start = self._pointer()
        if start.distance_to(target) < 0.75:
            return
        window = self._driver.window
        clamped = Point(
            min(max(target.x, 0.0), window.viewport_width),
            min(max(target.y, 0.0), window.viewport_height),
        )
        points = hlisa_path(start, clamped, self._rng, params=self._trajectory_params)
        chain = ActionChains(self._driver)
        previous_t = 0.0
        for t, point in points[1:]:
            duration = max(t - previous_t, 1.0)
            safe = Point(
                min(max(point.x, 0.0), window.viewport_width),
                min(max(point.y, 0.0), window.viewport_height),
            )
            chain._move(safe.x, safe.y, origin="viewport", duration_ms=duration)
            previous_t = t
        chain.perform()

    def _element_target(self, element: WebElement, offset: Optional[Point] = None) -> Point:
        """Client-coordinate target inside an element.

        Without an explicit offset, a human-like position is drawn from
        the click model ("moves to random location in element",
        Table 4) -- never the exact centre.
        """
        window = self._driver.window
        box = element.dom_element.box
        if box is None:
            raise ValueError("element has no layout box")
        if offset is None:
            page_point = hlisa_click_point(box, self._rng, self._click_params)
        else:
            page_point = Point(box.x + offset.x, box.y + offset.y)
        return window.page_to_client(page_point)

    def _press_release(self, button_chain_ops, dwell_ms: Optional[float] = None) -> None:
        chain = ActionChains(self._driver)
        button_chain_ops(chain, dwell_ms)
        chain.perform()

    # ------------------------------------------------------------------ #
    # mouse movement (Table 3)
    # ------------------------------------------------------------------ #

    def move_to(self, x: float, y: float) -> "HLISA_ActionChains":
        """Move the cursor from the current position to ``(x, y)``.

        New in HLISA (absent from Selenium's ActionChains).
        """

        def _do() -> None:
            self._run_path_through_selenium(Point(float(x), float(y)))

        self._queue.append(_do)
        return self

    def move_by_offset(self, x: float, y: float) -> "HLISA_ActionChains":
        """Move the cursor relative to its current position."""

        def _do() -> None:
            current = self._pointer()
            self._run_path_through_selenium(Point(current.x + x, current.y + y))

        self._queue.append(_do)
        return self

    def move_to_element(self, element: WebElement) -> "HLISA_ActionChains":
        """Move to a human-chosen position within the element's bounds."""

        def _do() -> None:
            self._run_path_through_selenium(self._element_target(element))

        self._queue.append(_do)
        return self

    def move_to_element_with_offset(
        self, element: WebElement, x: float, y: float
    ) -> "HLISA_ActionChains":
        """Move to an offset relative to the element's top-left corner."""

        def _do() -> None:
            self._run_path_through_selenium(
                self._element_target(element, offset=Point(float(x), float(y)))
            )

        self._queue.append(_do)
        return self

    def move_to_element_outside_viewport(self, element: WebElement) -> "HLISA_ActionChains":
        """Scroll the element into the viewport, then move to it.

        New in HLISA.  Scrolling uses the humanised wheel cadence rather
        than Selenium's teleporting ``scrollTo``.
        """

        def _do() -> None:
            self._scroll_element_into_view(element)
            self._run_path_through_selenium(self._element_target(element))

        self._queue.append(_do)
        return self

    def _scroll_element_into_view(self, element: WebElement) -> None:
        window = self._driver.window
        center = element.dom_element.center
        if window.is_in_viewport(center):
            return
        target_y = max(0.0, center.y - window.viewport_height / 2.0)
        self._scroll_with_cadence(target_y - window.scroll_y)

    # ------------------------------------------------------------------ #
    # clicking (Table 3)
    # ------------------------------------------------------------------ #

    def click(self, element: Optional[WebElement] = None) -> "HLISA_ActionChains":
        """Click with human dwell; moves to the element first if given."""
        if element is not None:
            self.move_to_element(element)

        def _do() -> None:
            dwell = hlisa_dwell_ms(self._rng, self._click_params)
            chain = ActionChains(self._driver)
            chain.click_and_hold()
            chain.pause(dwell / 1000.0)
            chain.release()
            chain.perform()

        self._queue.append(_do)
        return self

    def click_and_hold(self, element: Optional[WebElement] = None) -> "HLISA_ActionChains":
        """Same as click without the release action (Table 3)."""
        if element is not None:
            self.move_to_element(element)

        def _do() -> None:
            ActionChains(self._driver).click_and_hold().perform()

        self._queue.append(_do)
        return self

    def release(self, element: Optional[WebElement] = None) -> "HLISA_ActionChains":
        """Same as click without the press action (Table 3)."""
        if element is not None:
            self.move_to_element(element)

        def _do() -> None:
            ActionChains(self._driver).release().perform()

        self._queue.append(_do)
        return self

    def double_click(self, element: Optional[WebElement] = None) -> "HLISA_ActionChains":
        """A click plus "an additional click shortly after the first"."""
        if element is not None:
            self.move_to_element(element)

        def _do() -> None:
            gap_ms = float(np.clip(self._rng.normal(120.0, 35.0), 40.0, 350.0))
            chain = ActionChains(self._driver)
            for i in range(2):
                dwell = hlisa_dwell_ms(self._rng, self._click_params)
                chain.click_and_hold()
                chain.pause(dwell / 1000.0)
                chain.release()
                if i == 0:
                    chain.pause(gap_ms / 1000.0)
            chain.perform()

        self._queue.append(_do)
        return self

    def context_click(self, element: Optional[WebElement] = None) -> "HLISA_ActionChains":
        """Same as click using the right mouse button (Table 3)."""
        if element is not None:
            self.move_to_element(element)

        def _do() -> None:
            dwell = hlisa_dwell_ms(self._rng, self._click_params)
            chain = ActionChains(self._driver)
            chain._actions.append(PointerDown(2))
            chain.pause(dwell / 1000.0)
            chain._actions.append(PointerUp(2))
            chain.perform()

        self._queue.append(_do)
        return self

    # ------------------------------------------------------------------ #
    # drag and drop (Table 3)
    # ------------------------------------------------------------------ #

    def drag_and_drop(self, element1: WebElement, element2: WebElement) -> "HLISA_ActionChains":
        """Press over ``element1``, move to ``element2``, release."""
        self.click_and_hold(element1)
        self.pause(0.08)
        self.move_to_element(element2)
        self.release()
        return self

    def drag_and_drop_by_offset(
        self, element: WebElement, x: float, y: float
    ) -> "HLISA_ActionChains":
        """Press on ``element``, move by ``(x, y)``, release."""
        self.click_and_hold(element)
        self.pause(0.08)
        self.move_by_offset(x, y)
        self.release()
        return self

    # ------------------------------------------------------------------ #
    # keyboard (Table 3)
    # ------------------------------------------------------------------ #

    def send_keys(self, keys: str) -> "HLISA_ActionChains":
        """Type ``keys`` with a human rhythm.

        Dwell and flight times come from the normal-distribution typing
        model, contextual pauses follow Alves et al., and Shift is pressed
        for characters that need it.
        """

        def _do() -> None:
            from repro.webdriver.keys import decode_keys

            plan = self._typing.plan(decode_keys(keys))
            chain = ActionChains(self._driver)
            for dt_ms, kind, key in plan:
                if dt_ms > 0:
                    chain.pause(dt_ms / 1000.0)
                if kind == "down":
                    chain.key_down(key)
                else:
                    chain.key_up(key)
            chain.perform()

        self._queue.append(_do)
        return self

    def send_keys_to_element(self, element: WebElement, keys: str) -> "HLISA_ActionChains":
        """Select (click) the element, then :meth:`send_keys` (Table 3)."""
        self.click(element)
        self.pause(0.15)
        return self.send_keys(keys)

    def key_down(self, value: str) -> "HLISA_ActionChains":
        """Pass-through to Selenium's ``key_down`` (Table 3 legend)."""

        def _do() -> None:
            ActionChains(self._driver).key_down(value).perform()

        self._queue.append(_do)
        return self

    def key_up(self, value: str) -> "HLISA_ActionChains":
        """Pass-through to Selenium's ``key_up`` (Table 3 legend)."""

        def _do() -> None:
            ActionChains(self._driver).key_up(value).perform()

        self._queue.append(_do)
        return self

    # ------------------------------------------------------------------ #
    # scrolling (Table 3; new in HLISA)
    # ------------------------------------------------------------------ #

    def scroll_by(self, x: float, y: float) -> "HLISA_ActionChains":
        """Scroll the viewport by a distance, in human wheel ticks."""

        def _do() -> None:
            self._scroll_with_cadence(y, dx=x)

        self._queue.append(_do)
        return self

    def scroll_to(self, x: float, y: float) -> "HLISA_ActionChains":
        """Scroll until ``(x, y)`` is at the top-left corner."""

        def _do() -> None:
            window = self._driver.window
            self._scroll_with_cadence(y - window.scroll_y, dx=x - window.scroll_x)

        self._queue.append(_do)
        return self

    def _scroll_with_cadence(self, dy: float, dx: float = 0.0) -> None:
        clock = self._driver.window.clock
        for pause_ms, delta in self._scroll.plan(dy):
            if pause_ms > 0:
                clock.advance(pause_ms)
            self._driver.execute_script(f"window.scrollBy(0, {delta})")
        if dx:
            self._driver.execute_script(f"window.scrollBy({dx}, 0)")

    def __len__(self) -> int:
        return len(self._queue)
