"""The Selenium patch HLISA applies (Section 4.1).

    "The default Selenium API enforces a lower bound on the duration of
    mouse movements that is too high for simulating human interaction.
    For Selenium versions <4, we change this duration to 50 msec by
    overriding the internal Selenium function ``create_pointer_move()``.
    This allows us to express human-like mouse movements."

The patch replaces :func:`repro.webdriver.actions.create_pointer_move`
with a factory whose lower bound is 50 ms.  ``ActionChains`` looks the
factory up on the module at call time, so the override takes effect for
every chain -- exactly how monkey-patching the real Selenium internals
works.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.webdriver import actions as actions_module
from repro.webdriver.actions import PointerMove
from repro.webdriver.errors import InvalidArgumentException

#: The duration HLISA patches Selenium's lower bound down to.
HLISA_POINTER_MOVE_DURATION_MS = 50.0

_original_factory = actions_module.create_pointer_move


def patch_pointer_move_duration(
    min_duration_ms: float = HLISA_POINTER_MOVE_DURATION_MS,
) -> None:
    """Override ``create_pointer_move`` with a lower minimum duration.

    Idempotent; calling it again just changes the bound.
    """

    def _patched(
        x: float,
        y: float,
        duration_ms: float = actions_module.DEFAULT_POINTER_MOVE_DURATION_MS,
        origin: Union[str, object] = "viewport",
    ) -> PointerMove:
        if duration_ms < 0:
            raise InvalidArgumentException(f"negative move duration: {duration_ms}")
        return PointerMove(
            x=x, y=y, duration_ms=max(duration_ms, min_duration_ms), origin=origin
        )

    _patched.hlisa_min_duration_ms = min_duration_ms  # type: ignore[attr-defined]
    actions_module.create_pointer_move = _patched


def unpatch_pointer_move_duration() -> None:
    """Restore Selenium's original ``create_pointer_move``."""
    actions_module.create_pointer_move = _original_factory


def current_min_duration_ms() -> float:
    """The minimum pointer-move duration currently in force."""
    factory = actions_module.create_pointer_move
    patched = getattr(factory, "hlisa_min_duration_ms", None)
    if patched is not None:
        return float(patched)
    return actions_module.MIN_POINTER_MOVE_DURATION_MS
