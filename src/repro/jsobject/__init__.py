"""A JavaScript-like object model.

The paper's Section 3 compares four ways of spoofing ``navigator.webdriver``
at the JavaScript level and shows that each leaves detectable side effects
(Table 1).  Those side effects are *semantic consequences* of the JavaScript
object model: property descriptors and their defaults, insertion-order
enumeration, prototype chains, WebIDL brand checks on native getters, and
the ``toString`` of (wrapped) native functions.

This package re-implements exactly that slice of JavaScript semantics in
Python so the spoofing study can be reproduced mechanically rather than by
hard-coding the paper's table:

- :class:`~repro.jsobject.jsobject.JSObject` -- ordered own properties with
  full descriptors and a prototype pointer.
- :class:`~repro.jsobject.descriptors.PropertyDescriptor` -- data/accessor
  descriptors with ES-style definition defaults.
- :class:`~repro.jsobject.functions.NativeFunction` -- named "native"
  functions whose ``toString`` renders ``function name() { [native code] }``.
- :class:`~repro.jsobject.functions.NativeAccessor` -- WebIDL-style getters
  with a brand check (reading them with the wrong ``this`` raises
  :class:`~repro.jsobject.errors.JSTypeError`, like Firefox's
  ``Navigator.prototype.webdriver``).
- :class:`~repro.jsobject.proxy.JSProxy` -- ES ``Proxy`` with forwarding
  traps; its ``get`` trap wraps function values so the brand check passes,
  which is what produces the missing-function-name side effect the paper
  shows in Listing 1.
- Free functions mirroring the JS built-ins the paper's probes use:
  :func:`object_keys`, :func:`get_own_property_names`, :func:`for_in_names`.
"""

from repro.jsobject.errors import JSTypeError
from repro.jsobject.descriptors import PropertyDescriptor
from repro.jsobject.functions import JSFunction, NativeFunction, NativeAccessor
from repro.jsobject.jsobject import (
    JSObject,
    UNDEFINED,
    Undefined,
    object_keys,
    get_own_property_names,
    for_in_names,
)
from repro.jsobject.proxy import JSProxy, is_proxy

__all__ = [
    "JSTypeError",
    "PropertyDescriptor",
    "JSFunction",
    "NativeFunction",
    "NativeAccessor",
    "JSObject",
    "UNDEFINED",
    "Undefined",
    "object_keys",
    "get_own_property_names",
    "for_in_names",
    "JSProxy",
    "is_proxy",
]
