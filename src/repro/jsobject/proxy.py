"""ES ``Proxy`` objects.

A proxy wraps a target object and routes every fundamental operation
through a *trap* supplied by a handler, defaulting to forwarding.  The
paper's preferred spoofing method (method 4) wraps ``navigator`` in a proxy
whose ``get`` trap lies about ``webdriver``.

Two behaviours reproduce the paper's findings mechanically:

- Reflective traps (``ownKeys``, ``getOwnPropertyDescriptor``,
  ``getPrototypeOf``) forward to the target, so enumeration order, property
  counts and ``Object.keys`` are *unchanged* -- the reason Table 1 shows no
  ×'s for method 4 in the first three rows.
- Platform brand checks live on an internal slot the proxy does **not**
  have, so naively returning a native method from the ``get`` trap would
  make later calls throw.  Stealth handlers therefore return methods
  *bound to the target* -- anonymous wrappers whose ``toString`` has lost
  the function name (Listing 1; Table 1 row 5).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.jsobject.descriptors import PropertyDescriptor
from repro.jsobject.errors import JSTypeError
from repro.jsobject.functions import NativeFunction
from repro.jsobject.jsobject import JSObject, UNDEFINED


class JSProxy:
    """``new Proxy(target, handler)``.

    ``handler`` maps trap names (``"get"``, ``"set"``, ``"has"``,
    ``"ownKeys"``, ``"getOwnPropertyDescriptor"``, ``"deleteProperty"``,
    ``"getPrototypeOf"``) to callables.  Missing traps forward to the
    target.
    """

    #: Opt-in probe ledger (:mod:`repro.obs.probes`); ``None`` keeps the
    #: hot path to one attribute check.  Proxy entries carry a ``via``
    #: marker distinguishing a trap firing from default forwarding.
    _probe_ledger = None
    _probe_label = None

    def __init__(self, target: JSObject, handler: Optional[Dict[str, Callable]] = None) -> None:
        if not isinstance(target, (JSObject, JSProxy)):
            raise JSTypeError("Proxy target must be an object")
        self.target = target
        self.handler: Dict[str, Callable] = dict(handler or {})

    def _record(self, op: str, trap: Optional[Callable], key: Optional[str] = None) -> None:
        self._probe_ledger.record(
            op,
            self._probe_label,
            key=key,
            via="trap" if trap is not None else "forward",
        )

    # -- identity ------------------------------------------------------------

    @property
    def js_class(self) -> str:
        """Forwarded class brand (what ``Symbol.toStringTag`` would show).

        Note that WebIDL *brand checks* do not consult this -- they check
        for an internal slot the proxy lacks, which
        :meth:`NativeFunction.call` models by rejecting proxy receivers.
        """
        return self.target.js_class

    @property
    def proto(self) -> Optional[JSObject]:
        """``getPrototypeOf`` trap (default: the target's prototype)."""
        trap = self.handler.get("getPrototypeOf")
        if self._probe_ledger is not None:
            self._record("getPrototypeOf", trap)
        if trap is not None:
            return trap(self.target)
        return self.target.proto

    # -- fundamental operations ------------------------------------------------

    def get(self, name: str, receiver: Any = None) -> Any:
        if receiver is None:
            receiver = self
        trap = self.handler.get("get")
        if self._probe_ledger is not None:
            self._record("get", trap, key=name)
        if trap is not None:
            return trap(self.target, name, receiver)
        return self.target.get(name, receiver=receiver)

    def set(self, name: str, value: Any, receiver: Any = None) -> None:
        if receiver is None:
            receiver = self
        trap = self.handler.get("set")
        if self._probe_ledger is not None:
            self._record("set", trap, key=name)
        if trap is not None:
            trap(self.target, name, value, receiver)
            return
        self.target.set(name, value, receiver=receiver)

    def has(self, name: str) -> bool:
        trap = self.handler.get("has")
        if self._probe_ledger is not None:
            self._record("has", trap, key=name)
        if trap is not None:
            return bool(trap(self.target, name))
        return self.target.has(name)

    def has_own(self, name: str) -> bool:
        return name in self.own_property_names()

    def delete(self, name: str) -> bool:
        trap = self.handler.get("deleteProperty")
        if self._probe_ledger is not None:
            self._record("deleteProperty", trap, key=name)
        if trap is not None:
            return bool(trap(self.target, name))
        return self.target.delete(name)

    def get_own_property(self, name: str) -> Optional[PropertyDescriptor]:
        trap = self.handler.get("getOwnPropertyDescriptor")
        if self._probe_ledger is not None:
            self._record("getOwnPropertyDescriptor", trap, key=name)
        if trap is not None:
            return trap(self.target, name)
        return self.target.get_own_property(name)

    def own_property_names(self) -> List[str]:
        trap = self.handler.get("ownKeys")
        if self._probe_ledger is not None:
            self._record("ownKeys", trap)
        if trap is not None:
            return list(trap(self.target))
        return self.target.own_property_names()

    def own_enumerable_names(self) -> List[str]:
        names = []
        for name in self.own_property_names():
            desc = self.get_own_property(name)
            if desc is not None and desc.enumerable:
                names.append(name)
        return names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JSProxy({self.target!r})"


def is_proxy(obj: Any) -> bool:
    """Whether ``obj`` is a proxy.

    NOTE: real JavaScript offers **no** such predicate -- this helper exists
    for tests and for the arms-race discussion (the paper argues a website
    cannot tell *which* property a wrapped navigator lies about).  Detector
    code must not call it; detectors rely on observable side effects such as
    :func:`repro.detection.fingerprint.probe_function_tostring`.
    """
    return isinstance(obj, JSProxy)


def make_stealth_get_trap(
    overrides: Dict[str, Any],
) -> Callable[[JSObject, str, Any], Any]:
    """Build the ``get`` trap used by spoofing method 4.

    ``overrides`` maps property names to spoofed values.  All other reads
    forward to the target; function-valued results are bound to the target
    so that platform brand checks pass (producing the anonymous-wrapper
    side effect the paper detects via ``toString``).
    """

    def _get(target: JSObject, name: str, receiver: Any) -> Any:
        if name in overrides:
            return overrides[name]
        value = target.get(name, receiver=target)
        if isinstance(value, NativeFunction):
            return value.bound_anonymous(target)
        return value

    return _get
