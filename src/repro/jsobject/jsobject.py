"""The core JavaScript object: ordered own properties + a prototype chain.

Enumeration semantics are the load-bearing part for the paper's Table 1:

- **Own-property order** is insertion order (string keys), as in modern
  engines.  Creating an own shadow of an inherited property therefore moves
  it to the *front* of ``for-in`` enumeration -- the "incorrect order of
  navigator properties" side effect.
- ``Object.keys`` lists **own enumerable** properties only.
- ``for-in`` lists own enumerable properties, then walks the prototype
  chain; a name shadowed by *any* own property (even a non-enumerable one)
  is suppressed -- which is why a ``defineProperty`` spoof with the default
  ``enumerable: false`` makes ``webdriver`` *disappear* from enumeration.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.jsobject.descriptors import PropertyDescriptor
from repro.jsobject.errors import JSTypeError
from repro.jsobject.functions import JSFunction, NativeAccessor


class Undefined:
    """Singleton standing in for JavaScript's ``undefined``.

    Distinct from ``None`` (which models JS ``null``) so fingerprint probes
    can tell a property holding ``null``/``false`` apart from an absent one.
    """

    _instance: Optional["Undefined"] = None

    def __new__(cls) -> "Undefined":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "undefined"


UNDEFINED = Undefined()


def _invoke_getter(get: Any, receiver: Any) -> Any:
    """Invoke a descriptor's getter with an explicit receiver (``this``)."""
    if isinstance(get, NativeAccessor):
        return get(receiver)
    if isinstance(get, JSFunction):
        return get.call(receiver)
    if callable(get):
        return get(receiver)
    raise JSTypeError(f"getter is not callable: {get!r}")


def _invoke_setter(set_: Any, receiver: Any, value: Any) -> None:
    """Invoke a descriptor's setter with an explicit receiver."""
    if isinstance(set_, NativeAccessor):
        set_.set(receiver, value)
    elif isinstance(set_, JSFunction):
        set_.call(receiver, value)
    elif callable(set_):
        set_(receiver, value)
    else:
        raise JSTypeError(f"setter is not callable: {set_!r}")


class JSObject:
    """An ordinary JavaScript object.

    Parameters
    ----------
    proto:
        The object's prototype (``None`` models a ``null`` prototype).
    js_class:
        The platform-class brand (e.g. ``"Navigator"``) used by WebIDL
        brand checks; plain objects use ``"Object"``.
    """

    #: Opt-in probe ledger (:mod:`repro.obs.probes`).  Class attributes so
    #: uninstrumented objects pay one attribute check per operation and
    #: this module never imports ``repro.obs``.  Hooks fire at the public
    #: operation granularity page script observes (``[[Get]]`` on the
    #: receiver, not each internal chain step).
    _probe_ledger = None
    _probe_label = None

    def __init__(
        self,
        proto: Optional["JSObject"] = None,
        js_class: str = "Object",
    ) -> None:
        self._own: Dict[str, PropertyDescriptor] = {}
        self._proto = proto
        self.js_class = js_class
        self.extensible = True

    # -- prototype ---------------------------------------------------------

    @property
    def proto(self) -> Optional["JSObject"]:
        """The object's prototype (JS ``__proto__`` / ``getPrototypeOf``)."""
        if self._probe_ledger is not None:
            self._probe_ledger.record("getPrototypeOf", self._probe_label)
        return self._proto

    def set_prototype_of(self, proto: Optional["JSObject"]) -> None:
        """``Object.setPrototypeOf`` (cycle-checked)."""
        if self._probe_ledger is not None:
            self._probe_ledger.record("setPrototypeOf", self._probe_label)
        seen = proto
        while seen is not None:
            if seen is self:
                raise JSTypeError("cyclic prototype chain")
            seen = seen._proto
        if not self.extensible:
            raise JSTypeError("cannot change prototype of a non-extensible object")
        self._proto = proto

    def prototype_chain(self) -> List["JSObject"]:
        """The chain of prototypes from nearest to farthest."""
        chain: List[JSObject] = []
        node = self._proto
        while node is not None:
            chain.append(node)
            node = node._proto
        return chain

    # -- property lookup ----------------------------------------------------

    def get_own_property(self, name: str) -> Optional[PropertyDescriptor]:
        """The own descriptor for ``name``, or ``None``."""
        return self._own.get(name)

    def has_own(self, name: str) -> bool:
        """JS ``Object.prototype.hasOwnProperty``."""
        if self._probe_ledger is not None:
            self._probe_ledger.record(
                "hasOwn", self._probe_label, key=name,
                detail={"result": name in self._own},
            )
        return name in self._own

    def has(self, name: str) -> bool:
        """JS ``in`` operator: own or inherited."""
        obj: Optional[JSObject] = self
        found = False
        while obj is not None:
            if name in obj._own:
                found = True
                break
            obj = obj._proto
        if self._probe_ledger is not None:
            self._probe_ledger.record(
                "has", self._probe_label, key=name, detail={"result": found}
            )
        return found

    def get(self, name: str, receiver: Any = None) -> Any:
        """JS ``[[Get]]``: walk the prototype chain, invoking getters.

        ``receiver`` is the original ``this`` for accessor invocation (used
        by brand checks); defaults to this object.
        """
        if receiver is None:
            receiver = self
        if self._probe_ledger is not None:
            self._probe_ledger.record("get", self._probe_label, key=name)
        obj: Optional[JSObject] = self
        while obj is not None:
            desc = obj._own.get(name)
            if desc is not None:
                if desc.is_accessor():
                    if desc.get is None:
                        return UNDEFINED
                    if obj._probe_ledger is not None:
                        obj._probe_ledger.record(
                            "getter", obj._probe_label, key=name,
                            detail={"native": isinstance(desc.get, NativeAccessor)},
                        )
                    return _invoke_getter(desc.get, receiver)
                return desc.value
            obj = obj._proto
        return UNDEFINED

    def set(self, name: str, value: Any, receiver: Any = None) -> None:
        """JS ``[[Set]]`` (assignment semantics).

        Inherited accessor setters are honoured; otherwise an own enumerable
        data property is created/updated.
        """
        if receiver is None:
            receiver = self
        if self._probe_ledger is not None:
            self._probe_ledger.record("set", self._probe_label, key=name)
        obj: Optional[JSObject] = self
        while obj is not None:
            desc = obj._own.get(name)
            if desc is not None:
                if desc.is_accessor():
                    if desc.set is None:
                        raise JSTypeError(f'setting getter-only property "{name}"')
                    if obj._probe_ledger is not None:
                        obj._probe_ledger.record(
                            "setter", obj._probe_label, key=name,
                            detail={"native": isinstance(desc.set, NativeAccessor)},
                        )
                    _invoke_setter(desc.set, receiver, value)
                    return
                if obj is self:
                    if not desc.writable:
                        raise JSTypeError(f'"{name}" is read-only')
                    desc.value = value
                    return
                break  # inherited data property: create own shadow below
            obj = obj._proto
        self._own[name] = PropertyDescriptor.data(value)

    def delete(self, name: str) -> bool:
        """JS ``delete obj.name``.

        Returns ``False`` (delete failure) for non-configurable properties.
        """
        desc = self._own.get(name)
        deleted = True
        if desc is not None:
            if not desc.configurable:
                deleted = False
            else:
                del self._own[name]
        if self._probe_ledger is not None:
            self._probe_ledger.record(
                "delete", self._probe_label, key=name, detail={"result": deleted}
            )
        return deleted

    # -- property definition -------------------------------------------------

    def define_property(self, name: str, descriptor: PropertyDescriptor) -> "JSObject":
        """``Object.defineProperty`` with ES validation/merge semantics.

        Creating a new property completes the (possibly partial) descriptor
        with spec defaults -- ``enumerable``/``configurable``/``writable``
        all ``False`` -- which is the root of the paper's "disappears from
        Object.keys" observation.
        """
        if self._probe_ledger is not None:
            self._probe_ledger.record(
                "defineProperty", self._probe_label, key=name,
                detail={
                    "kind": "accessor" if descriptor.is_accessor() else "data",
                    "enumerable": descriptor.enumerable,
                    "configurable": descriptor.configurable,
                },
            )
        current = self._own.get(name)
        if current is None:
            if not self.extensible:
                raise JSTypeError(f"cannot define property {name}: object is not extensible")
            self._own[name] = descriptor.completed()
            return self
        if not current.configurable:
            changes_flavour = descriptor.is_accessor() != current.is_accessor() and (
                descriptor.is_accessor() or descriptor.is_data()
            )
            if changes_flavour or descriptor.configurable:
                raise JSTypeError(f"cannot redefine non-configurable property {name!r}")
            if (
                descriptor.enumerable is not None
                and bool(descriptor.enumerable) != bool(current.enumerable)
            ):
                raise JSTypeError(f"cannot redefine non-configurable property {name!r}")
        self._own[name] = descriptor.merged_onto(current)
        return self

    def define_getter(self, name: str, getter: Callable) -> None:
        """``Object.prototype.__defineGetter__``.

        Per spec this *always* creates an enumerable, configurable accessor
        property -- unlike ``defineProperty``'s falsy defaults.  (Mozilla
        deprecated it; the paper still evaluates it as method 2.)
        """
        self.define_property(
            name,
            PropertyDescriptor.accessor(get=getter, enumerable=True, configurable=True),
        )

    def define_setter(self, name: str, setter: Callable) -> None:
        """``Object.prototype.__defineSetter__`` (companion of the above)."""
        current = self._own.get(name)
        get = current.get if current is not None and current.is_accessor() else None
        self.define_property(
            name,
            PropertyDescriptor.accessor(
                get=get, set=setter, enumerable=True, configurable=True
            ),
        )

    # -- enumeration ----------------------------------------------------------

    def own_property_names(self) -> List[str]:
        """``Object.getOwnPropertyNames``: all own keys, insertion order."""
        names = list(self._own.keys())
        if self._probe_ledger is not None:
            self._probe_ledger.record(
                "ownKeys", self._probe_label, detail={"keys": names}
            )
        return names

    def own_enumerable_names(self) -> List[str]:
        """Own keys whose descriptor is enumerable, insertion order."""
        names = [n for n, d in self._own.items() if d.enumerable]
        if self._probe_ledger is not None:
            self._probe_ledger.record(
                "enumerate", self._probe_label, detail={"keys": names}
            )
        return names

    # -- integrity levels -----------------------------------------------------

    def freeze(self) -> "JSObject":
        """``Object.freeze``: lock every own property and extensibility.

        Some stealth scripts freeze their spoofed objects so page scripts
        cannot undo the override -- which is itself observable via
        ``Object.isFrozen`` (a stock ``navigator`` is never frozen).
        """
        for descriptor in self._own.values():
            descriptor.configurable = False
            if not descriptor.is_accessor():
                descriptor.writable = False
        self.extensible = False
        return self

    def is_frozen(self) -> bool:
        """``Object.isFrozen``."""
        if self.extensible:
            return False
        for descriptor in self._own.values():
            if descriptor.configurable:
                return False
            if not descriptor.is_accessor() and descriptor.writable:
                return False
        return True

    def seal(self) -> "JSObject":
        """``Object.seal``: non-configurable properties, no extensions."""
        for descriptor in self._own.values():
            descriptor.configurable = False
        self.extensible = False
        return self

    def is_sealed(self) -> bool:
        """``Object.isSealed``."""
        return not self.extensible and all(
            not d.configurable for d in self._own.values()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.js_class} own={list(self._own.keys())!r}>"


# -- free functions mirroring the JS built-ins used by fingerprint probes ----


def _unwrap(obj: Any) -> Any:
    """Resolve proxies to the object whose reflective traps should run."""
    from repro.jsobject.proxy import JSProxy

    return obj


def object_keys(obj: Any) -> List[str]:
    """``Object.keys(obj)``: own enumerable property names, in order."""
    from repro.jsobject.proxy import JSProxy

    if isinstance(obj, JSProxy):
        return obj.own_enumerable_names()
    return obj.own_enumerable_names()


def get_own_property_names(obj: Any) -> List[str]:
    """``Object.getOwnPropertyNames(obj)``."""
    return obj.own_property_names()


def for_in_names(obj: Any) -> List[str]:
    """``for (name in obj)`` enumeration order.

    Own enumerable names first (insertion order), then each prototype's
    enumerable names -- skipping names shadowed by *any* property closer to
    the receiver, enumerable or not.
    """
    from repro.jsobject.proxy import JSProxy

    names: List[str] = []
    seen: set = set()
    node: Any = obj
    while node is not None:
        if isinstance(node, JSProxy):
            own_all: Iterable[str] = node.own_property_names()
            own_enum = node.own_enumerable_names()
            nxt = node.proto
        else:
            own_all = node.own_property_names()
            own_enum = node.own_enumerable_names()
            nxt = node.proto
        enum_set = set(own_enum)
        for name in own_all:
            if name in seen:
                continue
            seen.add(name)
            if name in enum_set:
                names.append(name)
        node = nxt
    return names
