"""Function objects of the JavaScript model.

Two kinds matter for the paper:

- :class:`NativeFunction` -- a browser built-in.  Its ``toString`` renders
  the browser's native stub, *including the function name*::

      function toString() {
          [native code]
      }

  The paper's Listing 1 shows that wrapping ``navigator`` in a Proxy makes
  method lookups return *anonymous* wrappers, whose stub is missing the
  name -- the detectable side effect of spoofing method 4.

- :class:`NativeAccessor` -- a WebIDL attribute getter with a **brand
  check**: it must be invoked with a ``this`` of the right platform class
  (e.g. reading ``Navigator.prototype.webdriver`` directly throws a
  ``TypeError`` in Firefox).  Spoofing method 3 (``setPrototypeOf``) has to
  substitute a plain-object prototype, which loses the brand check -- the
  "Defined navigator.__proto__.webdriver" side effect of Table 1.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class JSFunction:
    """A plain (script-level) JavaScript function."""

    #: Opt-in probe ledger (:mod:`repro.obs.probes`): ``toString``
    #: renderings and brand checks are the paper's Listing 1 probes, so
    #: instrumented functions record them.  Class attributes keep the
    #: uninstrumented cost to one check.
    _probe_ledger = None
    _probe_label = None

    def __init__(self, fn: Callable, name: str = "") -> None:
        self._fn = fn
        self.name = name

    def _record_to_string(self, native: bool) -> None:
        self._probe_ledger.record(
            "toString",
            self._probe_label,
            detail={"name": self.name, "native": native},
        )

    def call(self, this: Any, *args: Any) -> Any:
        """Invoke the function with an explicit ``this``."""
        return self._fn(this, *args)

    def to_string(self) -> str:
        """JS ``Function.prototype.toString`` for a script function."""
        if self._probe_ledger is not None:
            self._record_to_string(native=False)
        return f"function {self.name}() {{\n    [user code]\n}}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JSFunction({self.name or '<anonymous>'})"


class NativeFunction(JSFunction):
    """A browser built-in function.

    ``to_string`` renders the native stub with the function's name -- unless
    the name is empty, in which case the stub is anonymous.  Comparing the
    two is precisely the probe from the paper's Listing 1.
    """

    def __init__(
        self,
        fn: Callable,
        name: str,
        *,
        brand: Optional[str] = None,
    ) -> None:
        super().__init__(fn, name)
        #: Required platform-class brand of ``this`` (``None`` disables the
        #: check).  Mirrors WebIDL's "called on an object that does not
        #: implement interface X" TypeError.
        self.brand = brand

    def call(self, this: Any, *args: Any) -> Any:
        from repro.jsobject.errors import JSTypeError
        from repro.jsobject.proxy import JSProxy

        if self.brand is not None:
            if isinstance(this, JSProxy):
                # A raw (unwrapped) call through a proxy fails the brand
                # check: the proxy is not a platform object.  Stealth
                # proxies avoid this by *binding* wrapped methods to the
                # target -- which is what creates anonymous wrappers.
                if self._probe_ledger is not None:
                    self._record_brand_check(passed=False)
                raise JSTypeError(
                    f"'{self.name}' called on an object that does not "
                    f"implement interface {self.brand}."
                )
            actual = getattr(this, "js_class", None)
            if self._probe_ledger is not None:
                self._record_brand_check(passed=actual == self.brand)
            if actual != self.brand:
                raise JSTypeError(
                    f"'{self.name}' called on an object that does not "
                    f"implement interface {self.brand}."
                )
        return self._fn(this, *args)

    def _record_brand_check(self, passed: bool) -> None:
        self._probe_ledger.record(
            "brandCheck",
            self._probe_label,
            key=self.name,
            detail={"brand": self.brand, "result": "ok" if passed else "throw"},
        )

    def to_string(self) -> str:
        """Native stub: ``function <name>() { [native code] }``."""
        if self._probe_ledger is not None:
            self._record_to_string(native=True)
        return f"function {self.name}() {{\n    [native code]\n}}"

    def bound_anonymous(self, this: Any) -> "NativeFunction":
        """Return an anonymous wrapper bound to ``this``.

        This is what a stealth Proxy's ``get`` trap produces so that brand
        checks pass -- and it is detectable because the wrapper's
        ``to_string`` has lost the function name (paper, Listing 1).
        """
        inner = self

        def _call_bound(_ignored_this: Any, *args: Any) -> Any:
            return inner.call(this, *args)

        wrapper = NativeFunction(_call_bound, name="", brand=None)
        # Propagate instrumentation: the wrapper's anonymous ``toString``
        # is precisely the culprit access the ledger must capture.
        wrapper._probe_ledger = self._probe_ledger
        wrapper._probe_label = self._probe_label
        return wrapper

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NativeFunction({self.name or '<anonymous>'})"


class NativeAccessor:
    """A WebIDL attribute getter/setter pair with a brand check.

    Used as the ``get``/``set`` of accessor :class:`PropertyDescriptor`\\ s
    on interface prototype objects (e.g. ``Navigator.prototype.webdriver``).
    """

    #: Opt-in probe ledger (see :class:`JSFunction`).
    _probe_ledger = None
    _probe_label = None

    def __init__(
        self,
        name: str,
        getter: Callable[[Any], Any],
        *,
        brand: str,
        setter: Optional[Callable[[Any, Any], None]] = None,
    ) -> None:
        self.name = name
        self.brand = brand
        self._getter = getter
        self._setter = setter
        #: The visible getter function object (what ``Object.
        #: getOwnPropertyDescriptor(proto, name).get`` returns in JS).
        self.get_function = NativeFunction(
            lambda this: self(this), name=f"get {name}", brand=brand
        )

    def _record_brand_check(self, accessor: str, passed: bool) -> None:
        self._probe_ledger.record(
            "brandCheck",
            self._probe_label,
            key=self.name,
            detail={
                "accessor": accessor,
                "brand": self.brand,
                "result": "ok" if passed else "throw",
            },
        )

    def __call__(self, this: Any) -> Any:
        from repro.jsobject.errors import JSTypeError

        actual = getattr(this, "js_class", None)
        if self._probe_ledger is not None:
            self._record_brand_check("get", passed=actual == self.brand)
        if actual != self.brand:
            raise JSTypeError(
                f"'get {self.name}' called on an object that does not "
                f"implement interface {self.brand}."
            )
        return self._getter(this)

    def set(self, this: Any, value: Any) -> None:
        from repro.jsobject.errors import JSTypeError

        if self._setter is None:
            raise JSTypeError(f"setting getter-only property \"{self.name}\"")
        actual = getattr(this, "js_class", None)
        if self._probe_ledger is not None:
            self._record_brand_check("set", passed=actual == self.brand)
        if actual != self.brand:
            raise JSTypeError(
                f"'set {self.name}' called on an object that does not "
                f"implement interface {self.brand}."
            )
        self._setter(this, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NativeAccessor({self.brand}.{self.name})"
