"""Error types raised by the JavaScript object model."""

from __future__ import annotations


class JSTypeError(Exception):
    """Equivalent of JavaScript's ``TypeError``.

    Raised by WebIDL brand checks (reading a native accessor with the wrong
    ``this``), by invalid property (re)definitions on non-configurable
    properties, and by proxy invariant violations.
    """


class JSReferenceError(Exception):
    """Equivalent of JavaScript's ``ReferenceError``."""
