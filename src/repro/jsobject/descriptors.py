"""Property descriptors, mirroring ECMAScript's attribute model.

A property is either a *data* property (``value`` + ``writable``) or an
*accessor* property (``get``/``set``).  Every property additionally carries
``enumerable`` and ``configurable`` attributes.

The defaults matter for the paper's Table 1: ``Object.defineProperty`` with
an incomplete descriptor creates a **non-enumerable** property, which is why
a naively spoofed ``navigator.webdriver`` "disappears from the listing when
calling ``Object.keys(navigator)``" (Section 3.1) until the spoofing code
remembers to set ``enumerable: true``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class PropertyDescriptor:
    """An ECMAScript property descriptor.

    Exactly one of the two flavours is active:

    - data descriptor: ``value`` (anything) and ``writable``;
    - accessor descriptor: ``get`` and/or ``set`` callables.

    Use :meth:`data` / :meth:`accessor` to build fully-specified
    descriptors, or the constructor with ``None`` attributes to express a
    *partial* descriptor as passed to ``defineProperty`` (unspecified
    attributes default to ``False``/``undefined`` per the spec).
    """

    __slots__ = ("value", "writable", "get", "set", "enumerable", "configurable", "_has_value")

    def __init__(
        self,
        value: Any = None,
        *,
        has_value: bool = False,
        writable: Optional[bool] = None,
        get: Optional[Callable] = None,
        set: Optional[Callable] = None,
        enumerable: Optional[bool] = None,
        configurable: Optional[bool] = None,
    ) -> None:
        if has_value and (get is not None or set is not None):
            raise ValueError(
                "a descriptor cannot be both a data and an accessor descriptor"
            )
        self.value = value
        self._has_value = has_value
        self.writable = writable
        self.get = get
        self.set = set
        self.enumerable = enumerable
        self.configurable = configurable

    # -- constructors -----------------------------------------------------

    @classmethod
    def data(
        cls,
        value: Any,
        *,
        writable: bool = True,
        enumerable: bool = True,
        configurable: bool = True,
    ) -> "PropertyDescriptor":
        """A fully-specified data descriptor (assignment-style defaults)."""
        return cls(
            value,
            has_value=True,
            writable=writable,
            enumerable=enumerable,
            configurable=configurable,
        )

    @classmethod
    def accessor(
        cls,
        get: Optional[Callable] = None,
        set: Optional[Callable] = None,
        *,
        enumerable: bool = True,
        configurable: bool = True,
    ) -> "PropertyDescriptor":
        """A fully-specified accessor descriptor."""
        return cls(
            get=get,
            set=set,
            enumerable=enumerable,
            configurable=configurable,
        )

    # -- queries -----------------------------------------------------------

    @property
    def has_value(self) -> bool:
        """Whether ``value`` was explicitly specified."""
        return self._has_value

    def is_accessor(self) -> bool:
        """Whether this is an accessor descriptor."""
        return self.get is not None or self.set is not None

    def is_data(self) -> bool:
        """Whether this is a data descriptor."""
        return self._has_value or self.writable is not None

    def is_generic(self) -> bool:
        """Neither data nor accessor: only attribute flags specified."""
        return not self.is_accessor() and not self.is_data()

    # -- completion --------------------------------------------------------

    def completed(self) -> "PropertyDescriptor":
        """Fill unspecified attributes with spec defaults (all falsy).

        Applied when ``defineProperty`` creates a **new** property: per
        ES2015 `OrdinaryDefineOwnProperty`, absent fields default to
        ``false``/``undefined``.  This default is the root cause of the
        "disappears from Object.keys" side effect observed in the paper.
        """
        if self.is_accessor():
            return PropertyDescriptor(
                get=self.get,
                set=self.set,
                enumerable=bool(self.enumerable),
                configurable=bool(self.configurable),
            )
        return PropertyDescriptor(
            self.value if self._has_value else None,
            has_value=True,
            writable=bool(self.writable),
            enumerable=bool(self.enumerable),
            configurable=bool(self.configurable),
        )

    def merged_onto(self, current: "PropertyDescriptor") -> "PropertyDescriptor":
        """Redefine ``current`` with this (partial) descriptor.

        Per the spec, attributes absent from the new descriptor keep the
        current property's attributes.  Switching between data and accessor
        flavours replaces the flavour-specific fields entirely.
        """
        same_flavour = (
            (self.is_accessor() and current.is_accessor())
            or (not self.is_accessor() and not current.is_accessor())
        )
        enumerable = current.enumerable if self.enumerable is None else self.enumerable
        configurable = (
            current.configurable if self.configurable is None else self.configurable
        )
        if self.is_accessor():
            get = self.get if self.get is not None else (current.get if same_flavour else None)
            set_ = self.set if self.set is not None else (current.set if same_flavour else None)
            return PropertyDescriptor(
                get=get, set=set_, enumerable=enumerable, configurable=configurable
            )
        if self.is_generic() and current.is_accessor():
            return PropertyDescriptor(
                get=current.get,
                set=current.set,
                enumerable=enumerable,
                configurable=configurable,
            )
        value = self.value if self._has_value else (current.value if same_flavour else None)
        writable = (
            self.writable
            if self.writable is not None
            else (current.writable if same_flavour else False)
        )
        return PropertyDescriptor(
            value,
            has_value=True,
            writable=bool(writable),
            enumerable=bool(enumerable),
            configurable=bool(configurable),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_accessor():
            return (
                f"PropertyDescriptor(get={self.get!r}, set={self.set!r}, "
                f"enumerable={self.enumerable}, configurable={self.configurable})"
            )
        return (
            f"PropertyDescriptor(value={self.value!r}, writable={self.writable}, "
            f"enumerable={self.enumerable}, configurable={self.configurable})"
        )
