"""The probe ledger: detection-surface tracing in the JS object model.

The paper's Table 1 side effects are the observable residue of detector
probes (``for-in`` enumeration, ``Object.keys``, descriptor
introspection, ``toString`` brand checks) hitting a spoofed
``navigator``.  The ledger records every fundamental operation performed
on *instrumented* objects -- ``get``/``set``/``has``, ``ownKeys``/
``getOwnPropertyDescriptor``/``getPrototypeOf``, getter invocations,
Proxy trap firings (trap vs. forward), ``toString`` renderings and WebIDL
brand checks -- so each side effect can be attributed to the exact
accesses that exposed it.

Determinism contract (same as the span tracer):

- entry ids are sequential in record order;
- timestamps come from a :class:`~repro.clock.VirtualClock`, never the
  wall clock;
- the JSONL export is canonical (``sort_keys``, fixed separators), so
  two same-seed runs -- or an interrupted-and-resumed run and its
  uninterrupted twin -- write byte-identical ledgers.

Instrumentation is attribute-based so :mod:`repro.jsobject` never
imports this package: hook points guard on a ``_probe_ledger`` class
attribute that defaults to ``None``, keeping the ledger-off overhead to
one attribute check per operation.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.clock import VirtualClock
from repro.jsobject.functions import JSFunction, NativeAccessor
from repro.jsobject.jsobject import JSObject
from repro.jsobject.proxy import JSProxy

_SEPARATORS = (",", ":")

#: Scope-label prefix marking one detector probe's accesses; the
#: attribution tooling keys on it.
PROBE_SCOPE_PREFIX = "detector.probe:"

#: Scope-label prefix for a spoofing method's install phase.
SPOOF_SCOPE_PREFIX = "spoof.install:"

#: Object-label prefix marking accesses on the *reference* (pristine)
#: navigator a probe compares against.
REFERENCE_LABEL_PREFIX = "ref:"

#: Fixed bucket upper bounds for the accesses-per-probe histogram.
#: Frozen at import time (same rule as ``DEFAULT_LATENCY_BUCKETS_MS``).
PROBE_ACCESS_BUCKETS: Tuple[float, ...] = (
    1.0,
    2.0,
    5.0,
    10.0,
    20.0,
    50.0,
    100.0,
    200.0,
    500.0,
    1_000.0,
)


class LedgerEntry:
    """One fundamental operation observed on an instrumented object."""

    __slots__ = ("entry_id", "ts_ms", "scope", "obj", "op", "key", "via", "detail")

    def __init__(
        self,
        entry_id: int,
        ts_ms: float,
        scope: str,
        obj: str,
        op: str,
        key: Optional[str] = None,
        via: Optional[str] = None,
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.entry_id = entry_id
        self.ts_ms = ts_ms
        #: ``/``-joined scope stack at record time (may be ``""``).
        self.scope = scope
        #: Label of the instrumented object (e.g. ``navigator.__proto__``).
        self.obj = obj
        #: Operation name (``get``, ``ownKeys``, ``toString``, ...).
        self.op = op
        #: Property key, for keyed operations.
        self.key = key
        #: ``"trap"``/``"forward"`` for proxy operations, else ``None``.
        self.via = via
        #: JSON-safe operation payload (result keys, function name, ...).
        self.detail = detail

    def to_dict(self) -> Dict[str, Any]:
        return {
            "entry_id": self.entry_id,
            "ts_ms": self.ts_ms,
            "scope": self.scope,
            "obj": self.obj,
            "op": self.op,
            "key": self.key,
            "via": self.via,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LedgerEntry":
        return cls(
            entry_id=int(data["entry_id"]),
            ts_ms=float(data["ts_ms"]),
            scope=str(data["scope"]),
            obj=str(data["obj"]),
            op=str(data["op"]),
            key=data.get("key"),
            via=data.get("via"),
            detail=data.get("detail"),
        )

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, LedgerEntry) and self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        via = f" via={self.via}" if self.via else ""
        key = f" {self.key!r}" if self.key is not None else ""
        return f"<LedgerEntry #{self.entry_id} {self.obj}.{self.op}{key}{via}>"


class ProbeLedger:
    """An append-only, deterministic record of instrumented operations.

    Parameters
    ----------
    clock:
        Timestamp source; a supervisor re-wires this onto its own shared
        clock (the one checkpoint resume advances in place).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; when set,
        every record increments a ``probe.ops.<op>`` counter and every
        closed ``detector.probe:*`` scope feeds the
        ``probe_accesses_per_probe`` histogram.
    """

    def __init__(self, clock: Optional[VirtualClock] = None, metrics=None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.metrics = metrics
        self._entries: List[LedgerEntry] = []
        self._next_id = 1
        self._scope_stack: List[str] = []
        self._scope_str = ""
        # Counter handles cached per op, invalidated if the registry is
        # swapped (a supervisor re-wires ``metrics`` after construction).
        self._op_counters: Dict[str, Any] = {}
        self._op_counters_for: Any = None

    # -- recording -------------------------------------------------------

    def record(
        self,
        op: str,
        obj: str,
        key: Optional[str] = None,
        via: Optional[str] = None,
        detail: Optional[Dict[str, Any]] = None,
    ) -> LedgerEntry:
        entry = LedgerEntry(
            self._next_id,
            self.clock.now(),
            self._scope_str,
            obj,
            op,
            key=key,
            via=via,
            detail=detail,
        )
        self._next_id += 1
        self._entries.append(entry)
        metrics = self.metrics
        if metrics is not None:
            if self._op_counters_for is not metrics:
                self._op_counters = {}
                self._op_counters_for = metrics
            counter = self._op_counters.get(op)
            if counter is None:
                counter = self._op_counters[op] = metrics.counter(
                    "probe.ops." + op
                )
            counter.inc()
        return entry

    @contextmanager
    def scope(self, label: str) -> Iterator[None]:
        """Attribute entries recorded inside to ``label`` (nestable)."""
        self._scope_stack.append(label)
        self._scope_str = "/".join(self._scope_stack)
        start = len(self._entries)
        try:
            yield
        finally:
            self._scope_stack.pop()
            self._scope_str = "/".join(self._scope_stack)
            if self.metrics is not None and label.startswith(PROBE_SCOPE_PREFIX):
                self.metrics.histogram(
                    "probe_accesses_per_probe", PROBE_ACCESS_BUCKETS
                ).observe(float(len(self._entries) - start))

    # -- introspection ---------------------------------------------------

    @property
    def entries(self) -> List[LedgerEntry]:
        return self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def slice_from(self, start: int) -> List[LedgerEntry]:
        """Entries recorded since ``start`` (= an earlier ``len(self)``)."""
        return self._entries[start:]

    def op_counts(self) -> Dict[str, int]:
        """``{op: count}`` over the whole ledger, sorted by op name."""
        counts: Dict[str, int] = {}
        for entry in self._entries:
            counts[entry.op] = counts.get(entry.op, 0) + 1
        return {op: counts[op] for op in sorted(counts)}

    # -- serialisation ---------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {
            "next_id": self._next_id,
            "scopes": list(self._scope_stack),
            "entries": [entry.to_dict() for entry in self._entries],
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        self._next_id = int(state.get("next_id", 1))
        self._scope_stack = [str(s) for s in state.get("scopes", [])]
        self._scope_str = "/".join(self._scope_stack)
        self._entries = [
            LedgerEntry.from_dict(data) for data in state.get("entries", [])
        ]


# -- canonical JSONL export ---------------------------------------------------


def entry_to_json(entry: LedgerEntry) -> str:
    """One entry as a canonical single-line JSON object."""
    return json.dumps(entry.to_dict(), sort_keys=True, separators=_SEPARATORS)


def ledger_to_jsonl(entries: Iterable[LedgerEntry]) -> str:
    """The whole ledger as canonical JSONL (trailing newline included)."""
    lines = [entry_to_json(entry) for entry in entries]
    return "\n".join(lines) + "\n" if lines else ""


def write_ledger(
    path: Union[str, Path], ledger: Union[ProbeLedger, Iterable[LedgerEntry]]
) -> Path:
    """Write a JSONL ledger file; returns the path written."""
    entries = ledger.entries if isinstance(ledger, ProbeLedger) else ledger
    path = Path(path)
    path.write_text(ledger_to_jsonl(entries))
    return path


def parse_ledger(text: str) -> List[LedgerEntry]:
    """Parse JSONL back into entries (inverse of :func:`ledger_to_jsonl`)."""
    entries = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            entries.append(LedgerEntry.from_dict(json.loads(line)))
    return entries


def read_ledger(path: Union[str, Path]) -> List[LedgerEntry]:
    """Read a JSONL ledger file written by :func:`write_ledger`."""
    return parse_ledger(Path(path).read_text())


# -- instrumentation ----------------------------------------------------------


def _attach_function(fn: Any, ledger: ProbeLedger, label: str) -> None:
    if isinstance(fn, NativeAccessor):
        fn._probe_ledger = ledger
        fn._probe_label = label
        fn.get_function._probe_ledger = ledger
        fn.get_function._probe_label = label
    elif isinstance(fn, JSFunction):
        fn._probe_ledger = ledger
        fn._probe_label = label


def instrument(obj: Any, ledger: ProbeLedger, label: str = "navigator") -> Any:
    """Attach ``ledger`` to an object graph: the object, its prototype
    chain, and every function value / native accessor hanging off them.

    Prototypes are labelled ``<label>.__proto__[...]``, functions and
    accessors ``<owner-label>.<property>``.  A proxy and its target share
    the proxy's label -- the ``via`` field of proxy entries distinguishes
    the layers.  Attaching records nothing and is idempotent, so callers
    may re-instrument after a spoof replaced parts of the graph.
    """
    node: Any = obj
    lbl = label
    seen = set()
    while node is not None and id(node) not in seen:
        seen.add(id(node))
        node._probe_ledger = ledger
        node._probe_label = lbl
        if isinstance(node, JSProxy):
            node = node.target
            continue
        if not isinstance(node, JSObject):
            break
        for name, desc in node._own.items():
            _attach_function(desc.value, ledger, f"{lbl}.{name}")
            _attach_function(desc.get, ledger, f"{lbl}.{name}")
            _attach_function(desc.set, ledger, f"{lbl}.{name}")
        node = node._proto
        lbl = lbl + ".__proto__"
    return obj


def instrument_window(window: Any, ledger: ProbeLedger) -> Any:
    """Instrument a window's navigator graph and remember the ledger on
    the window, so detection re-instruments after spoofing swaps the
    navigator object out."""
    window.probe_ledger = ledger
    instrument(window.navigator, ledger, "navigator")
    return window


def ledger_of(obj: Any) -> Optional[ProbeLedger]:
    """The ledger an object (or window) is instrumented with, if any."""
    ledger = getattr(obj, "probe_ledger", None)
    if ledger is None:
        ledger = getattr(obj, "_probe_ledger", None)
    return ledger
