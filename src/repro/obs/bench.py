"""Benchmark history and the perf regression gate.

The benchmark suites already measure the things the ROADMAP cares
about -- the motor-kernel speedup (``BENCH_hlisa.json``), shard scaling
(``BENCH_crawl.json``), the whole-program lint budget
(``BENCH_lint.json``) -- but until now nothing *consumed* those files:
a PR could halve the 11.9x kernel win and no test would notice.  This
module closes the loop:

- :func:`append_history` flattens each ``BENCH_*.json`` into dotted
  metric paths (``hlisa.hlisa_motor.kernel.speedup``) and appends one
  record per metric to the append-only ``BENCH_HISTORY.jsonl``;
- :func:`check_metrics` compares current values against the last
  recorded *baseline* per metric, in the metric's own direction
  (events/s up is good, wall-seconds up is bad), with a relative
  tolerance;
- ``python -m repro.obs bench check --tolerance 0.15`` exposes the
  gate with ``diff(1)`` exit semantics (0 pass, 1 regression, 2 error)
  so CI fails a PR that regresses a guarded metric.

Only metrics with a known direction are gated.  Counts, configuration
echoes (``sites``, ``instances``) and declared targets (leaf names
starting with ``target``) are recorded for the history but never fail
the gate -- changing the benchmark's shape is a review decision, not a
regression.

History records carry no wall-clock timestamps: determinism rules
(``repro.lint`` DET001) ban time reads in this tree, and ordering is
already total -- the file is append-only and each append batch gets the
next sequential ``seq``.  Callers who want real timestamps can put them
in ``label``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

_SEPARATORS = (",", ":")

#: The benchmark files the gate knows about, in check order.
DEFAULT_BENCH_FILES: Tuple[str, ...] = (
    "BENCH_crawl.json",
    "BENCH_hlisa.json",
    "BENCH_lint.json",
)

#: The append-only history the gate reads its baselines from.
DEFAULT_HISTORY = "BENCH_HISTORY.jsonl"

#: Default relative tolerance before a guarded metric fails the gate.
DEFAULT_TOLERANCE = 0.15


class BenchError(ValueError):
    """Raised when bench files or history cannot be read or paired."""


def bench_prefix(path: Union[str, Path]) -> str:
    """Metric-path prefix for a bench file: ``BENCH_crawl.json`` ->
    ``crawl``; any other stem is used verbatim."""
    stem = Path(path).stem
    return stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem


def flatten_bench(data: Any, prefix: str) -> Dict[str, float]:
    """Flatten nested bench JSON to ``{dotted.path: number}``.

    Booleans and non-numeric leaves are dropped: the gate compares
    magnitudes, and flags like ``byte_identical`` have their own tests.
    """
    flat: Dict[str, float] = {}
    if isinstance(data, dict):
        for key in sorted(data):
            child_prefix = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten_bench(data[key], child_prefix))
    elif isinstance(data, (int, float)) and not isinstance(data, bool):
        flat[prefix] = float(data)
    return flat


def load_bench_values(
    paths: Sequence[Union[str, Path]],
) -> Dict[str, float]:
    """Read and flatten bench files into one metric-path -> value map."""
    values: Dict[str, float] = {}
    for path in paths:
        path = Path(path)
        if not path.exists():
            raise BenchError(f"no such bench file: {path}")
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise BenchError(f"{path}: not valid JSON ({error})") from error
        values.update(flatten_bench(data, bench_prefix(path)))
    return values


def metric_direction(metric: str) -> Optional[str]:
    """``"higher"`` / ``"lower"`` is better, or ``None`` (not gated).

    The rules are deliberately name-based and conservative: throughput
    and speedup metrics must not drop, time/latency metrics must not
    grow, and everything else -- counts, rates that are configuration,
    declared targets -- is informational.
    """
    segments = metric.split(".")
    leaf = segments[-1]
    if leaf.startswith("target"):
        return None
    if "speedup" in leaf or leaf.endswith("_per_s") or "coverage" in leaf:
        return "higher"
    for segment in segments:
        if segment.endswith("_ms") or segment.endswith("_s"):
            return "lower"
        if "_ms_" in segment or "wall_ms" in segment:
            return "lower"
    return None


# -- history ------------------------------------------------------------------


def read_history(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """All history records, oldest first; missing file reads empty."""
    path = Path(path)
    if not path.exists():
        return []
    records = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise BenchError(
                f"{path}:{lineno}: corrupt history line ({error})"
            ) from error
        records.append(record)
    return records


def append_history(
    history_path: Union[str, Path],
    bench_paths: Sequence[Union[str, Path]],
    kind: str = "sample",
    label: str = "",
) -> List[Dict[str, Any]]:
    """Append one record per metric of ``bench_paths`` to the history.

    ``kind`` is ``"sample"`` (a measurement) or ``"baseline"`` (the
    reference the gate compares against; the *last* baseline per metric
    wins, so re-baselining is one more append, never a rewrite).
    Returns the records appended.
    """
    if kind not in ("sample", "baseline"):
        raise BenchError(f"unknown history kind: {kind!r}")
    history_path = Path(history_path)
    existing = read_history(history_path)
    seq = 1 + max((int(r.get("seq", 0)) for r in existing), default=0)
    records = []
    for path in bench_paths:
        path = Path(path)
        values = load_bench_values([path])
        for metric in sorted(values):
            records.append(
                {
                    "kind": kind,
                    "label": label,
                    "metric": metric,
                    "seq": seq,
                    "source": path.name,
                    "value": values[metric],
                }
            )
    with history_path.open("a") as fh:
        for record in records:
            fh.write(
                json.dumps(record, sort_keys=True, separators=_SEPARATORS)
                + "\n"
            )
    return records


def baseline_values(history: Sequence[Dict[str, Any]]) -> Dict[str, float]:
    """The last recorded baseline per metric path."""
    baselines: Dict[str, float] = {}
    for record in history:
        if record.get("kind") == "baseline":
            baselines[str(record["metric"])] = float(record["value"])
    return baselines


# -- the gate -----------------------------------------------------------------


@dataclass
class MetricCheck:
    """One gated metric's verdict against its baseline."""

    metric: str
    direction: str
    baseline: float
    current: float
    #: Relative change in the *bad* direction (0 when the metric moved
    #: the right way); the gate trips when this exceeds the tolerance.
    regression: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "direction": self.direction,
            "baseline": self.baseline,
            "current": self.current,
            "regression": self.regression,
        }


@dataclass
class BenchCheckResult:
    """The gate's full verdict."""

    tolerance: float
    checked: List[MetricCheck] = field(default_factory=list)
    #: Gated metrics whose regression exceeds the tolerance.
    failures: List[MetricCheck] = field(default_factory=list)
    #: Current metrics with no recorded baseline (never a failure).
    unbaselined: List[str] = field(default_factory=list)
    #: Baselined metrics absent from the current bench files.
    missing: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tolerance": self.tolerance,
            "passed": self.passed,
            "checked": [c.to_dict() for c in self.checked],
            "failures": [c.to_dict() for c in self.failures],
            "unbaselined": self.unbaselined,
            "missing": self.missing,
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def render_text(self) -> str:
        lines = [
            "bench check",
            "===========",
            f"tolerance: {self.tolerance:.0%} | gated metrics: "
            f"{len(self.checked)} | regressions: {len(self.failures)}",
        ]
        for check in self.checked:
            verdict = (
                "FAIL" if check.regression > self.tolerance else "ok  "
            )
            arrow = "^" if check.direction == "higher" else "v"
            lines.append(
                f"  [{verdict}] {check.metric:52s} {arrow} "
                f"base {check.baseline:14.4f}  now {check.current:14.4f}  "
                f"worse by {check.regression:7.2%}"
            )
        if self.unbaselined:
            lines.append(
                f"unbaselined (recorded, not gated): "
                f"{len(self.unbaselined)}"
            )
            for metric in self.unbaselined:
                lines.append(f"  + {metric}")
        if self.missing:
            lines.append(f"baselined but missing now: {len(self.missing)}")
            for metric in self.missing:
                lines.append(f"  - {metric}")
        lines.append("verdict: " + ("pass" if self.passed else "REGRESSION"))
        return "\n".join(lines) + "\n"


def check_metrics(
    current: Dict[str, float],
    baseline: Dict[str, float],
    tolerance: float = DEFAULT_TOLERANCE,
) -> BenchCheckResult:
    """Gate ``current`` against ``baseline`` with a relative tolerance.

    Only metrics with a known direction participate.  For
    higher-is-better metrics the regression is ``(baseline - current) /
    baseline``; for lower-is-better it is ``(current - baseline) /
    baseline``; values moving the right way clamp to zero.  Zero
    baselines gate only on sign (any move in the bad direction is a
    full 100% regression).
    """
    if tolerance < 0:
        raise BenchError("tolerance must be >= 0")
    result = BenchCheckResult(tolerance=tolerance)
    for metric in sorted(current):
        direction = metric_direction(metric)
        if direction is None:
            continue
        if metric not in baseline:
            result.unbaselined.append(metric)
            continue
        base, now = baseline[metric], current[metric]
        if direction == "higher":
            shortfall = base - now
        else:
            shortfall = now - base
        if shortfall <= 0:
            regression = 0.0
        elif base == 0:
            regression = 1.0
        else:
            regression = shortfall / abs(base)
        check = MetricCheck(metric, direction, base, now, regression)
        result.checked.append(check)
        if regression > tolerance:
            result.failures.append(check)
    result.missing = sorted(
        metric
        for metric in baseline
        if metric_direction(metric) is not None and metric not in current
    )
    return result


def check_bench_files(
    bench_paths: Sequence[Union[str, Path]],
    history_path: Union[str, Path] = DEFAULT_HISTORY,
    tolerance: float = DEFAULT_TOLERANCE,
) -> BenchCheckResult:
    """The full gate: current bench files vs the history's baselines."""
    history_path = Path(history_path)
    if not history_path.exists():
        raise BenchError(
            f"no benchmark history at {history_path}; record a baseline "
            f"first: python -m repro.obs bench record --baseline"
        )
    current = load_bench_values(bench_paths)
    baseline = baseline_values(read_history(history_path))
    return check_metrics(current, baseline, tolerance)
