"""Spans and span events: the trace's unit of work.

A :class:`Span` is one timed region on the *virtual* clock -- never the
wall clock -- with a name, JSON-safe attributes, a parent link, and an
optional list of point-in-time :class:`SpanEvent` annotations (fault
injections, backoff delays, breaker transitions...).  Spans are created
by :class:`repro.obs.tracer.Tracer` in strictly increasing ``span_id``
order, which doubles as start order, so a trace serialises to the same
bytes on every run with the same seed.

Spans are plain ``__slots__`` objects rather than dataclasses: the
supervisor creates several per visit and the tracing-overhead budget
(see ``benchmarks/test_perf_overhead.py``) is a hard acceptance
criterion.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

#: Status of a span that completed without incident.
STATUS_OK = "ok"


class SpanEvent:
    """A point-in-time annotation inside a span."""

    __slots__ = ("ts_ms", "name", "attrs")

    def __init__(self, ts_ms: float, name: str, attrs: Dict[str, Any]) -> None:
        self.ts_ms = ts_ms
        self.name = name
        self.attrs = attrs

    def to_dict(self) -> Dict[str, Any]:
        return {"ts_ms": self.ts_ms, "name": self.name, "attrs": self.attrs}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanEvent":
        return cls(float(data["ts_ms"]), data["name"], dict(data["attrs"]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpanEvent):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanEvent({self.name!r} @ {self.ts_ms:.1f} ms)"


class Span:
    """One timed region of the crawl, on the virtual clock.

    ``span_id`` is a sequential integer (1-based); ``parent_id`` is 0
    for root spans.  ``end_ms`` is ``None`` while the span is open.
    ``status`` is ``"ok"`` unless the instrumented region failed (e.g.
    ``"fault:driver-crash"`` on a faulted attempt).
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "start_ms",
        "attrs",
        "end_ms",
        "status",
        "events",
        "wall_ms",
        "_wall_start",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: int,
        name: str,
        start_ms: float,
        attrs: Dict[str, Any],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_ms = start_ms
        self.attrs = attrs
        self.end_ms: Optional[float] = None
        self.status = STATUS_OK
        #: Lazily allocated: most spans carry no events.
        self.events: Optional[List[SpanEvent]] = None
        #: Dual-clock mode only (``Tracer(wall_clock=...)``): the
        #: *wall-time* cost of the span, next to its virtual duration.
        #: Never part of :meth:`to_dict` -- wall time is machine noise,
        #: and the canonical export must stay byte-identical across
        #: runs.  ``to_dict_dual`` includes it for human inspection.
        self.wall_ms: Optional[float] = None
        self._wall_start: Optional[float] = None

    @property
    def open(self) -> bool:
        return self.end_ms is None

    @property
    def duration_ms(self) -> float:
        """Span duration; 0 while the span is still open."""
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    def add_event(self, ts_ms: float, name: str, attrs: Dict[str, Any]) -> None:
        if self.events is None:
            self.events = []
        self.events.append(SpanEvent(ts_ms, name, attrs))

    # -- serialisation (checkpoints and JSONL export) --------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "status": self.status,
            "attrs": self.attrs,
            "events": [e.to_dict() for e in self.events or []],
        }

    def to_dict_dual(self) -> Dict[str, Any]:
        """The canonical dict plus the wall-time delta (when recorded).

        Only the opt-in dual-clock export uses this; everything that is
        diffed or byte-compared goes through :meth:`to_dict`.
        """
        data = self.to_dict()
        if self.wall_ms is not None:
            data["wall_ms"] = self.wall_ms
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        span = cls(
            int(data["span_id"]),
            int(data["parent_id"]),
            data["name"],
            float(data["start_ms"]),
            dict(data["attrs"]),
        )
        end_ms = data.get("end_ms")
        span.end_ms = None if end_ms is None else float(end_ms)
        span.status = data.get("status", STATUS_OK)
        events = data.get("events") or []
        if events:
            span.events = [SpanEvent.from_dict(e) for e in events]
        wall_ms = data.get("wall_ms")
        if wall_ms is not None:
            span.wall_ms = float(wall_ms)
        return span

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Span):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.open else f"{self.duration_ms:.1f} ms"
        return f"Span(#{self.span_id} {self.name!r} {state})"
