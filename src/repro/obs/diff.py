"""Diffing two canonical JSONL exports (traces or probe ledgers).

The exports are byte-stable by construction, so the interesting question
is never "are the files equal?" (``cmp`` answers that) but *where* two
runs diverged: which spans or ledger entries were added, which vanished,
and which changed in place -- field by field.  ``python -m repro.obs
diff`` exposes this; CI uses it to assert that two same-seed crawls (or
an interrupted-and-resumed crawl and its uninterrupted twin) produced
zero differences.

Records are keyed by their stable sequential id (``span_id`` for
traces, ``entry_id`` for ledgers); the kind of each file is detected
from that key, and diffing a trace against a ledger is an error.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

_SEPARATORS = (",", ":")

#: id key per export kind; doubles as the kind detector.
_ID_KEYS = {"trace": "span_id", "ledger": "entry_id"}


class ExportKindError(ValueError):
    """Raised when a file is not a recognised export, or kinds differ."""


@dataclass
class FieldChange:
    """One field whose value differs between the two files."""

    field: str
    a: Any
    b: Any

    def to_dict(self) -> Dict[str, Any]:
        return {"field": self.field, "a": self.a, "b": self.b}


@dataclass
class RecordChange:
    """One record (same id in both files) with differing fields."""

    record_id: int
    changes: List[FieldChange]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "record_id": self.record_id,
            "changes": [c.to_dict() for c in self.changes],
        }


@dataclass
class ExportDiff:
    """The structured difference between two exports of one kind."""

    kind: str
    #: ids present only in the second (``b``) file.
    added: List[int] = field(default_factory=list)
    #: ids present only in the first (``a``) file.
    removed: List[int] = field(default_factory=list)
    changed: List[RecordChange] = field(default_factory=list)
    a_total: int = 0
    b_total: int = 0

    @property
    def identical(self) -> bool:
        return not (self.added or self.removed or self.changed)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "identical": self.identical,
            "a_total": self.a_total,
            "b_total": self.b_total,
            "added": self.added,
            "removed": self.removed,
            "changed": [c.to_dict() for c in self.changed],
        }

    # -- rendering -------------------------------------------------------

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_text(self, limit: int = 20) -> str:
        """A unified-diff-flavoured summary; ``limit`` caps the per-
        section detail lines (0 = no cap)."""
        lines = [
            f"kind: {self.kind}",
            f"records: a={self.a_total} b={self.b_total}",
        ]
        if self.identical:
            lines.append("identical: yes")
            return "\n".join(lines) + "\n"
        lines.append(
            "identical: no "
            f"(+{len(self.added)} -{len(self.removed)} "
            f"~{len(self.changed)})"
        )
        id_key = _ID_KEYS[self.kind]
        for sign, ids in (("+", self.added), ("-", self.removed)):
            for record_id in _capped(ids, limit):
                lines.append(f"  {sign} {id_key}={record_id}")
            lines.extend(_overflow(ids, limit))
        for change in _capped(self.changed, limit):
            for delta in change.changes:
                lines.append(
                    f"  ~ {id_key}={change.record_id} {delta.field}: "
                    f"{_fmt(delta.a)} -> {_fmt(delta.b)}"
                )
        lines.extend(_overflow(self.changed, limit))
        return "\n".join(lines) + "\n"


def _capped(items: List[Any], limit: int) -> List[Any]:
    return items if limit <= 0 else items[:limit]


def _overflow(items: List[Any], limit: int) -> List[str]:
    if 0 < limit < len(items):
        return [f"  ... {len(items) - limit} more"]
    return []


def _fmt(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=_SEPARATORS)


# -- loading ------------------------------------------------------------------


def detect_kind(record: Dict[str, Any]) -> str:
    """``"trace"`` or ``"ledger"``, from the record's id key."""
    for kind, id_key in _ID_KEYS.items():
        if id_key in record:
            return kind
    raise ExportKindError(
        "record has neither span_id nor entry_id; not a repro.obs export"
    )


def load_export(path: Union[str, Path]) -> Tuple[str, Dict[int, Dict[str, Any]]]:
    """Load a JSONL export as ``(kind, {id: record})``.

    An empty file loads as an empty trace (kind cannot be detected, and
    the distinction does not matter for an empty record set).
    """
    records: Dict[int, Dict[str, Any]] = {}
    kind = ""
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        record_kind = detect_kind(record)
        if not kind:
            kind = record_kind
        elif record_kind != kind:
            raise ExportKindError(f"{path}: mixed {kind}/{record_kind} records")
        records[int(record[_ID_KEYS[kind]])] = record
    return kind or "trace", records


def load_export_any(
    path: Union[str, Path], kind: str = "auto"
) -> Tuple[str, Dict[int, Dict[str, Any]]]:
    """Load an export file *or* a directory of per-shard exports.

    A directory is merged onto the serial timeline first (see
    :mod:`repro.obs.merge`), so diffing a shard directory against a
    serial export answers "did sharding change the bytes?".  ``kind``
    picks which exports to merge from a directory holding both traces
    and ledgers (``auto`` prefers traces); it is ignored for files,
    whose kind is self-describing.
    """
    path = Path(path)
    if not path.is_dir():
        return load_export(path)
    # Imported lazily: repro.obs.merge pulls in the probe-ledger module,
    # which file-only diffs never need.
    from repro.obs import merge as shard_merge

    has_traces = bool(sorted(path.glob(shard_merge.TRACE_GLOB)))
    has_ledgers = bool(sorted(path.glob(shard_merge.LEDGER_GLOB)))
    if kind == "auto":
        kind = "trace" if has_traces or not has_ledgers else "ledger"
    if kind == "trace":
        spans = shard_merge.merge_trace_dir(path)
        return "trace", {span.span_id: span.to_dict() for span in spans}
    entries = shard_merge.merge_ledger_dir(path)
    return "ledger", {entry.entry_id: entry.to_dict() for entry in entries}


# -- diffing ------------------------------------------------------------------


def diff_records(
    kind: str,
    a: Dict[int, Dict[str, Any]],
    b: Dict[int, Dict[str, Any]],
) -> ExportDiff:
    """Diff two id-keyed record maps of the same kind."""
    result = ExportDiff(kind=kind, a_total=len(a), b_total=len(b))
    result.added = sorted(set(b) - set(a))
    result.removed = sorted(set(a) - set(b))
    for record_id in sorted(set(a) & set(b)):
        record_a, record_b = a[record_id], b[record_id]
        fields = sorted(set(record_a) | set(record_b))
        changes = [
            FieldChange(name, record_a.get(name), record_b.get(name))
            for name in fields
            if record_a.get(name) != record_b.get(name)
        ]
        if changes:
            result.changed.append(RecordChange(record_id, changes))
    return result


def diff_exports(
    path_a: Union[str, Path],
    path_b: Union[str, Path],
    kind: str = "auto",
) -> ExportDiff:
    """Diff two exports (both traces, or both ledgers).

    Either side may be a directory of per-shard exports, which is merged
    onto the serial timeline before diffing.  A genuinely empty file
    takes the other file's kind: zero records diff cleanly against
    either kind.
    """
    kind_a, records_a = load_export_any(path_a, kind)
    kind_b, records_b = load_export_any(path_b, kind)
    if records_a and records_b and kind_a != kind_b:
        raise ExportKindError(
            f"cannot diff a {kind_a} export against a {kind_b} export"
        )
    kind = kind_a if records_a else kind_b
    return diff_records(kind, records_a, records_b)
