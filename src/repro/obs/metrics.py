"""Counters and fixed-bucket histograms, deterministic by construction.

The registry has no global state, reads no clock of its own (values are
fed from virtual-clock deltas by the instrumented code), and serialises
to a sorted, JSON-safe dict -- so two runs with the same seed export the
same bytes, and a resumed crawl restores the registry exactly from its
checkpoint.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Optional, Sequence, Tuple

#: Default latency bucket upper bounds, in virtual-clock milliseconds.
#: The last implicit bucket is +inf.  Fixed at import time so bucket
#: layout can never drift between a run and its resumption.
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1.0,
    5.0,
    10.0,
    50.0,
    100.0,
    500.0,
    1_000.0,
    2_000.0,
    5_000.0,
    10_000.0,
    30_000.0,
    60_000.0,
    120_000.0,
)


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def to_dict(self) -> int:
        return self.value


class Histogram:
    """A fixed-bucket histogram over virtual-clock values.

    ``bounds`` are inclusive upper bounds; one extra overflow bucket
    catches everything above the last bound.  Bucket layout is frozen at
    construction so serialised state is unambiguous.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "total", "count")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS
    ) -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The q-quantile, linearly interpolated within its bucket.

        The continuous rank ``q * count`` is located in the bucket whose
        cumulative count covers it, and the estimate interpolates
        between the bucket's lower and upper bound by the rank's
        fractional position inside the bucket (the Prometheus
        ``histogram_quantile`` rule).  Reading off the raw upper bound
        made p50/p95 jump discontinuously whenever the quantile crossed
        a bucket edge; interpolation keeps the read-out continuous in
        ``q`` and in the observed values.  Values in the overflow bucket
        still report the last bound -- a lower-bound estimate, which is
        the best a fixed-bucket histogram can give.  Empty histograms
        report ``0.0``.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        lower = 0.0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            if bucket:
                if cumulative + bucket >= rank:
                    fraction = (rank - cumulative) / bucket
                    return lower + (bound - lower) * fraction
                cumulative += bucket
            lower = bound
        return self.bounds[-1] if self.bounds else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.bucket_counts),
            "total": self.total,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, name: str, data: Dict[str, Any]) -> "Histogram":
        histogram = cls(name, data["bounds"])
        histogram.bucket_counts = [int(c) for c in data["buckets"]]
        histogram.total = float(data["total"])
        histogram.count = int(data["count"])
        return histogram


class MetricsRegistry:
    """Named counters and histograms for one crawl.

    Export order is sorted by name regardless of creation order, so the
    serialised registry is independent of code-path ordering.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, bounds)
        return histogram

    def counter_value(self, name: str) -> int:
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    # -- serialisation ---------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "histograms": {
                name: self._histograms[name].to_dict()
                for name in sorted(self._histograms)
            },
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        """Replace the registry's contents with a checkpointed state."""
        self._counters = {
            name: Counter(name, int(value))
            for name, value in state.get("counters", {}).items()
        }
        self._histograms = {
            name: Histogram.from_dict(name, data)
            for name, data in state.get("histograms", {}).items()
        }


class NullMetrics:
    """Inert registry: every handle is shared and does nothing."""

    _NULL_COUNTER: Optional["_NullCounter"] = None
    _NULL_HISTOGRAM: Optional["_NullHistogram"] = None

    def counter(self, name: str) -> "_NullCounter":
        return self._NULL_COUNTER  # type: ignore[return-value]

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS
    ) -> "_NullHistogram":
        return self._NULL_HISTOGRAM  # type: ignore[return-value]

    def counter_value(self, name: str) -> int:
        return 0

    def state_dict(self) -> None:
        return None

    def load_state(self, state: Any) -> None:
        return None


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        return None


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        return None


NullMetrics._NULL_COUNTER = _NullCounter()
NullMetrics._NULL_HISTOGRAM = _NullHistogram()

#: Shared inert registry (used by :data:`repro.obs.tracer.NULL_TRACER`).
NULL_METRICS = NullMetrics()
