"""The crawl report: aggregate a span tree into readable accounting.

``build_report`` walks an exported (or in-memory) trace and produces the
numbers a field-study reader needs before trusting Table 2 / Fig. 4:
how many visits ran, how many attempts and retries they cost, where the
virtual-clock time went (navigation vs. interaction vs. recovery), and
the fault / breaker / recycle distributions.  Everything derives from
the trace alone, so ``python -m repro.obs report trace.jsonl`` works on
any machine without the original crawl objects.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS_MS, Histogram
from repro.obs.span import Span

#: Span names emitted by the instrumented stack (docs/OBSERVABILITY.md).
SPAN_CRAWL = "crawl"
SPAN_VISIT = "visit"
SPAN_ATTEMPT = "attempt"
SPAN_HLISA_PERFORM = "hlisa.perform"
SPAN_WEBDRIVER_PREFIX = "webdriver."

EVENT_FAULT = "fault"
EVENT_BACKOFF = "backoff"
EVENT_RECYCLE = "browser.recycle"
EVENT_BREAKER_SKIP = "breaker.skip"
EVENT_BREAKER_PREFIX = "breaker."
EVENT_BUS_PREFIX = "bus."
EVENT_WATCHDOG_PREFIX = "watchdog."


@dataclass
class SpanAggregate:
    """Count, virtual-clock totals and fixed-bucket percentiles for one
    span name.

    Durations land in :data:`~repro.obs.metrics.
    DEFAULT_LATENCY_BUCKETS_MS` buckets at ``add`` time, so p50/p95 are
    derivable later from the aggregate alone -- including from its
    serialised form -- without keeping every duration."""

    count: int = 0
    total_ms: float = 0.0
    max_ms: float = 0.0
    bucket_counts: List[int] = field(
        default_factory=lambda: [0] * (len(DEFAULT_LATENCY_BUCKETS_MS) + 1)
    )

    def add(self, duration_ms: float) -> None:
        self.count += 1
        self.total_ms += duration_ms
        if duration_ms > self.max_ms:
            self.max_ms = duration_ms
        self.bucket_counts[
            bisect_left(DEFAULT_LATENCY_BUCKETS_MS, duration_ms)
        ] += 1

    def percentile(self, q: float) -> float:
        """The q-quantile as a bucket upper bound (conservative).

        Same rule as :meth:`repro.obs.metrics.Histogram.percentile`,
        except overflow-bucket quantiles report the exact ``max_ms`` the
        aggregate tracked instead of the last bound."""
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        if self.count == 0:
            return 0.0
        target = math.ceil(q * self.count)
        cumulative = 0
        for bound, bucket in zip(DEFAULT_LATENCY_BUCKETS_MS, self.bucket_counts):
            cumulative += bucket
            if cumulative >= target:
                return min(bound, self.max_ms)
        return self.max_ms

    @property
    def p50_ms(self) -> float:
        return self.percentile(0.50)

    @property
    def p95_ms(self) -> float:
        return self.percentile(0.95)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total_ms": self.total_ms,
            "max_ms": self.max_ms,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
        }


@dataclass
class CrawlReport:
    """Everything the trace says about one crawl."""

    crawl_ms: float = 0.0
    visits: int = 0
    reached: int = 0
    failed: int = 0
    attempts: int = 0
    retries: int = 0
    #: Virtual-clock attribution: successful attempts, faulted/failed
    #: attempts (recovery), and -- overlapping the latter -- backoff.
    attempt_ok_ms: float = 0.0
    attempt_failed_ms: float = 0.0
    backoff_ms: float = 0.0
    faults: Dict[str, int] = field(default_factory=dict)
    breaker_events: Dict[str, int] = field(default_factory=dict)
    recycles: int = 0
    #: Event-bus dispatch counts by event name (``bus.`` prefix stripped).
    bus_events: Dict[str, int] = field(default_factory=dict)
    #: Watchdog interventions by ``<watchdog>.<action>`` (``watchdog.``
    #: prefix stripped).
    watchdog_events: Dict[str, int] = field(default_factory=dict)
    #: ``(attempts, visits)`` pairs, sorted by attempt count.
    attempts_per_visit: List[Tuple[int, int]] = field(default_factory=list)
    span_totals: Dict[str, SpanAggregate] = field(default_factory=dict)
    event_counts: Dict[str, int] = field(default_factory=dict)
    #: Optional metrics-registry snapshot (``MetricsRegistry.state_dict``).
    metrics: Optional[Dict[str, Any]] = None
    #: ``build_report(top=N)``: the N slowest sites by total visit time.
    top_sites: List[Tuple[str, SpanAggregate]] = field(default_factory=list)
    #: ``build_report(top=N)``: the N most frequent failure reasons.
    top_failure_reasons: List[Tuple[str, int]] = field(default_factory=list)
    #: ``build_report(top=N)``: the N span names costing the most *self*
    #: time (time inside the span, outside its children) -- the
    #: profiler's hotspot ranking, surfaced in the report so ``--top``
    #: answers "where does the time go" without a second invocation.
    hotspots: List[Dict[str, Any]] = field(default_factory=list)

    def histogram_summaries(self) -> Dict[str, Dict[str, float]]:
        """count/mean/p50/p95 per metrics histogram (empty without
        metrics)."""
        histograms = (self.metrics or {}).get("histograms") or {}
        summaries = {}
        for name in sorted(histograms):
            histogram = Histogram.from_dict(name, histograms[name])
            summaries[name] = {
                "count": histogram.count,
                "mean": histogram.mean,
                "p50": histogram.percentile(0.50),
                "p95": histogram.percentile(0.95),
            }
        return summaries

    def to_dict(self) -> Dict[str, Any]:
        return {
            "crawl_ms": self.crawl_ms,
            "visits": self.visits,
            "reached": self.reached,
            "failed": self.failed,
            "attempts": self.attempts,
            "retries": self.retries,
            "attempt_ok_ms": self.attempt_ok_ms,
            "attempt_failed_ms": self.attempt_failed_ms,
            "backoff_ms": self.backoff_ms,
            "faults": {k: self.faults[k] for k in sorted(self.faults)},
            "breaker_events": {
                k: self.breaker_events[k] for k in sorted(self.breaker_events)
            },
            "recycles": self.recycles,
            "bus_events": {
                k: self.bus_events[k] for k in sorted(self.bus_events)
            },
            "watchdog_events": {
                k: self.watchdog_events[k]
                for k in sorted(self.watchdog_events)
            },
            "attempts_per_visit": [list(p) for p in self.attempts_per_visit],
            "span_totals": {
                name: self.span_totals[name].to_dict()
                for name in sorted(self.span_totals)
            },
            "event_counts": {
                k: self.event_counts[k] for k in sorted(self.event_counts)
            },
            "metrics": self.metrics,
            "histogram_summaries": self.histogram_summaries(),
            "top_sites": [
                [domain, aggregate.to_dict()]
                for domain, aggregate in self.top_sites
            ],
            "top_failure_reasons": [list(p) for p in self.top_failure_reasons],
            "hotspots": [dict(spot) for spot in self.hotspots],
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def render_text(self) -> str:
        lines = ["crawl report", "============"]
        lines.append(f"{'crawl duration':28s} {self.crawl_ms:12.1f} ms")
        lines.append(f"{'visits':28s} {self.visits:12d}")
        lines.append(f"{'  reached':28s} {self.reached:12d}")
        lines.append(f"{'  failed':28s} {self.failed:12d}")
        lines.append(f"{'attempts (incl. retries)':28s} {self.attempts:12d}")
        lines.append(f"{'retries':28s} {self.retries:12d}")
        lines.append("")
        lines.append("virtual-clock attribution")
        lines.append(f"{'  successful attempts':28s} {self.attempt_ok_ms:12.1f} ms")
        lines.append(
            f"{'  failed attempts (recovery)':28s} {self.attempt_failed_ms:12.1f} ms"
        )
        lines.append(f"{'    of which backoff':28s} {self.backoff_ms:12.1f} ms")
        if self.faults:
            lines.append("")
            lines.append("faults injected")
            for name in sorted(self.faults):
                lines.append(f"{'  ' + name:28s} {self.faults[name]:12d}")
        if self.recycles:
            lines.append(f"{'browser recycles':28s} {self.recycles:12d}")
        if self.breaker_events:
            lines.append("")
            lines.append("circuit breaker")
            for name in sorted(self.breaker_events):
                lines.append(
                    f"{'  ' + name:28s} {self.breaker_events[name]:12d}"
                )
        if self.bus_events:
            lines.append("")
            lines.append("event bus dispatches")
            for name in sorted(self.bus_events):
                lines.append(f"{'  ' + name:28s} {self.bus_events[name]:12d}")
        if self.watchdog_events:
            lines.append("")
            lines.append("watchdog interventions")
            for name in sorted(self.watchdog_events):
                lines.append(
                    f"{'  ' + name:28s} {self.watchdog_events[name]:12d}"
                )
        if self.attempts_per_visit:
            lines.append("")
            lines.append("attempts per visit")
            for attempts, visits in self.attempts_per_visit:
                lines.append(f"{'  ' + str(attempts) + ' attempt(s)':28s} {visits:12d}")
        lines.append("")
        lines.append("span totals")
        for name in sorted(self.span_totals):
            aggregate = self.span_totals[name]
            lines.append(
                f"{'  ' + name:28s} {aggregate.count:8d} x "
                f"{aggregate.total_ms:12.1f} ms total  "
                f"p50 {aggregate.p50_ms:10.1f} ms  "
                f"p95 {aggregate.p95_ms:10.1f} ms"
            )
        summaries = self.histogram_summaries()
        if summaries:
            lines.append("")
            lines.append("metric histograms")
            for name, summary in summaries.items():
                lines.append(
                    f"{'  ' + name:28s} {summary['count']:8d} x  "
                    f"mean {summary['mean']:10.1f}  "
                    f"p50 {summary['p50']:10.1f}  "
                    f"p95 {summary['p95']:10.1f}"
                )
        if self.top_sites:
            lines.append("")
            lines.append(f"slowest sites (top {len(self.top_sites)})")
            for domain, aggregate in self.top_sites:
                lines.append(
                    f"{'  ' + domain:28s} {aggregate.count:4d} visit(s) "
                    f"{aggregate.total_ms:12.1f} ms total  "
                    f"max {aggregate.max_ms:10.1f} ms"
                )
        if self.top_failure_reasons:
            lines.append("")
            lines.append(
                f"failure reasons (top {len(self.top_failure_reasons)})"
            )
            for reason, count in self.top_failure_reasons:
                lines.append(f"{'  ' + reason:28s} {count:12d}")
        if self.hotspots:
            lines.append("")
            lines.append(f"hotspots by self time (top {len(self.hotspots)})")
            for spot in self.hotspots:
                lines.append(
                    f"{'  ' + spot['name']:28s} {spot['count']:8d} x "
                    f"{spot['self_ms']:12.1f} ms self  "
                    f"{spot['total_ms']:12.1f} ms total"
                )
        return "\n".join(lines) + "\n"


def build_report(
    spans: List[Span],
    metrics: Optional[Dict[str, Any]] = None,
    top: int = 0,
) -> CrawlReport:
    """Aggregate a trace (see :mod:`repro.obs.export`) into a report.

    ``top`` > 0 additionally ranks the ``top`` slowest sites (by total
    visit time on the virtual clock) and the ``top`` most frequent
    failure reasons, with deterministic name tie-breaks.
    """
    report = CrawlReport(metrics=metrics)
    attempts_histogram: Dict[int, int] = {}
    site_aggregates: Dict[str, SpanAggregate] = {}
    failure_counts: Dict[str, int] = {}
    for span in spans:
        aggregate = report.span_totals.get(span.name)
        if aggregate is None:
            aggregate = report.span_totals[span.name] = SpanAggregate()
        aggregate.add(span.duration_ms)

        if span.name == SPAN_CRAWL:
            report.crawl_ms += span.duration_ms
        elif span.name == SPAN_VISIT:
            report.visits += 1
            if span.status == "ok":
                report.reached += 1
            else:
                report.failed += 1
                if top > 0 and span.status.startswith("failed:"):
                    reason = span.status[len("failed:"):]
                    failure_counts[reason] = failure_counts.get(reason, 0) + 1
            attempts = int(span.attrs.get("attempts", 1))
            attempts_histogram[attempts] = attempts_histogram.get(attempts, 0) + 1
            if top > 0:
                domain = str(span.attrs.get("domain", "(unknown)"))
                site = site_aggregates.get(domain)
                if site is None:
                    site = site_aggregates[domain] = SpanAggregate()
                site.add(span.duration_ms)
        elif span.name == SPAN_ATTEMPT:
            report.attempts += 1
            if span.status == "ok":
                report.attempt_ok_ms += span.duration_ms
            else:
                report.attempt_failed_ms += span.duration_ms

        for event in span.events or []:
            report.event_counts[event.name] = (
                report.event_counts.get(event.name, 0) + 1
            )
            if event.name == EVENT_FAULT:
                fault_type = str(event.attrs.get("fault_type", "unknown"))
                report.faults[fault_type] = report.faults.get(fault_type, 0) + 1
            elif event.name == EVENT_BACKOFF:
                report.retries += 1
                report.backoff_ms += float(event.attrs.get("delay_ms", 0.0))
            elif event.name == EVENT_RECYCLE:
                report.recycles += 1
            elif event.name.startswith(EVENT_BREAKER_PREFIX):
                key = event.name[len(EVENT_BREAKER_PREFIX) :]
                report.breaker_events[key] = (
                    report.breaker_events.get(key, 0) + 1
                )
            elif event.name.startswith(EVENT_BUS_PREFIX):
                key = event.name[len(EVENT_BUS_PREFIX) :]
                report.bus_events[key] = report.bus_events.get(key, 0) + 1
            elif event.name.startswith(EVENT_WATCHDOG_PREFIX):
                key = event.name[len(EVENT_WATCHDOG_PREFIX) :]
                report.watchdog_events[key] = (
                    report.watchdog_events.get(key, 0) + 1
                )
    report.attempts_per_visit = sorted(attempts_histogram.items())
    if top > 0:
        report.top_sites = sorted(
            site_aggregates.items(),
            key=lambda item: (-item[1].total_ms, item[0]),
        )[:top]
        report.top_failure_reasons = sorted(
            failure_counts.items(), key=lambda item: (-item[1], item[0])
        )[:top]
        # Hotspots: per-name *self* time (duration minus the children's
        # durations).  Same fold the profiler performs; kept inline so
        # the report has no dependency on repro.obs.profile.
        children_ms: Dict[int, float] = {}
        for span in spans:
            children_ms[span.parent_id] = (
                children_ms.get(span.parent_id, 0.0) + span.duration_ms
            )
        self_totals: Dict[str, float] = {}
        for span in spans:
            self_totals[span.name] = (
                self_totals.get(span.name, 0.0)
                + span.duration_ms
                - children_ms.get(span.span_id, 0.0)
            )
        report.hotspots = [
            {
                "name": name,
                "self_ms": self_totals[name],
                "total_ms": report.span_totals[name].total_ms,
                "count": report.span_totals[name].count,
            }
            for name in sorted(
                self_totals, key=lambda n: (-self_totals[n], n)
            )[:top]
        ]
    return report
