"""Recombining per-shard observability exports into one serial timeline.

A sharded crawl (:mod:`repro.shard`) runs one supervisor -- with its own
virtual clock, tracer, metrics registry and probe ledger -- per
contiguous block of the population.  Each shard's exports are therefore
a clean *segment*: span ids count from 1, timestamps count from 0.  This
module splices the segments back together so the result is byte-
identical to what a single serial supervisor would have exported:

- **spans**: every shard's root ``crawl`` span is the same region of the
  serial timeline, so shard 0's root survives (re-ended at the total
  duration) and the other roots are dropped; non-root spans are
  renumbered sequentially across shards and their timestamps shifted by
  the preceding shards' total duration.
- **metrics**: counters sum; histograms (same frozen bucket layout) sum
  bucket-wise.
- **ledger entries**: renumbered sequentially, timestamps shifted.

Exactness contract: every supervisor-clock advance lies on a dyadic
grid (config constants plus :data:`repro.faults.recovery.DELAY_GRID_MS`-
quantised backoff), so the float additions here are exact and
associativity cannot bite -- shifting a shard-local timestamp by the
offset reproduces the serial timestamp bit for bit.  The oracle tests
in ``tests/test_shard.py`` assert the resulting bytes literally.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from repro.obs.export import read_trace
from repro.obs.probes import LedgerEntry, read_ledger
from repro.obs.span import Span, SpanEvent


class MergeError(ValueError):
    """Raised when per-shard exports cannot form one serial timeline."""


def shard_durations(shard_spans: Sequence[Sequence[Span]]) -> List[float]:
    """Each shard's total virtual duration, read off its root span.

    Every shard trace must start with a closed root span (``parent_id``
    0) whose timeline starts at 0 -- exactly what a fresh supervisor
    produces.
    """
    durations = []
    for index, spans in enumerate(shard_spans):
        if not spans:
            raise MergeError(f"shard {index}: empty trace")
        root = spans[0]
        if root.parent_id != 0:
            raise MergeError(f"shard {index}: first span is not a root")
        if root.start_ms != 0.0:
            raise MergeError(
                f"shard {index}: root starts at {root.start_ms} ms, not 0"
            )
        if root.end_ms is None:
            raise MergeError(f"shard {index}: root span is still open")
        for span in spans[1:]:
            if span.parent_id == 0:
                raise MergeError(
                    f"shard {index}: multiple root spans "
                    f"(span_id={span.span_id})"
                )
        durations.append(root.end_ms)
    return durations


def _shift_span(
    span: Span, new_id: int, new_parent: int, offset_ms: float
) -> Span:
    shifted = Span(
        new_id, new_parent, span.name, span.start_ms + offset_ms, dict(span.attrs)
    )
    shifted.end_ms = None if span.end_ms is None else span.end_ms + offset_ms
    shifted.status = span.status
    if span.events:
        shifted.events = [
            SpanEvent(event.ts_ms + offset_ms, event.name, dict(event.attrs))
            for event in span.events
        ]
    return shifted


def merge_spans(shard_spans: Sequence[Sequence[Span]]) -> List[Span]:
    """Splice per-shard span lists into one serial trace.

    Shard k's non-root span ``x`` becomes span ``x - 1 + base_k`` where
    ``base_k = 1 + sum(len(shard_j) - 1 for j < k)`` -- the serial
    tracer's sequential numbering; parents pointing at the local root
    (id 1) re-point at the surviving root.  Inputs are not mutated.
    """
    durations = shard_durations(shard_spans)
    total = 0.0
    for duration in durations:
        total += duration
    root = shard_spans[0][0]
    merged_root = _shift_span(root, 1, 0, 0.0)
    merged_root.end_ms = total
    merged: List[Span] = [merged_root]
    base = 1
    offset = 0.0
    for spans, duration in zip(shard_spans, durations):
        for span in spans[1:]:
            if span.span_id < 2:
                raise MergeError("non-root span with reserved id")
            parent = 1 if span.parent_id == 1 else span.parent_id - 1 + base
            merged.append(
                _shift_span(span, span.span_id - 1 + base, parent, offset)
            )
        base += len(spans) - 1
        offset += duration
    return merged


def merge_metrics_states(
    states: Sequence[Dict[str, Any]],
) -> Dict[str, Any]:
    """Sum per-shard :meth:`MetricsRegistry.state_dict` exports.

    Histogram bucket layouts are frozen at import time, so two shards
    disagreeing on bounds means the runs are not mergeable.
    """
    counters: Dict[str, int] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    for state in states:
        for name, value in (state.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, data in (state.get("histograms") or {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    "bounds": list(data["bounds"]),
                    "buckets": list(data["buckets"]),
                    "total": float(data["total"]),
                    "count": int(data["count"]),
                }
                continue
            if merged["bounds"] != list(data["bounds"]):
                raise MergeError(
                    f"histogram {name!r}: bucket bounds differ across shards"
                )
            merged["buckets"] = [
                a + b for a, b in zip(merged["buckets"], data["buckets"])
            ]
            merged["total"] += float(data["total"])
            merged["count"] += int(data["count"])
    return {
        "counters": {name: counters[name] for name in sorted(counters)},
        "histograms": {name: histograms[name] for name in sorted(histograms)},
    }


def merge_ledger_entries(
    shard_entries: Sequence[Sequence[LedgerEntry]],
    durations: Sequence[float],
) -> List[LedgerEntry]:
    """Concatenate per-shard ledgers, renumbering ids and shifting
    timestamps by the preceding shards' durations."""
    if len(shard_entries) != len(durations):
        raise MergeError("one duration per shard ledger required")
    merged: List[LedgerEntry] = []
    next_id = 1
    offset = 0.0
    for entries, duration in zip(shard_entries, durations):
        for entry in entries:
            merged.append(
                LedgerEntry(
                    next_id,
                    entry.ts_ms + offset,
                    entry.scope,
                    entry.obj,
                    entry.op,
                    key=entry.key,
                    via=entry.via,
                    detail=entry.detail,
                )
            )
            next_id += 1
        offset += duration
    return merged


# -- directory loading (``repro.obs report/diff`` on shard dirs) --------------

#: Per-shard artifact names (the executor's ``shard-NNNN.*`` layout).
#: Deliberately narrower than ``*.trace.jsonl``: the shard output
#: directory also holds the *merged* ``crawl.trace.jsonl`` (and the
#: ``--verify`` oracle's ``serial.*``), which must not be re-merged.
TRACE_GLOB = "shard-*.trace.jsonl"
LEDGER_GLOB = "shard-*.ledger.jsonl"


def _shard_files(directory: Path, pattern: str) -> List[Path]:
    files = sorted(directory.glob(pattern))
    if not files:
        raise MergeError(f"{directory}: no {pattern} files to merge")
    return files


def merge_trace_dir(directory: Union[str, Path]) -> List[Span]:
    """Merge a directory of per-shard trace files into one span list.

    Files match ``shard-*.trace.jsonl`` and merge in sorted-name order
    -- the executor's zero-padded ``shard-NNNN.trace.jsonl`` names make
    that the plan order.
    """
    directory = Path(directory)
    shard_spans = [
        read_trace(path) for path in _shard_files(directory, TRACE_GLOB)
    ]
    return merge_spans(shard_spans)


def merge_ledger_dir(directory: Union[str, Path]) -> List[LedgerEntry]:
    """Merge a directory of per-shard ledger files into one entry list.

    Ledger timestamps need each shard's duration, which only the trace
    records -- so the directory must hold the sibling ``*.trace.jsonl``
    files too (the shard executor always writes both).
    """
    directory = Path(directory)
    ledger_files = _shard_files(directory, LEDGER_GLOB)
    trace_files = _shard_files(directory, TRACE_GLOB)
    if len(ledger_files) != len(trace_files):
        raise MergeError(
            f"{directory}: {len(ledger_files)} ledgers but "
            f"{len(trace_files)} traces; cannot pair shards"
        )
    durations = shard_durations([read_trace(path) for path in trace_files])
    return merge_ledger_entries(
        [read_ledger(path) for path in ledger_files], durations
    )
