"""The deterministic profiler: fold a span trace into an accounting.

``build_profile`` answers "where does a crawl spend its virtual-clock
time" from the trace alone: per-span-name **self** time (time inside
the span but outside its children), **total** time, call counts, the
per-visit distribution of each name (exact p50/p95 over the per-visit
totals, nearest-rank -- no averaging, so every reported value is one
that actually occurred), and the **critical path** of the slowest
visit (the greedy heaviest-child chain from the visit span down).

Determinism contract: every number is derived from virtual-clock spans
whose timestamps live on the dyadic grid (see :mod:`repro.obs.merge`),
folded in ``span_id`` order, and serialised with sorted keys and fixed
separators -- so the canonical profile of a same-seed serial run, an
interrupted-then-resumed run, and a ``repro.shard --jobs N`` merged
directory are byte-identical (asserted in ``tests/test_profile.py``).

Dual-clock traces (``Tracer(wall_clock=...)``) additionally carry
wall-time deltas per span; :func:`build_profile` folds them into a
separate ``wall`` section that the canonical serialisation *excludes*
(:func:`profile_to_json` drops it unless asked), preserving the
byte-identity contract while still letting a human compare virtual
attribution against measured wall cost.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.obs.report import SPAN_VISIT
from repro.obs.span import Span

_SEPARATORS = (",", ":")

#: Bumped when the canonical profile layout changes.
PROFILE_SCHEMA = "repro.obs.profile/1"


def nearest_rank(sorted_values: Sequence[float], q: float) -> float:
    """The q-quantile by the nearest-rank rule over sorted values.

    Always returns an element of ``sorted_values`` (never an average),
    so quantiles of dyadic-grid durations stay exactly representable
    and byte-stable.  Empty input reports 0.0.
    """
    if not 0.0 < q <= 1.0:
        raise ValueError("q must be in (0, 1]")
    if not sorted_values:
        return 0.0
    return sorted_values[math.ceil(q * len(sorted_values)) - 1]


def _children_map(spans: Sequence[Span]) -> Dict[int, List[Span]]:
    children: Dict[int, List[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    return children


def _duration(span: Span) -> float:
    return 0.0 if span.end_ms is None else span.end_ms - span.start_ms


def build_profile(
    spans: Sequence[Span], include_wall: bool = False
) -> Dict[str, Any]:
    """Fold a trace into the profile dict (see the module docstring).

    ``include_wall`` adds a ``wall`` section with per-name wall-time
    totals when the trace carries dual-clock deltas; it is excluded
    from the canonical serialisation either way.
    """
    children = _children_map(spans)
    names: Dict[str, Dict[str, Any]] = {}
    wall: Dict[str, Dict[str, float]] = {}
    total_ms = 0.0
    for span in spans:
        duration = _duration(span)
        if span.parent_id == 0:
            total_ms += duration
        child_ms = 0.0
        for child in children.get(span.span_id, ()):
            child_ms += _duration(child)
        entry = names.get(span.name)
        if entry is None:
            entry = names[span.name] = {
                "count": 0,
                "total_ms": 0.0,
                "self_ms": 0.0,
                "max_ms": 0.0,
            }
        entry["count"] += 1
        entry["total_ms"] += duration
        entry["self_ms"] += duration - child_ms
        if duration > entry["max_ms"]:
            entry["max_ms"] = duration
        if include_wall and span.wall_ms is not None:
            wall_entry = wall.get(span.name)
            if wall_entry is None:
                wall_entry = wall[span.name] = {"count": 0, "wall_ms": 0.0}
            wall_entry["count"] += 1
            wall_entry["wall_ms"] += span.wall_ms

    visits = [span for span in spans if span.name == SPAN_VISIT]
    per_visit: Dict[str, List[float]] = {}
    for visit in visits:
        totals: Dict[str, float] = {}
        stack = [visit]
        while stack:
            node = stack.pop()
            totals[node.name] = totals.get(node.name, 0.0) + _duration(node)
            stack.extend(children.get(node.span_id, ()))
        for name, value in totals.items():
            per_visit.setdefault(name, []).append(value)
    for name, entry in names.items():
        values = sorted(per_visit.get(name, ()))
        entry["per_visit"] = {
            "visits": len(values),
            "p50_ms": nearest_rank(values, 0.50),
            "p95_ms": nearest_rank(values, 0.95),
        }

    profile: Dict[str, Any] = {
        "schema": PROFILE_SCHEMA,
        "total_ms": total_ms,
        "span_count": len(spans),
        "visits": len(visits),
        "names": names,
        "critical_path": _critical_path(visits, children),
    }
    if include_wall and wall:
        profile["wall"] = wall
    return profile


def _critical_path(
    visits: Sequence[Span], children: Dict[int, List[Span]]
) -> Optional[Dict[str, Any]]:
    """The greedy heaviest-child chain through the slowest visit.

    Ties break towards the smaller ``span_id`` (start order), keeping
    the path deterministic even when two subtrees cost the same.
    """
    slowest: Optional[Span] = None
    for visit in visits:
        if slowest is None or _duration(visit) > _duration(slowest):
            slowest = visit
    if slowest is None:
        return None
    path = []
    node = slowest
    while True:
        kids = children.get(node.span_id, [])
        child_ms = 0.0
        for child in kids:
            child_ms += _duration(child)
        path.append(
            {
                "name": node.name,
                "span_id": node.span_id,
                "total_ms": _duration(node),
                "self_ms": _duration(node) - child_ms,
            }
        )
        if not kids:
            break
        heaviest = kids[0]
        for child in kids[1:]:
            if _duration(child) > _duration(heaviest):
                heaviest = child
        node = heaviest
    return {
        "domain": str(slowest.attrs.get("domain", "(unknown)")),
        "duration_ms": _duration(slowest),
        "path": path,
    }


# -- serialisation ------------------------------------------------------------


def profile_to_json(profile: Dict[str, Any], include_wall: bool = False) -> str:
    """The profile as canonical JSON (sorted keys, fixed separators).

    The ``wall`` section is dropped unless ``include_wall=True``: wall
    deltas are machine noise, and the canonical bytes must match across
    same-seed serial, resumed and sharded runs.
    """
    data = profile if include_wall else {
        key: value for key, value in profile.items() if key != "wall"
    }
    return (
        json.dumps(data, sort_keys=True, separators=_SEPARATORS) + "\n"
    )


def write_profile(
    path: Union[str, Path],
    profile: Dict[str, Any],
    include_wall: bool = False,
) -> Path:
    """Write the canonical profile JSON; returns the path written."""
    path = Path(path)
    path.write_text(profile_to_json(profile, include_wall=include_wall))
    return path


# -- hotspots and deltas ------------------------------------------------------


def hotspots(profile: Dict[str, Any], top: int = 10) -> List[Dict[str, Any]]:
    """The ``top`` span names by self time, heaviest first.

    Ties break by name so the ranking is deterministic; ``top <= 0``
    returns every name.
    """
    ranked = sorted(
        profile["names"].items(),
        key=lambda item: (-item[1]["self_ms"], item[0]),
    )
    if top > 0:
        ranked = ranked[:top]
    return [
        {
            "name": name,
            "self_ms": entry["self_ms"],
            "total_ms": entry["total_ms"],
            "count": entry["count"],
        }
        for name, entry in ranked
    ]


def profile_delta(
    profile_a: Dict[str, Any], profile_b: Dict[str, Any]
) -> List[Dict[str, Any]]:
    """Per-span-name self-time deltas between two profiles.

    Sorted by absolute self-time delta (largest first, name
    tie-break); names missing from one side count as zero there.  The
    ``ratio`` is ``b / a`` self time (``None`` when ``a`` is zero).
    """
    names = sorted(set(profile_a["names"]) | set(profile_b["names"]))
    deltas = []
    for name in names:
        self_a = profile_a["names"].get(name, {}).get("self_ms", 0.0)
        self_b = profile_b["names"].get(name, {}).get("self_ms", 0.0)
        deltas.append(
            {
                "name": name,
                "self_ms_a": self_a,
                "self_ms_b": self_b,
                "delta_ms": self_b - self_a,
                "ratio": (self_b / self_a) if self_a else None,
            }
        )
    deltas.sort(key=lambda d: (-abs(d["delta_ms"]), d["name"]))
    return deltas


# -- rendering ----------------------------------------------------------------


def render_profile_text(profile: Dict[str, Any], top: int = 10) -> str:
    """A human-readable profile: hotspots table + critical path."""
    lines = ["crawl profile", "============="]
    lines.append(f"{'total (virtual clock)':28s} {profile['total_ms']:14.1f} ms")
    lines.append(f"{'spans':28s} {profile['span_count']:14d}")
    lines.append(f"{'visits':28s} {profile['visits']:14d}")
    lines.append("")
    ranked = hotspots(profile, top=top)
    lines.append(f"hotspots by self time (top {len(ranked)})")
    header = (
        f"  {'span name':26s} {'count':>8s} {'self ms':>14s} "
        f"{'total ms':>14s} {'p50/visit':>12s} {'p95/visit':>12s}"
    )
    lines.append(header)
    for spot in ranked:
        entry = profile["names"][spot["name"]]
        per_visit = entry["per_visit"]
        lines.append(
            f"  {spot['name']:26s} {spot['count']:8d} "
            f"{spot['self_ms']:14.1f} {spot['total_ms']:14.1f} "
            f"{per_visit['p50_ms']:12.1f} {per_visit['p95_ms']:12.1f}"
        )
    wall = profile.get("wall")
    if wall:
        lines.append("")
        lines.append("wall-time totals (dual-clock trace; not canonical)")
        for name in sorted(wall):
            entry = wall[name]
            lines.append(
                f"  {name:26s} {entry['count']:8d} {entry['wall_ms']:14.1f} ms"
            )
    critical = profile.get("critical_path")
    if critical:
        lines.append("")
        lines.append(
            f"critical path of the slowest visit "
            f"({critical['domain']}, {critical['duration_ms']:.1f} ms)"
        )
        for depth, step in enumerate(critical["path"]):
            indent = "  " * (depth + 1)
            lines.append(
                f"{indent}{step['name']}  total {step['total_ms']:.1f} ms  "
                f"self {step['self_ms']:.1f} ms"
            )
    return "\n".join(lines) + "\n"


def render_delta_text(
    deltas: List[Dict[str, Any]], top: int = 10
) -> str:
    """Hotspot deltas between two runs, largest movement first."""
    lines = ["hotspot deltas (self time, b - a)"]
    shown = deltas[:top] if top > 0 else deltas
    for delta in shown:
        ratio = delta["ratio"]
        ratio_text = f"{ratio:8.2f}x" if ratio is not None else "     new"
        lines.append(
            f"  {delta['name']:26s} {delta['self_ms_a']:14.1f} -> "
            f"{delta['self_ms_b']:14.1f} ms  ({delta['delta_ms']:+12.1f} ms, "
            f"{ratio_text})"
        )
    if not shown:
        lines.append("  (no spans on either side)")
    return "\n".join(lines) + "\n"
