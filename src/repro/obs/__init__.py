"""``repro.obs``: deterministic observability for the crawl stack.

Spans (a per-visit tree over the virtual clock), a metrics registry
(counters + fixed-bucket histograms), byte-stable JSONL trace export,
an aggregate crawl report, the probe ledger (detection-surface tracing
in the JS object model), diff/attribution tooling over the exports, a
deterministic profiler (self/total time, per-visit percentiles,
critical paths, speedscope/chrome-trace flame exports), and the
benchmark-history regression gate (``BENCH_HISTORY.jsonl`` +
``python -m repro.obs bench check``) -- all seed- and
clock-deterministic, so traces, ledgers and canonical profiles are
byte-identical across identical runs, across interrupt/resume, and
across sharded execution (docs/OBSERVABILITY.md).

The motivating literature: Krumnow et al. show unobserved crawler-side
behaviour silently biases crawl statistics; this package makes every
supervised visit's timeline observable without breaking the
reproduction's determinism contract.
"""

from repro.obs.attribute import (
    AttributionReport,
    build_attribution,
    record_table1_ledger,
)
from repro.obs.bench import (
    BenchCheckResult,
    BenchError,
    MetricCheck,
    append_history,
    baseline_values,
    check_bench_files,
    check_metrics,
    flatten_bench,
    load_bench_values,
    metric_direction,
    read_history,
)
from repro.obs.flame import (
    chrome_trace_document,
    speedscope_document,
    write_chrome_trace,
    write_speedscope,
)
from repro.obs.profile import (
    build_profile,
    hotspots,
    nearest_rank,
    profile_delta,
    profile_to_json,
    render_delta_text,
    render_profile_text,
    write_profile,
)
from repro.obs.diff import ExportDiff, diff_exports
from repro.obs.merge import (
    MergeError,
    merge_ledger_dir,
    merge_ledger_entries,
    merge_metrics_states,
    merge_spans,
    merge_trace_dir,
    shard_durations,
)
from repro.obs.export import (
    parse_trace,
    read_trace,
    span_to_json,
    trace_to_jsonl,
    write_trace,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    NULL_METRICS,
)
from repro.obs.probes import (
    LedgerEntry,
    ProbeLedger,
    instrument,
    instrument_window,
    ledger_to_jsonl,
    parse_ledger,
    read_ledger,
    write_ledger,
)
from repro.obs.report import CrawlReport, SpanAggregate, build_report
from repro.obs.span import Span, SpanEvent
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Span",
    "SpanEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "span_to_json",
    "trace_to_jsonl",
    "write_trace",
    "parse_trace",
    "read_trace",
    "CrawlReport",
    "SpanAggregate",
    "build_report",
    "LedgerEntry",
    "ProbeLedger",
    "instrument",
    "instrument_window",
    "ledger_to_jsonl",
    "parse_ledger",
    "read_ledger",
    "write_ledger",
    "ExportDiff",
    "diff_exports",
    "MergeError",
    "merge_spans",
    "merge_metrics_states",
    "merge_ledger_entries",
    "merge_trace_dir",
    "merge_ledger_dir",
    "shard_durations",
    "AttributionReport",
    "build_attribution",
    "record_table1_ledger",
    "build_profile",
    "hotspots",
    "nearest_rank",
    "profile_delta",
    "profile_to_json",
    "render_delta_text",
    "render_profile_text",
    "write_profile",
    "chrome_trace_document",
    "speedscope_document",
    "write_chrome_trace",
    "write_speedscope",
    "BenchCheckResult",
    "BenchError",
    "MetricCheck",
    "append_history",
    "baseline_values",
    "check_bench_files",
    "check_metrics",
    "flatten_bench",
    "load_bench_values",
    "metric_direction",
    "read_history",
]
