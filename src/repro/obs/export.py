"""Byte-stable trace serialisation: JSONL out, JSONL in.

One JSON object per line, one line per span, in ``span_id`` (= start)
order, with sorted keys and minimal separators.  Because every value in
a span derives from the seed and the virtual clock, two crawls with the
same seed -- or one interrupted-and-resumed crawl and its uninterrupted
twin -- serialise to the same bytes, which the tests assert literally.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.obs.span import Span

_SEPARATORS = (",", ":")


def span_to_json(span: Span, dual: bool = False) -> str:
    """One span as a canonical single-line JSON object.

    ``dual=True`` additionally carries the span's wall-time delta when
    the tracer ran in dual-clock mode (``Tracer(wall_clock=...)``).
    Dual output is for human inspection only: wall deltas are machine
    noise, so everything byte-compared across runs uses the default.
    """
    data = span.to_dict_dual() if dual else span.to_dict()
    return json.dumps(data, sort_keys=True, separators=_SEPARATORS)


def trace_to_jsonl(spans: Iterable[Span], dual: bool = False) -> str:
    """The whole trace as canonical JSONL (trailing newline included)."""
    lines = [span_to_json(span, dual=dual) for span in spans]
    return "\n".join(lines) + "\n" if lines else ""


def write_trace(
    path: Union[str, Path], spans: Iterable[Span], dual: bool = False
) -> Path:
    """Write a JSONL trace file; returns the path written."""
    path = Path(path)
    path.write_text(trace_to_jsonl(spans, dual=dual))
    return path


def parse_trace(text: str) -> List[Span]:
    """Parse a JSONL trace back into spans (inverse of
    :func:`trace_to_jsonl`)."""
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


def read_trace(path: Union[str, Path]) -> List[Span]:
    """Read a JSONL trace file written by :func:`write_trace`."""
    return parse_trace(Path(path).read_text())
