"""``python -m repro.obs`` -- read traces and ledgers, print analyses.

Usage::

    python -m repro.obs report trace.jsonl            # text report
    python -m repro.obs report trace.jsonl --format json --top 10
    python -m repro.obs profile traces/ --speedscope out.json
    python -m repro.obs diff a.jsonl b.jsonl          # exit 0 iff identical
    python -m repro.obs diff a.jsonl b.jsonl --profile # + hotspot deltas
    python -m repro.obs bench record --baseline
    python -m repro.obs bench check --tolerance 0.15  # exit 1 on regression
    python -m repro.obs attribute table1.ledger.jsonl
    python -m repro.obs attribute spoofed.ledger.jsonl vanilla.ledger.jsonl

``report`` aggregates the JSONL trace written by
``CrawlSupervisor.crawl(..., trace_path=...)``.  ``profile`` folds a
trace into the deterministic profiler's accounting -- per-span-name
self/total time, per-visit percentiles, the slowest visit's critical
path -- and optionally exports speedscope / chrome-trace files for
human inspection.  ``diff`` compares two exports of the same kind
(traces or probe ledgers) record by record and uses ``diff(1)`` exit
semantics: 0 identical, 1 different, 2 on error.  All three accept a
*directory* of per-shard exports (``repro.shard`` output): the shards
are merged onto the serial timeline first, so ``report``/``profile``
summarise the whole sharded crawl and ``diff shard-dir serial.jsonl``
asserts the sharded bytes equal the serial ones.
``bench`` maintains the append-only ``BENCH_HISTORY.jsonl`` over the
``BENCH_*.json`` benchmark outputs and gates regressions against the
recorded baseline (``check`` exits 1 past tolerance).
``attribute`` reconstructs the paper's Table 1 -- method x side effect
x culprit accesses -- from probe-ledger data alone; the optional second
file supplies a vanilla baseline when the ledger has no in-file
``method:0:vanilla`` group.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.obs.attribute import build_attribution
from repro.obs.bench import (
    DEFAULT_BENCH_FILES,
    DEFAULT_HISTORY,
    DEFAULT_TOLERANCE,
    BenchError,
    append_history,
    check_bench_files,
)
from repro.obs.diff import ExportKindError, diff_exports
from repro.obs.export import read_trace
from repro.obs.flame import write_chrome_trace, write_speedscope
from repro.obs.merge import MergeError, merge_spans, merge_trace_dir
from repro.obs.probes import read_ledger
from repro.obs.profile import (
    build_profile,
    profile_delta,
    profile_to_json,
    render_delta_text,
    render_profile_text,
)
from repro.obs.report import build_report


def _add_output_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write the output here instead of stdout",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description=(
            "Deterministic crawl observability: trace reports, export "
            "diffs, probe-ledger attribution."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    report = subparsers.add_parser(
        "report", help="aggregate a JSONL trace into a crawl report"
    )
    report.add_argument(
        "trace",
        help="JSONL trace file, or a directory of per-shard "
        "*.trace.jsonl files (merged before reporting)",
    )
    report.add_argument(
        "--top",
        type=int,
        default=0,
        metavar="N",
        help="also rank the N slowest sites, most frequent failure "
        "reasons and hotspot span names (default: off)",
    )
    report.add_argument(
        "--profile",
        action="store_true",
        help="append the full deterministic profile (per-visit "
        "percentiles, critical path) to the report",
    )
    _add_output_arguments(report)

    profile = subparsers.add_parser(
        "profile",
        help="fold a trace into the deterministic profiler's accounting",
    )
    profile.add_argument(
        "trace",
        help="JSONL trace file, or a directory of per-shard "
        "*.trace.jsonl files (merged before profiling)",
    )
    profile.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="hotspot rows in text output (default: 10; 0 = all)",
    )
    profile.add_argument(
        "--speedscope",
        default=None,
        metavar="PATH",
        help="also write a speedscope file (open at speedscope.app)",
    )
    profile.add_argument(
        "--chrome",
        default=None,
        metavar="PATH",
        help="also write a chrome-trace file (chrome://tracing, Perfetto)",
    )
    profile.add_argument(
        "--wall",
        action="store_true",
        help="include wall-time deltas from a dual-clock trace "
        "(output is then NOT canonical / byte-comparable)",
    )
    _add_output_arguments(profile)

    bench = subparsers.add_parser(
        "bench",
        help="benchmark history (BENCH_HISTORY.jsonl) and regression gate",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    for name, text in (
        ("record", "append the current BENCH_*.json values to the history"),
        ("check", "gate the current BENCH_*.json values against the "
                  "recorded baseline; exit 1 past tolerance"),
    ):
        sub = bench_sub.add_parser(name, help=text)
        sub.add_argument(
            "bench_files",
            nargs="*",
            default=None,
            metavar="BENCH.json",
            help="bench files to read (default: the committed "
            "BENCH_crawl/hlisa/lint.json that exist)",
        )
        sub.add_argument(
            "--history",
            default=DEFAULT_HISTORY,
            metavar="PATH",
            help=f"history file (default: {DEFAULT_HISTORY})",
        )
        if name == "record":
            sub.add_argument(
                "--baseline",
                action="store_true",
                help="record as the gate's baseline instead of a sample "
                "(the last baseline per metric wins)",
            )
            sub.add_argument(
                "--label",
                default="",
                help="free-form label stored on every appended record",
            )
        else:
            sub.add_argument(
                "--tolerance",
                type=float,
                default=DEFAULT_TOLERANCE,
                metavar="FRAC",
                help="relative regression tolerance "
                f"(default: {DEFAULT_TOLERANCE})",
            )
            _add_output_arguments(sub)

    diff = subparsers.add_parser(
        "diff",
        help="compare two JSONL exports (traces or ledgers); "
        "exit 0 iff identical",
    )
    diff.add_argument("a", help="first export (file or per-shard directory)")
    diff.add_argument("b", help="second export (file or per-shard directory)")
    diff.add_argument(
        "--kind",
        choices=("auto", "trace", "ledger"),
        default="auto",
        help="which exports to merge from a per-shard directory holding "
        "both kinds (default: auto = prefer traces)",
    )
    diff.add_argument(
        "--limit",
        type=int,
        default=20,
        metavar="N",
        help="cap per-section detail lines in text output (0 = no cap)",
    )
    diff.add_argument(
        "--profile",
        action="store_true",
        help="also profile both traces and show per-span-name hotspot "
        "deltas (traces only)",
    )
    _add_output_arguments(diff)

    attribute = subparsers.add_parser(
        "attribute",
        help="reconstruct Table 1 (method x side effect x culprit "
        "accesses) from a probe ledger",
    )
    attribute.add_argument("ledger", help="probe-ledger JSONL file")
    attribute.add_argument(
        "baseline",
        nargs="?",
        default=None,
        help="optional vanilla-run ledger used as the baseline when the "
        "main ledger has no method:0:vanilla group",
    )
    _add_output_arguments(attribute)

    return parser


def _emit(rendered: str, out: Optional[str]) -> None:
    if out is not None:
        Path(out).write_text(rendered)
    else:
        sys.stdout.write(rendered)


def _require(path_str: str, what: str) -> Optional[Path]:
    path = Path(path_str)
    if not path.exists():
        print(f"error: no such {what} file: {path}", file=sys.stderr)
        return None
    return path


def _load_spans(trace_path: Path):
    """Spans from a trace file or a directory of traces.

    Directories prefer the sharded layout (``shard-*.trace.jsonl``,
    merged byte-exactly onto the serial timeline); otherwise any
    ``*.trace.jsonl`` files (e.g. ``examples/field_study.py`` output)
    are spliced end to end in sorted-name order.
    """
    if not trace_path.is_dir():
        return read_trace(trace_path)
    try:
        return merge_trace_dir(trace_path)
    except MergeError:
        files = sorted(trace_path.glob("*.trace.jsonl"))
        if not files:
            raise
        return merge_spans([read_trace(path) for path in files])


def _run_report(args: argparse.Namespace) -> int:
    trace_path = _require(args.trace, "trace")
    if trace_path is None:
        return 1
    try:
        spans = _load_spans(trace_path)
    except (MergeError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    report = build_report(spans, top=args.top)
    if args.format == "json":
        rendered = report.render_json()
        if args.profile:
            data = report.to_dict()
            data["profile"] = build_profile(spans)
            rendered = json.dumps(data, sort_keys=True, indent=2) + "\n"
    else:
        rendered = report.render_text()
        if args.profile:
            top = args.top if args.top > 0 else 10
            rendered += "\n" + render_profile_text(
                build_profile(spans), top=top
            )
    _emit(rendered, args.out)
    return 0


def _run_profile(args: argparse.Namespace) -> int:
    trace_path = _require(args.trace, "trace")
    if trace_path is None:
        return 1
    try:
        spans = _load_spans(trace_path)
    except (MergeError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    profile = build_profile(spans, include_wall=args.wall)
    if args.speedscope is not None:
        write_speedscope(args.speedscope, spans)
    if args.chrome is not None:
        write_chrome_trace(args.chrome, spans)
    rendered = (
        profile_to_json(profile, include_wall=args.wall)
        if args.format == "json"
        else render_profile_text(profile, top=args.top)
    )
    _emit(rendered, args.out)
    return 0


def _default_bench_files(args: argparse.Namespace) -> List[Path]:
    if args.bench_files:
        return [Path(p) for p in args.bench_files]
    return [Path(name) for name in DEFAULT_BENCH_FILES if Path(name).exists()]


def _run_bench(args: argparse.Namespace) -> int:
    bench_files = _default_bench_files(args)
    if not bench_files:
        print(
            "error: no BENCH_*.json files found (pass them explicitly)",
            file=sys.stderr,
        )
        return 2
    if args.bench_command == "record":
        try:
            records = append_history(
                args.history,
                bench_files,
                kind="baseline" if args.baseline else "sample",
                label=args.label,
            )
        except BenchError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        kind = "baseline" if args.baseline else "sample"
        print(
            f"recorded {len(records)} {kind} metric(s) from "
            f"{len(bench_files)} file(s) to {args.history}"
        )
        return 0
    try:
        result = check_bench_files(
            bench_files, history_path=args.history, tolerance=args.tolerance
        )
    except BenchError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    rendered = (
        result.render_json()
        if args.format == "json"
        else result.render_text()
    )
    _emit(rendered, args.out)
    return 0 if result.passed else 1


def _run_diff(args: argparse.Namespace) -> int:
    path_a = _require(args.a, "export")
    path_b = _require(args.b, "export")
    if path_a is None or path_b is None:
        return 2
    try:
        result = diff_exports(path_a, path_b, kind=args.kind)
    except (ExportKindError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.profile and result.kind != "trace":
        print("error: --profile only applies to trace diffs", file=sys.stderr)
        return 2
    rendered = (
        result.render_json() + "\n"
        if args.format == "json"
        else result.render_text(limit=args.limit)
    )
    if args.profile:
        try:
            deltas = profile_delta(
                build_profile(_load_spans(path_a)),
                build_profile(_load_spans(path_b)),
            )
        except (MergeError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if args.format == "json":
            data = result.to_dict()
            data["profile_delta"] = deltas
            rendered = json.dumps(data, sort_keys=True, indent=2) + "\n"
        else:
            rendered += "\n" + render_delta_text(deltas, top=args.limit)
    _emit(rendered, args.out)
    return 0 if result.identical else 1


def _run_attribute(args: argparse.Namespace) -> int:
    ledger_path = _require(args.ledger, "ledger")
    if ledger_path is None:
        return 1
    baseline = None
    if args.baseline is not None:
        baseline_path = _require(args.baseline, "baseline ledger")
        if baseline_path is None:
            return 1
        baseline = read_ledger(baseline_path)
    report = build_attribution(read_ledger(ledger_path), baseline)
    rendered = (
        report.render_json() + "\n"
        if args.format == "json"
        else report.render_text()
    )
    _emit(rendered, args.out)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "report":
        return _run_report(args)
    if args.command == "profile":
        return _run_profile(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "diff":
        return _run_diff(args)
    return _run_attribute(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
