"""``python -m repro.obs`` -- read traces and ledgers, print analyses.

Usage::

    python -m repro.obs report trace.jsonl            # text report
    python -m repro.obs report trace.jsonl --format json --top 10
    python -m repro.obs diff a.jsonl b.jsonl          # exit 0 iff identical
    python -m repro.obs attribute table1.ledger.jsonl
    python -m repro.obs attribute spoofed.ledger.jsonl vanilla.ledger.jsonl

``report`` aggregates the JSONL trace written by
``CrawlSupervisor.crawl(..., trace_path=...)``.  ``diff`` compares two
exports of the same kind (traces or probe ledgers) record by record and
uses ``diff(1)`` exit semantics: 0 identical, 1 different, 2 on error.
Both accept a *directory* of per-shard exports (``repro.shard`` output):
the shards are merged onto the serial timeline first, so ``report``
summarises the whole sharded crawl and ``diff shard-dir serial.jsonl``
asserts the sharded bytes equal the serial ones.
``attribute`` reconstructs the paper's Table 1 -- method x side effect
x culprit accesses -- from probe-ledger data alone; the optional second
file supplies a vanilla baseline when the ledger has no in-file
``method:0:vanilla`` group.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.obs.attribute import build_attribution
from repro.obs.diff import ExportKindError, diff_exports
from repro.obs.export import read_trace
from repro.obs.merge import MergeError, merge_trace_dir
from repro.obs.probes import read_ledger
from repro.obs.report import build_report


def _add_output_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write the output here instead of stdout",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description=(
            "Deterministic crawl observability: trace reports, export "
            "diffs, probe-ledger attribution."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    report = subparsers.add_parser(
        "report", help="aggregate a JSONL trace into a crawl report"
    )
    report.add_argument(
        "trace",
        help="JSONL trace file, or a directory of per-shard "
        "*.trace.jsonl files (merged before reporting)",
    )
    report.add_argument(
        "--top",
        type=int,
        default=0,
        metavar="N",
        help="also rank the N slowest sites and most frequent failure "
        "reasons (default: off)",
    )
    _add_output_arguments(report)

    diff = subparsers.add_parser(
        "diff",
        help="compare two JSONL exports (traces or ledgers); "
        "exit 0 iff identical",
    )
    diff.add_argument("a", help="first export (file or per-shard directory)")
    diff.add_argument("b", help="second export (file or per-shard directory)")
    diff.add_argument(
        "--kind",
        choices=("auto", "trace", "ledger"),
        default="auto",
        help="which exports to merge from a per-shard directory holding "
        "both kinds (default: auto = prefer traces)",
    )
    diff.add_argument(
        "--limit",
        type=int,
        default=20,
        metavar="N",
        help="cap per-section detail lines in text output (0 = no cap)",
    )
    _add_output_arguments(diff)

    attribute = subparsers.add_parser(
        "attribute",
        help="reconstruct Table 1 (method x side effect x culprit "
        "accesses) from a probe ledger",
    )
    attribute.add_argument("ledger", help="probe-ledger JSONL file")
    attribute.add_argument(
        "baseline",
        nargs="?",
        default=None,
        help="optional vanilla-run ledger used as the baseline when the "
        "main ledger has no method:0:vanilla group",
    )
    _add_output_arguments(attribute)

    return parser


def _emit(rendered: str, out: Optional[str]) -> None:
    if out is not None:
        Path(out).write_text(rendered)
    else:
        sys.stdout.write(rendered)


def _require(path_str: str, what: str) -> Optional[Path]:
    path = Path(path_str)
    if not path.exists():
        print(f"error: no such {what} file: {path}", file=sys.stderr)
        return None
    return path


def _run_report(args: argparse.Namespace) -> int:
    trace_path = _require(args.trace, "trace")
    if trace_path is None:
        return 1
    try:
        spans = (
            merge_trace_dir(trace_path)
            if trace_path.is_dir()
            else read_trace(trace_path)
        )
    except (MergeError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    report = build_report(spans, top=args.top)
    rendered = (
        report.render_json() if args.format == "json" else report.render_text()
    )
    _emit(rendered, args.out)
    return 0


def _run_diff(args: argparse.Namespace) -> int:
    path_a = _require(args.a, "export")
    path_b = _require(args.b, "export")
    if path_a is None or path_b is None:
        return 2
    try:
        result = diff_exports(path_a, path_b, kind=args.kind)
    except (ExportKindError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    rendered = (
        result.render_json() + "\n"
        if args.format == "json"
        else result.render_text(limit=args.limit)
    )
    _emit(rendered, args.out)
    return 0 if result.identical else 1


def _run_attribute(args: argparse.Namespace) -> int:
    ledger_path = _require(args.ledger, "ledger")
    if ledger_path is None:
        return 1
    baseline = None
    if args.baseline is not None:
        baseline_path = _require(args.baseline, "baseline ledger")
        if baseline_path is None:
            return 1
        baseline = read_ledger(baseline_path)
    report = build_attribution(read_ledger(ledger_path), baseline)
    rendered = (
        report.render_json() + "\n"
        if args.format == "json"
        else report.render_text()
    )
    _emit(rendered, args.out)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "report":
        return _run_report(args)
    if args.command == "diff":
        return _run_diff(args)
    return _run_attribute(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
