"""``python -m repro.obs`` -- read traces, print crawl reports.

Usage::

    python -m repro.obs report trace.jsonl            # text report
    python -m repro.obs report trace.jsonl --format json
    python -m repro.obs report trace.jsonl --out report.json --format json

The trace is the JSONL file written by ``CrawlSupervisor.crawl(...,
trace_path=...)`` (or :func:`repro.obs.export.write_trace`).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.obs.export import read_trace
from repro.obs.report import build_report


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="Deterministic crawl observability: trace reports.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    report = subparsers.add_parser(
        "report", help="aggregate a JSONL trace into a crawl report"
    )
    report.add_argument("trace", help="path to the JSONL trace file")
    report.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    report.add_argument(
        "--out",
        default=None,
        help="write the report here instead of stdout",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    trace_path = Path(args.trace)
    if not trace_path.exists():
        print(f"error: no such trace file: {trace_path}", file=sys.stderr)
        return 1
    report = build_report(read_trace(trace_path))
    rendered = (
        report.render_json() if args.format == "json" else report.render_text()
    )
    if args.out is not None:
        Path(args.out).write_text(rendered)
    else:
        sys.stdout.write(rendered)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
