"""The deterministic tracer: builds the per-crawl span tree.

Design constraints, in order:

1. **Determinism** -- span ids are sequential integers, timestamps come
   from the shared :class:`~repro.clock.VirtualClock`, and no global
   state exists, so two runs with the same seed produce byte-identical
   traces.
2. **Resumability** -- :meth:`Tracer.state_dict` /
   :meth:`Tracer.load_state` round-trip the full tracer (finished spans,
   the open-span stack, the id counter), and
   :meth:`Tracer.resume_or_start` re-enters a checkpointed root span, so
   an interrupted-then-resumed crawl's trace equals an uninterrupted
   one's.
3. **Bounded overhead** -- hot paths use explicit ``start``/``end``
   pairs (no generator-based context manager per WebDriver command) and
   the :data:`NULL_TRACER` keeps untraced code at one attribute check.

The tracer deliberately holds a *reference* to the supervisor's clock
rather than a copy: checkpoint resume must advance that one shared
clock in place (see ``CrawlSupervisor._load_checkpoint``), never rebind
it, or the tracer would keep stamping spans from a stale timeline.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.clock import VirtualClock
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.span import Span


class Tracer:
    """Seed- and clock-deterministic span recorder.

    Spans are stored in start order (== ``span_id`` order) and finished
    in strict LIFO discipline: :meth:`end` must receive the innermost
    open span.  Events attach to the innermost open span.
    """

    #: Real tracers record; the shared :data:`NULL_TRACER` does not.
    enabled = True

    def __init__(
        self,
        clock: VirtualClock,
        metrics: Optional[MetricsRegistry] = None,
        wall_clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Opt-in dual-clock mode: a *seconds*-returning monotonic
        #: callable (``time.perf_counter`` from the caller's side) that
        #: stamps each span with its wall-time cost next to the virtual
        #: duration.  Wall deltas never enter the canonical export or
        #: the checkpoint state -- they are machine noise by definition
        #: -- so byte-identity of traces and profiles is unaffected.
        self.wall_clock = wall_clock
        self._spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1

    # -- recording -------------------------------------------------------

    def start(self, name: str, **attrs: Any) -> Span:
        """Open a span as a child of the innermost open span."""
        stack = self._stack
        span = Span(
            self._next_id,
            stack[-1].span_id if stack else 0,
            name,
            self.clock.now(),
            attrs,
        )
        self._next_id += 1
        self._spans.append(span)
        stack.append(span)
        if self.wall_clock is not None:
            span._wall_start = self.wall_clock()
        return span

    def end(self, span: Span) -> Span:
        """Close ``span``; it must be the innermost open span."""
        if not self._stack or self._stack[-1] is not span:
            raise ValueError(
                f"span {span.name!r} is not the innermost open span"
            )
        self._stack.pop()
        span.end_ms = self.clock.now()
        if self.wall_clock is not None and span._wall_start is not None:
            span.wall_ms = (self.wall_clock() - span._wall_start) * 1_000.0
        return span

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Context-managed span; marks status on exceptions."""
        span = self.start(name, **attrs)
        try:
            yield span
        except BaseException as exc:
            span.status = f"error:{type(exc).__name__}"
            raise
        finally:
            self.end(span)

    def event(self, name: str, **attrs: Any) -> None:
        """Attach a point-in-time event to the innermost open span.

        Dropped silently when no span is open: events describe work, and
        all instrumented work runs inside a span.
        """
        if self._stack:
            self._stack[-1].add_event(self.clock.now(), name, attrs)

    def resume_or_start(self, name: str, **attrs: Any) -> Span:
        """Re-enter a checkpointed root span, or open a fresh one.

        Three cases, in order:

        - an open root span of this name was restored (mid-crawl
          checkpoint): continue it;
        - a *closed* root span of this name was restored (the checkpoint
          was written at crawl end): reopen it, so re-running over the
          same or a grown population extends one timeline instead of
          forking a second root;
        - otherwise start a new root span.
        """
        if self._stack:
            root = self._stack[0]
            if root.name == name:
                return root
        for span in self._spans:
            if span.parent_id == 0 and span.name == name:
                if not span.open:
                    span.end_ms = None
                    self._stack.insert(0, span)
                return span
        return self.start(name, **attrs)

    # -- inspection ------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        """All spans, in start order (finished and still-open)."""
        return list(self._spans)

    @property
    def open_spans(self) -> List[Span]:
        """The open-span stack, outermost first."""
        return list(self._stack)

    # -- checkpoint state ------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot of the full tracer."""
        return {
            "next_id": self._next_id,
            "open": [span.span_id for span in self._stack],
            "spans": [span.to_dict() for span in self._spans],
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        """Replace the tracer's contents with a checkpointed snapshot."""
        self._spans = [Span.from_dict(d) for d in state["spans"]]
        by_id = {span.span_id: span for span in self._spans}
        self._stack = [by_id[span_id] for span_id in state["open"]]
        self._next_id = int(state["next_id"])


class NullTracer:
    """Inert tracer: records nothing, costs one attribute check.

    Shares the :class:`Tracer` surface so instrumented code never
    branches on "is tracing on?" beyond the ``enabled`` flag (and hot
    paths may skip even the null calls by checking it).
    """

    enabled = False
    metrics = NULL_METRICS
    clock = None

    _NULL_SPAN = Span(0, 0, "null", 0.0, {})

    def start(self, name: str, **attrs: Any) -> Span:
        return self._NULL_SPAN

    def end(self, span: Span) -> Span:
        return span

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        yield self._NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def resume_or_start(self, name: str, **attrs: Any) -> Span:
        return self._NULL_SPAN

    @property
    def spans(self) -> List[Span]:
        return []

    @property
    def open_spans(self) -> List[Span]:
        return []

    def state_dict(self) -> None:
        return None

    def load_state(self, state: Any) -> None:
        return None


#: Shared inert tracer; assign it wherever tracing should be off.
NULL_TRACER = NullTracer()
