"""Reconstructing Table 1 from probe-ledger data alone.

Given a ledger recorded while detection probes ran against spoofed (and
ideally vanilla) navigators, this module answers the paper's central
question -- *which* spoofing method causes *which* side effect -- and
one the paper's methodology implies but never shows: **which concrete
accesses revealed it**.  A side effect's culprits are the ledger
entries of its probe whose operation stream differs from the same
probe's stream against a pristine navigator: an enumeration that now
lists an own ``webdriver`` key, a getter invocation that stopped being
native, a ``toString`` rendering an anonymous function.

Entries are grouped by the leading ``method:<n>:<name>`` scope
component (the :func:`record_table1_ledger` harness and the CI crawl
pair both use it); entries outside any ``method:`` scope form one
``crawl`` group.  The baseline stream comes from the in-file
``method:0:vanilla`` group when present, else from a second
(baseline) ledger -- so ``python -m repro.obs attribute`` works both on
a self-contained Table 1 ledger and on a spoofed-vs-vanilla crawl pair.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.probes import (
    PROBE_SCOPE_PREFIX,
    REFERENCE_LABEL_PREFIX,
    LedgerEntry,
    ProbeLedger,
)

_SEPARATORS = (",", ":")

#: Scope-component prefix the grouping keys on.
METHOD_GROUP_PREFIX = "method:"

#: The in-file baseline group :func:`record_table1_ledger` records.
VANILLA_GROUP = METHOD_GROUP_PREFIX + "0:vanilla"

#: Group label for entries recorded outside any ``method:`` scope.
CRAWL_GROUP = "crawl"


def record_table1_ledger() -> ProbeLedger:
    """Record the full Table 1 experiment into one ledger.

    One group per spoofing method (numbered as in the paper) plus the
    ``method:0:vanilla`` baseline, each over a fresh WebDriver-controlled
    window: instrument, spoof (except the baseline), probe.  The
    resulting ledger is self-contained -- :func:`build_attribution` can
    reconstruct the whole table from it with no other input.
    """
    from repro.browser.navigator import NavigatorProfile
    from repro.browser.window import Window
    from repro.detection.fingerprint import run_all_probes
    from repro.obs.probes import instrument_window
    from repro.spoofing.methods import SpoofingMethod, apply_spoofing

    ledger = ProbeLedger()

    def run_group(label: str, method=None) -> None:
        with ledger.scope(label):
            window = Window(profile=NavigatorProfile(webdriver=True))
            instrument_window(window, ledger)
            if method is not None:
                apply_spoofing(window, method)
            run_all_probes(window)

    run_group(VANILLA_GROUP)
    for method in SpoofingMethod:
        run_group(f"{METHOD_GROUP_PREFIX}{method.value}:{method.name.lower()}", method)
    return ledger


# -- attribution data model ---------------------------------------------------


@dataclass
class Culprit:
    """One operation signature whose stream differs from the baseline."""

    #: ``"added"`` / ``"removed"`` / ``"changed"``.
    kind: str
    obj: str
    op: str
    key: Optional[str]
    via: Optional[str]
    baseline_count: int
    observed_count: int
    #: ids of the observed-side entries carrying the signature (empty
    #: for ``removed`` culprits -- those exist only in the baseline).
    entry_ids: List[int] = field(default_factory=list)
    #: Example payloads for ``changed`` culprits.
    detail_baseline: Optional[Dict[str, Any]] = None
    detail_observed: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "obj": self.obj,
            "op": self.op,
            "key": self.key,
            "via": self.via,
            "baseline_count": self.baseline_count,
            "observed_count": self.observed_count,
            "entry_ids": self.entry_ids,
            "detail_baseline": self.detail_baseline,
            "detail_observed": self.detail_observed,
        }


@dataclass
class ProbeAttribution:
    """One detector probe's outcome and culprits within a group."""

    probe: str
    fired: bool
    accesses: int
    culprits: List[Culprit] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "probe": self.probe,
            "fired": self.fired,
            "accesses": self.accesses,
            "culprits": [c.to_dict() for c in self.culprits],
        }


@dataclass
class GroupAttribution:
    """One method group's reconstructed Table 1 row."""

    group: str
    probes: List[ProbeAttribution] = field(default_factory=list)

    @property
    def side_effects(self) -> List[str]:
        return [p.probe for p in self.probes if p.fired]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "group": self.group,
            "side_effects": self.side_effects,
            "probes": [p.to_dict() for p in self.probes],
        }


@dataclass
class AttributionReport:
    """The full reconstruction: groups x probes x culprits."""

    groups: List[GroupAttribution] = field(default_factory=list)
    baseline: Optional[str] = None

    def group(self, label: str) -> Optional[GroupAttribution]:
        for group in self.groups:
            if group.group == label:
                return group
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "baseline": self.baseline,
            "groups": [g.to_dict() for g in self.groups],
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        lines = ["Probe-ledger attribution (Table 1 reconstruction)"]
        lines.append(f"baseline: {self.baseline or '(none)'}")
        for group in self.groups:
            lines.append("")
            effects = ", ".join(group.side_effects) or "(none)"
            lines.append(f"{group.group}")
            lines.append(f"  side effects: {effects}")
            for probe in group.probes:
                mark = "fired" if probe.fired else "quiet"
                lines.append(
                    f"  {probe.probe}: {mark}, {probe.accesses} accesses"
                )
                for culprit in probe.culprits:
                    lines.append("    " + _culprit_line(culprit))
        return "\n".join(lines) + "\n"


def _culprit_line(culprit: Culprit) -> str:
    sign = {"added": "+", "removed": "-", "changed": "~"}[culprit.kind]
    key = f"[{culprit.key!r}]" if culprit.key is not None else ""
    via = f" via={culprit.via}" if culprit.via else ""
    line = f"{sign} {culprit.obj}.{culprit.op}{key}{via}"
    if culprit.kind == "changed" and (
        culprit.detail_baseline is not None or culprit.detail_observed is not None
    ):
        line += (
            f" detail {_fmt(culprit.detail_baseline)}"
            f" -> {_fmt(culprit.detail_observed)}"
        )
    else:
        line += f" x{culprit.baseline_count} -> x{culprit.observed_count}"
    if culprit.entry_ids:
        ids = ",".join(f"#{i}" for i in culprit.entry_ids[:4])
        if len(culprit.entry_ids) > 4:
            ids += ",..."
        line += f" (entries {ids})"
    return line


def _fmt(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=_SEPARATORS)


# -- building the attribution -------------------------------------------------


def _group_of(entry: LedgerEntry) -> str:
    head = entry.scope.split("/", 1)[0] if entry.scope else ""
    if head.startswith(METHOD_GROUP_PREFIX):
        return head
    return CRAWL_GROUP


def _probe_of(entry: LedgerEntry) -> Optional[str]:
    for component in entry.scope.split("/"):
        if component.startswith(PROBE_SCOPE_PREFIX):
            return component[len(PROBE_SCOPE_PREFIX):]
    return None


def _probe_streams(
    entries: Iterable[LedgerEntry],
) -> "Dict[str, Dict[str, List[LedgerEntry]]]":
    """``{group: {probe: [probe entries, in ledger order]}}``.

    Reference-navigator accesses (``ref:*`` objects) are the probe
    *comparing*, not the page-observable surface, and are dropped.
    """
    streams: Dict[str, Dict[str, List[LedgerEntry]]] = {}
    for entry in entries:
        probe = _probe_of(entry)
        if probe is None:
            continue
        if entry.obj.startswith(REFERENCE_LABEL_PREFIX):
            continue
        group = streams.setdefault(_group_of(entry), {})
        group.setdefault(probe, []).append(entry)
    return streams


def _signature(entry: LedgerEntry) -> Tuple[str, str, Optional[str], Optional[str]]:
    return (entry.obj, entry.op, entry.key, entry.via)


def _by_signature(entries: Iterable[LedgerEntry]):
    grouped: Dict[Tuple, List[LedgerEntry]] = {}
    for entry in entries:
        grouped.setdefault(_signature(entry), []).append(entry)
    return grouped


def _details_of(entries: List[LedgerEntry]) -> List[str]:
    return sorted(_fmt(entry.detail) for entry in entries)


def _culprits(
    observed: List[LedgerEntry], baseline: List[LedgerEntry]
) -> List[Culprit]:
    """Multiset-diff the two operation streams, signature by signature."""
    observed_ops = [e for e in observed if e.op != "probe.result"]
    baseline_ops = [e for e in baseline if e.op != "probe.result"]
    by_sig_observed = _by_signature(observed_ops)
    by_sig_baseline = _by_signature(baseline_ops)
    culprits: List[Culprit] = []
    signatures = set(by_sig_observed) | set(by_sig_baseline)
    for signature in sorted(
        signatures, key=lambda s: tuple("" if v is None else v for v in s)
    ):
        obs = by_sig_observed.get(signature, [])
        base = by_sig_baseline.get(signature, [])
        obj, op, key, via = signature
        if not base:
            kind = "added"
        elif not obs:
            kind = "removed"
        elif len(obs) != len(base) or _details_of(obs) != _details_of(base):
            kind = "changed"
        else:
            continue
        culprit = Culprit(
            kind=kind,
            obj=obj,
            op=op,
            key=key,
            via=via,
            baseline_count=len(base),
            observed_count=len(obs),
            entry_ids=[e.entry_id for e in obs],
        )
        if kind == "changed":
            diff_base = [e for e in base if e.detail not in [o.detail for o in obs]]
            diff_obs = [e for e in obs if e.detail not in [b.detail for b in base]]
            if diff_base:
                culprit.detail_baseline = diff_base[0].detail
            if diff_obs:
                culprit.detail_observed = diff_obs[0].detail
        culprits.append(culprit)
    return culprits


def build_attribution(
    entries: Iterable[LedgerEntry],
    baseline_entries: Optional[Iterable[LedgerEntry]] = None,
) -> AttributionReport:
    """Reconstruct the attribution table from ledger entries.

    ``baseline_entries`` (a vanilla run's ledger) is consulted only when
    the entries themselves contain no ``method:0:vanilla`` group.
    Without any baseline, probes still report fired/quiet and access
    counts, but no culprits (there is nothing to diff against).
    """
    streams = _probe_streams(entries)
    baseline_label: Optional[str] = None
    baseline_streams: Dict[str, List[LedgerEntry]] = {}
    if VANILLA_GROUP in streams:
        baseline_label = VANILLA_GROUP
        baseline_streams = streams[VANILLA_GROUP]
    elif baseline_entries is not None:
        external = _probe_streams(baseline_entries)
        merged: Dict[str, List[LedgerEntry]] = {}
        for group_streams in external.values():
            for probe, stream in group_streams.items():
                merged.setdefault(probe, []).extend(stream)
        baseline_label = "(external baseline)"
        baseline_streams = merged

    report = AttributionReport(baseline=baseline_label)
    for group_label, probes in streams.items():
        group = GroupAttribution(group=group_label)
        for probe_name, stream in probes.items():
            results = [e for e in stream if e.op == "probe.result"]
            fired = any(
                bool((e.detail or {}).get("fired")) for e in results
            )
            ops = [e for e in stream if e.op != "probe.result"]
            attribution = ProbeAttribution(
                probe=probe_name, fired=fired, accesses=len(ops)
            )
            if group_label != baseline_label and baseline_streams:
                attribution.culprits = _culprits(
                    stream, baseline_streams.get(probe_name, [])
                )
            group.probes.append(attribution)
        report.groups.append(group)
    return report
