"""Flame-graph exports for human inspection: speedscope + chrome trace.

The canonical profile (:mod:`repro.obs.profile`) is the byte-compared
artifact; these exports exist so a human can *look* at a crawl --
https://www.speedscope.app renders the evented format directly, and
``chrome://tracing`` / Perfetto load the chrome-trace JSON.  Both are
pure functions of the span tree on the virtual clock, so they inherit
the determinism of the trace (and the tests assert the speedscope
export of serial and sharded runs byte-match too).

Span events are emitted by a recursive pre-order walk -- open parent,
children in start order, close parent -- which guarantees the strict
nesting the speedscope evented format requires even when a child span
shares a boundary timestamp with its parent.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from repro.obs.span import Span

_SEPARATORS = (",", ":")

SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def _duration(span: Span) -> float:
    return 0.0 if span.end_ms is None else span.end_ms - span.start_ms


def _end_ms(span: Span, fallback: float) -> float:
    return fallback if span.end_ms is None else span.end_ms


def speedscope_document(
    spans: Sequence[Span], name: str = "crawl"
) -> Dict[str, Any]:
    """The trace as a speedscope *evented* profile document.

    Frames are the sorted unique span names; events are well-nested
    open/close pairs on the virtual-clock timeline in milliseconds.
    """
    frame_names = sorted({span.name for span in spans})
    frame_index = {name: i for i, name in enumerate(frame_names)}
    children: Dict[int, List[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)

    end_value = 0.0
    for span in children.get(0, ()):
        end = _end_ms(span, span.start_ms)
        if end > end_value:
            end_value = end

    events: List[Dict[str, Any]] = []

    def walk(span: Span) -> None:
        events.append(
            {"type": "O", "frame": frame_index[span.name], "at": span.start_ms}
        )
        for child in sorted(
            children.get(span.span_id, ()),
            key=lambda s: (s.start_ms, s.span_id),
        ):
            walk(child)
        events.append(
            {
                "type": "C",
                "frame": frame_index[span.name],
                "at": _end_ms(span, end_value),
            }
        )

    for root in sorted(
        children.get(0, ()), key=lambda s: (s.start_ms, s.span_id)
    ):
        walk(root)

    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "name": name,
        "activeProfileIndex": 0,
        "exporter": "repro.obs",
        "shared": {"frames": [{"name": n} for n in frame_names]},
        "profiles": [
            {
                "type": "evented",
                "name": name,
                "unit": "milliseconds",
                "startValue": 0.0,
                "endValue": end_value,
                "events": events,
            }
        ],
    }


def write_speedscope(
    path: Union[str, Path], spans: Sequence[Span], name: str = "crawl"
) -> Path:
    """Write a speedscope JSON file; returns the path written."""
    path = Path(path)
    path.write_text(
        json.dumps(
            speedscope_document(spans, name=name),
            sort_keys=True,
            separators=_SEPARATORS,
        )
        + "\n"
    )
    return path


def chrome_trace_document(spans: Sequence[Span]) -> Dict[str, Any]:
    """The trace as chrome-trace *complete* (``ph: X``) events.

    Timestamps and durations are microseconds per the format; every
    span lands on one pid/tid because the virtual clock is a single
    serial timeline.
    """
    events = []
    for span in spans:
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": span.start_ms * 1_000.0,
                "dur": _duration(span) * 1_000.0,
                "pid": 1,
                "tid": 1,
                "args": {"span_id": span.span_id, "status": span.status},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: Union[str, Path], spans: Sequence[Span]
) -> Path:
    """Write a chrome-trace JSON file; returns the path written."""
    path = Path(path)
    path.write_text(
        json.dumps(
            chrome_trace_document(spans),
            sort_keys=True,
            separators=_SEPARATORS,
        )
        + "\n"
    )
    return path
