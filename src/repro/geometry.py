"""Shared 2-D geometry primitives used by the DOM layout, trajectories and
input pipeline.

Coordinates follow browser conventions: the origin is the top-left corner of
the page, ``x`` grows to the right and ``y`` grows downwards.  *Client*
coordinates are relative to the viewport; *page* coordinates are relative to
the document and differ from client coordinates by the scroll offset.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import partial
from typing import NamedTuple


class Point(NamedTuple):
    """A point in 2-D space.

    A named tuple rather than a dataclass: trajectory assembly constructs
    one per sample on the motor hot path, and tuple construction skips
    the frozen-dataclass ``__setattr__`` interception.  Same field access,
    equality, hash and repr as the earlier frozen dataclass.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance between this point and ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def offset(self, dx: float, dy: float) -> "Point":
        """Return a new point translated by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def round(self) -> "Point":
        """Return the point with integer-rounded coordinates.

        Browsers report mouse event coordinates as integers; rounding is
        applied at the event-dispatch boundary.
        """
        return Point(float(round(self.x)), float(round(self.y)))

    def as_tuple(self) -> tuple:
        """Return ``(x, y)`` as a plain tuple."""
        return (self.x, self.y)


@dataclass(frozen=True)
class Box:
    """An axis-aligned rectangle (an element's layout box).

    ``x``/``y`` locate the top-left corner in page coordinates; ``width`` and
    ``height`` must be non-negative.
    """

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width < 0 or self.height < 0:
            raise ValueError(
                "Box dimensions must be non-negative, got "
                f"{self.width}x{self.height}"
            )

    @property
    def left(self) -> float:
        return self.x

    @property
    def top(self) -> float:
        return self.y

    @property
    def right(self) -> float:
        return self.x + self.width

    @property
    def bottom(self) -> float:
        return self.y + self.height

    @property
    def center(self) -> Point:
        """The exact centre of the box.

        Selenium clicks precisely here; humans almost never do (paper,
        Fig. 2).
        """
        return Point(self.x + self.width / 2.0, self.y + self.height / 2.0)

    @property
    def area(self) -> float:
        return self.width * self.height

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside the box (edges inclusive)."""
        return (
            self.left <= point.x <= self.right
            and self.top <= point.y <= self.bottom
        )

    def clamp(self, point: Point) -> Point:
        """Project ``point`` onto the nearest location inside the box."""
        return Point(
            min(max(point.x, self.left), self.right),
            min(max(point.y, self.top), self.bottom),
        )

    def intersects(self, other: "Box") -> bool:
        """Whether this box and ``other`` overlap (edge contact counts)."""
        return (
            self.left <= other.right
            and other.left <= self.right
            and self.top <= other.bottom
            and other.top <= self.bottom
        )

    def translated(self, dx: float, dy: float) -> "Box":
        """Return a copy of the box moved by ``(dx, dy)``."""
        return Box(self.x + dx, self.y + dy, self.width, self.height)


def timed_points(times, xs, ys) -> list:
    """Assemble ``[(t, Point(x, y)), ...]`` from coordinate arrays.

    The hot-path batch constructor for trajectory assembly: binding
    ``tuple.__new__`` to :class:`Point` and mapping it over zipped
    coordinate pairs runs the whole build without a per-sample Python
    frame (``Point._make`` re-validates arity per call; the pairs from
    ``zip`` are always well-formed here).  Accepts numpy arrays (anything
    with ``tolist``) for all three inputs.
    """
    make = partial(tuple.__new__, Point)
    return list(zip(times.tolist(), map(make, zip(xs.tolist(), ys.tolist()))))


def lerp(a: float, b: float, t: float) -> float:
    """Linear interpolation between ``a`` and ``b`` at parameter ``t``."""
    return a + (b - a) * t


def lerp_point(a: Point, b: Point, t: float) -> Point:
    """Linear interpolation between two points at parameter ``t``."""
    return Point(lerp(a.x, b.x, t), lerp(a.y, b.y, t))


def path_length(points) -> float:
    """Total polyline length of a sequence of :class:`Point`."""
    pts = list(points)
    return sum(pts[i].distance_to(pts[i + 1]) for i in range(len(pts) - 1))
