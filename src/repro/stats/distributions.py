"""Distribution utilities: normal fits, KS distance, chi-square.

These power the level-2 ("detect deviations from human behaviour")
detectors: click-scatter shape tests, dwell/flight distribution tests,
and the uniform-vs-Gaussian discrimination that separates the naive
click randomisation from HLISA's model (Fig. 2).
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np


def normal_pdf(x: float, mean: float = 0.0, std: float = 1.0) -> float:
    """Density of N(mean, std^2) at ``x``."""
    if std <= 0:
        raise ValueError("std must be positive")
    z = (x - mean) / std
    return math.exp(-0.5 * z * z) / (std * math.sqrt(2.0 * math.pi))


def normal_cdf(x: float, mean: float = 0.0, std: float = 1.0) -> float:
    """CDF of N(mean, std^2) at ``x`` (via erf)."""
    if std <= 0:
        raise ValueError("std must be positive")
    return 0.5 * (1.0 + math.erf((x - mean) / (std * math.sqrt(2.0))))


def fit_normal(values: Sequence[float]) -> Tuple[float, float]:
    """Maximum-likelihood normal fit: ``(mean, std)``."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot fit an empty sample")
    return float(np.mean(arr)), float(max(np.std(arr), 1e-12))


def ks_statistic(values: Sequence[float], cdf) -> float:
    """Kolmogorov-Smirnov distance of a sample from a model CDF."""
    arr = np.sort(np.asarray(list(values), dtype=float))
    n = arr.size
    if n == 0:
        raise ValueError("empty sample")
    model = np.array([cdf(v) for v in arr])
    empirical_hi = np.arange(1, n + 1) / n
    empirical_lo = np.arange(0, n) / n
    return float(max(np.max(empirical_hi - model), np.max(model - empirical_lo)))


def _ks_p_value(d: float, n: int) -> float:
    """Asymptotic two-sided KS p-value (Kolmogorov series)."""
    if n <= 0:
        raise ValueError("n must be positive")
    lam = (math.sqrt(n) + 0.12 + 0.11 / math.sqrt(n)) * d
    if lam < 1e-9:
        return 1.0
    total = 0.0
    for j in range(1, 101):
        term = 2.0 * (-1.0) ** (j - 1) * math.exp(-2.0 * j * j * lam * lam)
        total += term
        if abs(term) < 1e-10:
            break
    return float(min(max(total, 0.0), 1.0))


def ks_test_normal(values: Sequence[float]) -> Tuple[float, float]:
    """KS test of a sample against its own normal fit.

    Returns ``(statistic, p_value)``.  (Fitting first makes the test
    conservative -- Lilliefors-style -- which is acceptable for the
    detector use case: we threshold on the statistic, not on exact
    coverage.)
    """
    mean, std = fit_normal(values)
    d = ks_statistic(values, lambda v: normal_cdf(v, mean, std))
    return d, _ks_p_value(d, len(list(values)))


def chi_square_uniform(values: Sequence[float], low: float, high: float, bins: int = 10) -> Tuple[float, float]:
    """Chi-square test of uniformity on ``[low, high]``.

    Returns ``(statistic, p_value)`` with ``bins - 1`` degrees of
    freedom (p via the Wilson-Hilferty normal approximation).
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("empty sample")
    if high <= low:
        raise ValueError("invalid interval")
    counts, _ = np.histogram(arr, bins=bins, range=(low, high))
    expected = arr.size / bins
    statistic = float(np.sum((counts - expected) ** 2 / expected))
    dof = bins - 1
    # Wilson-Hilferty: (X/k)^(1/3) ~ N(1 - 2/(9k), 2/(9k)).
    z = ((statistic / dof) ** (1.0 / 3.0) - (1.0 - 2.0 / (9.0 * dof))) / math.sqrt(
        2.0 / (9.0 * dof)
    )
    p = 1.0 - normal_cdf(z)
    return statistic, float(min(max(p, 0.0), 1.0))
