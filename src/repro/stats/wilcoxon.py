"""Wilcoxon matched-pairs signed-rank test.

Used exactly as in the paper's Section 3.2: "We further use Wilcoxon
Matched-Pairs signed-Rank Test with a confidence interval of 95% to test
for significance" on paired per-site HTTP error counts from the two
crawler configurations.

Zero differences are discarded (Wilcoxon's original treatment); ranks of
tied absolute differences are averaged.  For small samples the exact
permutation distribution of ``W+`` is computed by dynamic programming
over the observed (tie-averaged) ranks -- ties do *not* force the test
onto the normal approximation, whose error is largest exactly at the
small ``n`` the paper's per-measure comparisons produce; large samples
use the normal approximation with tie correction and continuity
correction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.stats.distributions import normal_cdf

#: Largest sample for which the exact null distribution is enumerated.
EXACT_N_LIMIT = 25


@dataclass(frozen=True)
class WilcoxonResult:
    """Outcome of the signed-rank test."""

    statistic: float  # W = min(W+, W-)
    w_plus: float
    w_minus: float
    n: int  # pairs remaining after dropping zero differences
    p_value: float  # two-sided
    method: str  # "exact" or "normal"

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the difference is significant at level ``alpha``."""
        return self.p_value < alpha


def _signed_ranks(differences: np.ndarray) -> np.ndarray:
    """Average ranks of |d|, with the sign of d attached."""
    absolute = np.abs(differences)
    order = np.argsort(absolute, kind="stable")
    ranks = np.empty(absolute.size, dtype=float)
    sorted_abs = absolute[order]
    i = 0
    while i < sorted_abs.size:
        j = i
        while j + 1 < sorted_abs.size and sorted_abs[j + 1] == sorted_abs[i]:
            j += 1
        average = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = average
        i = j + 1
    return ranks * np.sign(differences)


def _exact_p_two_sided(w_plus: float, abs_ranks: np.ndarray) -> float:
    """Exact two-sided p for W+ over the observed (tie-averaged) ranks.

    Enumerates the null distribution of W+ = sum of a random subset of
    the observed ranks by dynamic programming over the generating
    polynomial.  Averaged tie ranks are half-integers, so the DP runs
    over doubled ranks, which are always integers; without ties this
    reduces to the classic distribution over {1..n}.
    """
    doubled = np.rint(2.0 * np.asarray(abs_ranks, dtype=float)).astype(int)
    max_w = int(doubled.sum())
    counts = np.zeros(max_w + 1, dtype=float)
    counts[0] = 1.0
    for rank in doubled:
        shifted = np.zeros_like(counts)
        shifted[rank:] = counts[: max_w + 1 - rank]
        counts = counts + shifted
    total = counts.sum()
    w = int(round(2.0 * w_plus))
    p_le = counts[: w + 1].sum() / total
    p_ge = counts[w:].sum() / total
    return float(min(1.0, 2.0 * min(p_le, p_ge)))


def wilcoxon_signed_rank(
    x: Sequence[float],
    y: Sequence[float],
) -> WilcoxonResult:
    """Two-sided Wilcoxon matched-pairs signed-rank test of ``x`` vs ``y``.

    Raises ``ValueError`` on length mismatch or when every pair is tied
    (no information).
    """
    x_arr = np.asarray(list(x), dtype=float)
    y_arr = np.asarray(list(y), dtype=float)
    if x_arr.shape != y_arr.shape:
        raise ValueError("paired samples must have equal length")
    differences = x_arr - y_arr
    differences = differences[differences != 0.0]
    n = int(differences.size)
    if n == 0:
        raise ValueError("all paired differences are zero")
    signed = _signed_ranks(differences)
    w_plus = float(signed[signed > 0].sum())
    w_minus = float(-signed[signed < 0].sum())
    statistic = min(w_plus, w_minus)

    if n <= EXACT_N_LIMIT:
        p = _exact_p_two_sided(w_plus, np.abs(signed))
        method = "exact"
    else:
        mean = n * (n + 1) / 4.0
        variance = n * (n + 1) * (2 * n + 1) / 24.0
        # Tie correction: subtract sum(t^3 - t)/48 over tie groups.
        _, tie_counts = np.unique(np.abs(differences), return_counts=True)
        variance -= float(np.sum(tie_counts**3 - tie_counts)) / 48.0
        if variance <= 0:
            raise ValueError("zero variance: all differences are tied")
        z = (statistic - mean + 0.5) / np.sqrt(variance)  # continuity corr.
        p = float(min(1.0, 2.0 * normal_cdf(z)))
        method = "normal"
    return WilcoxonResult(
        statistic=statistic,
        w_plus=w_plus,
        w_minus=w_minus,
        n=n,
        p_value=p,
        method=method,
    )
