"""Statistics used by the evaluation and the detectors.

The paper uses a Wilcoxon matched-pairs signed-rank test (95 % confidence)
on paired HTTP-error counts (Section 3.2); detectors additionally need
normal fits, Kolmogorov-Smirnov distances and chi-square uniformity
checks.  Everything is implemented here from first principles (numpy
only); the test suite cross-checks against scipy where available.
"""

from repro.stats.descriptive import Summary, summarize, coefficient_of_variation
from repro.stats.wilcoxon import WilcoxonResult, wilcoxon_signed_rank
from repro.stats.distributions import (
    normal_cdf,
    normal_pdf,
    fit_normal,
    ks_statistic,
    ks_test_normal,
    chi_square_uniform,
)

__all__ = [
    "Summary",
    "summarize",
    "coefficient_of_variation",
    "WilcoxonResult",
    "wilcoxon_signed_rank",
    "normal_cdf",
    "normal_pdf",
    "fit_normal",
    "ks_statistic",
    "ks_test_normal",
    "chi_square_uniform",
]
