"""Descriptive statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    q25: float
    median: float
    q75: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.2f} std={self.std:.2f} "
            f"min={self.minimum:.2f} q25={self.q25:.2f} med={self.median:.2f} "
            f"q75={self.q75:.2f} max={self.maximum:.2f}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of ``values`` (population std)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        n=int(arr.size),
        mean=float(np.mean(arr)),
        std=float(np.std(arr)),
        minimum=float(np.min(arr)),
        q25=float(np.quantile(arr, 0.25)),
        median=float(np.median(arr)),
        q75=float(np.quantile(arr, 0.75)),
        maximum=float(np.max(arr)),
    )


def coefficient_of_variation(values: Sequence[float]) -> float:
    """std/mean -- the uniformity measure speed detectors use.

    A perfectly uniform-speed movement (Selenium) has CV ~ 0; human
    movement's bell-shaped speed profile has CV well above 0.3.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot compute CV of an empty sample")
    mean = float(np.mean(arr))
    if abs(mean) < 1e-12:
        return 0.0
    return float(np.std(arr) / abs(mean))
