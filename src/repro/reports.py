"""Canonical report generators: one function per paper artefact.

Used by the command-line interface (``python -m repro <artefact>``); the
benchmarks in ``benchmarks/`` regenerate the same artefacts with shape
assertions attached.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np


def _table(title: str, lines: List[str]) -> str:
    bar = "=" * max(len(title), 40)
    return "\n".join([bar, title, bar] + lines)


def table1_report() -> str:
    """Table 1: spoofing side effects."""
    from repro.browser.navigator import NavigatorProfile
    from repro.browser.window import Window
    from repro.detection.fingerprint import SideEffect, run_all_probes
    from repro.spoofing import SpoofingMethod, apply_spoofing

    rows = [
        ("Incorrect order of navigator properties", SideEffect.INCORRECT_PROPERTY_ORDER),
        ("Modified navigator._length", SideEffect.MODIFIED_LENGTH),
        ("New Object.keys(navigator)", SideEffect.NEW_OBJECT_KEYS),
        ("Defined navigator.__proto__.webdriver", SideEffect.PROTO_WEBDRIVER_DEFINED),
        ("Unnamed window.navigator functions", SideEffect.UNNAMED_FUNCTIONS),
    ]
    observed = {}
    for method in SpoofingMethod:
        window = Window(profile=NavigatorProfile(webdriver=True))
        apply_spoofing(window, method)
        observed[method.value] = run_all_probes(window).side_effects
    lines = [f"{'Side effect':44s} 1  2  3  4"]
    for label, effect in rows:
        cells = "  ".join("x" if effect in observed[m] else "." for m in (1, 2, 3, 4))
        lines.append(f"{label:44s} {cells}")
    return _table("Table 1: detectable side effects by spoofing method", lines)


def field_study_report(n_sites: int = 1000) -> str:
    """Table 2 + Fig. 4: the crawl field study."""
    from repro.crawl import (
        OpenWPMCrawler,
        evaluate_breakage,
        evaluate_http_errors,
        evaluate_screenshots,
        generate_population,
    )
    from repro.crawl.population import PopulationConfig
    from repro.spoofing import SpoofingExtension

    if n_sites == 1000:
        population = generate_population()
    else:
        population = generate_population(PopulationConfig(n_sites=n_sites))
    baseline = OpenWPMCrawler("OpenWPM", None, instances=8, seed=11).crawl(population)
    extended = OpenWPMCrawler(
        "OpenWPM+extension", SpoofingExtension(), instances=8, seed=22
    ).crawl(population)
    base_eval = evaluate_screenshots(baseline)
    ext_eval = evaluate_screenshots(extended)
    lines = [f"{'Response':26s} {'(1)s':>6s} {'(2)s':>6s} {'(1)v':>8s} {'(2)v':>8s}"]
    for (label, s1, v1), (_, s2, v2) in zip(base_eval.rows(), ext_eval.rows()):
        lines.append(f"{label:26s} {s1:6d} {s2:6d} {v1:8d} {v2:8d}")
    breakage = evaluate_breakage(baseline, extended)
    lines.append(
        f"breakage: {len(breakage.deformed_layout_sites)} layout, "
        f"{len(breakage.frozen_video_sites)} video"
    )
    http = evaluate_http_errors(baseline, extended)
    lines.append("")
    lines.append(f"{'status':>7s} {'OpenWPM':>9s} {'+ext':>9s}")
    for status, base, ext in http.rows(min_occurrences=100):
        lines.append(f"{status:7d} {base:9d} {ext:9d}")
    fp = http.first_party_wilcoxon
    if fp is not None:
        lines.append(
            f"first-party Wilcoxon p = {fp.p_value:.4f} "
            f"({'significant' if fp.significant() else 'not significant'})"
        )
    return _table("Table 2 / Figure 4: the field study", lines)


def table3_report() -> str:
    """Table 3: the HLISA API, listed from the implementation."""
    import inspect

    from repro.core.hlisa_action_chains import HLISA_ActionChains
    from repro.webdriver.driver import make_browser_driver

    chain = HLISA_ActionChains(make_browser_driver())
    lines = []
    for name in sorted(dir(chain)):
        if name.startswith("_"):
            continue
        method = getattr(chain, name)
        if not callable(method):
            continue
        signature = str(inspect.signature(method))
        doc = (inspect.getdoc(method) or "").splitlines()
        summary = doc[0] if doc else ""
        lines.append(f"{name}{signature:<42s} {summary}")
    return _table("Table 3: the HLISA API", lines)


def table4_report(click_attempts: int = 120) -> str:
    """Table 4: the tool comparison, probed empirically."""
    from repro.tools import build_feature_matrix

    matrix = build_feature_matrix(click_attempts=click_attempts)
    counts = {c: matrix.feature_count(c) for c in matrix.columns}
    lines = matrix.format_table().splitlines()
    lines.append("")
    lines.append("feature counts: " + "  ".join(f"{c}={n}" for c, n in counts.items()))
    return _table("Table 4: tool comparison", lines)


def figure1_report() -> str:
    """Fig. 1: trajectory signatures for the four agents."""
    from repro.analysis.trajectory import per_movement_metrics
    from repro.experiment import PointingTask, STANDARD_AGENTS

    lines = [
        f"{'agent':10s} {'straight':>9s} {'speedCV':>8s} {'edge/mid':>9s} "
        f"{'jitter':>7s} {'px/s':>6s}"
    ]
    for name, factory in STANDARD_AGENTS.items():
        result = PointingTask(repetitions=3).run(factory())
        ms = [
            m
            for m in per_movement_metrics(result.recorder.mouse_path())
            if m.chord_length > 300
        ]
        lines.append(
            f"{name:10s} {np.mean([m.straightness for m in ms]):9.4f} "
            f"{np.mean([m.speed_cv for m in ms]):8.2f} "
            f"{np.mean([m.edge_to_middle_speed_ratio for m in ms]):9.2f} "
            f"{np.mean([m.jitter_rms_px for m in ms]):7.2f} "
            f"{np.mean([m.mean_speed_px_s for m in ms]):6.0f}"
        )
    return _table("Figure 1: trajectory signatures", lines)


def figure2_report(clicks: int = 100) -> str:
    """Fig. 2: click-distribution signatures for the four agents."""
    from repro.analysis import click_metrics
    from repro.experiment import MovingClickTask, STANDARD_AGENTS

    lines = [
        f"{'agent':10s} {'exact-centre':>13s} {'mean offset':>12s} {'corners':>8s}"
    ]
    for name, factory in STANDARD_AGENTS.items():
        result = MovingClickTask(clicks=clicks).run(factory())
        records = result.recorder.clicks()
        m = click_metrics(
            [c.position for c in records], [c.target_box for c in records]
        )
        lines.append(
            f"{name:10s} {m.exact_center_rate:13.1%} "
            f"{m.mean_radial_offset:12.3f} {m.corner_rate:8.1%}"
        )
    return _table("Figure 2: click distributions", lines)


def figure3_report() -> str:
    """Fig. 3: the arms-race tournament matrix."""
    from repro.armsrace import Tournament

    result = Tournament().run()
    lines = result.format_matrix().splitlines()
    lines.append("")
    lines.append(
        "matches the Fig. 3 model"
        if result.matches_model()
        else "DEVIATES: " + "; ".join(result.mismatches())
    )
    return _table("Figure 3: arms-race detection matrix", lines)


REPORTS = {
    "table1": table1_report,
    "table2": field_study_report,
    "table3": table3_report,
    "table4": table4_report,
    "fig1": figure1_report,
    "fig2": figure2_report,
    "fig3": figure3_report,
    "fig4": field_study_report,
}
