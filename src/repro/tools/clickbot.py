"""ClickBot: movement plus clicks with *accidental* behaviours.

The Java tool (https://github.com/amSangi/ClickBot) distinguishes itself
in Table 4 by simulating human slip-ups: occasional accidental right
clicks, accidental double clicks, and accidental "no clicks" (pressing
next to the target or not pressing at all), on top of moved clicks with
a realistic hold time.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.dom.element import Element
from repro.experiment.session import Session
from repro.geometry import Point
from repro.models.bezier import BezierTrajectory
from repro.tools.base import ToolBackend, register


@register
class ClickBotBackend(ToolBackend):
    """Curved movement + clicks with accidental right/double/no clicks."""

    name = "ClickBot"
    selenium_ready = False

    TARGET_POINTS = 55
    POINT_INTERVAL_MS = 11.0
    P_ACCIDENTAL_RIGHT = 0.03
    P_ACCIDENTAL_DOUBLE = 0.02
    P_ACCIDENTAL_MISS = 0.05

    def move_to_element(self, session: Session, element: Element) -> None:
        start = session.pipeline.pointer
        target_page = element.box.center
        # Slight randomisation inside the element.
        jitter_x = float(self.rng.normal(0.0, element.box.width * 0.08))
        jitter_y = float(self.rng.normal(0.0, element.box.height * 0.08))
        target = session.window.page_to_client(
            element.box.clamp(Point(target_page.x + jitter_x, target_page.y + jitter_y))
        )
        curve = BezierTrajectory(start, target, self.rng, control_offset_frac=0.15)
        tau = np.linspace(0.0, 1.0, self.TARGET_POINTS)
        path: List[Tuple[float, Point]] = [
            (i * self.POINT_INTERVAL_MS, curve.at(float(t)))
            for i, t in enumerate(tau)
        ]
        self._walk(session, path)

    def _hold(self, session: Session) -> None:
        session.clock.advance(float(max(self.rng.normal(85.0, 20.0), 25.0)))

    def click_element(self, session: Session, element: Element) -> None:
        self.move_to_element(session, element)
        roll = float(self.rng.random())
        if roll < self.P_ACCIDENTAL_RIGHT:
            # Accidental right click, then the intended left click.
            session.pipeline.mouse_down(button=2)
            self._hold(session)
            session.pipeline.mouse_up(button=2)
            session.clock.advance(float(self.rng.uniform(150.0, 400.0)))
        elif roll < self.P_ACCIDENTAL_RIGHT + self.P_ACCIDENTAL_MISS:
            # Accidental no-click: hesitate, nudge the cursor, give up on
            # this attempt entirely (as a distracted human would).
            pointer = session.pipeline.pointer
            session.clock.advance(float(self.rng.uniform(200.0, 500.0)))
            session.pipeline.move_mouse_to(
                pointer.x + float(self.rng.normal(0, 3)),
                pointer.y + float(self.rng.normal(0, 3)),
                force_event=True,
            )
            return
        session.pipeline.mouse_down()
        self._hold(session)
        session.pipeline.mouse_up()
        if float(self.rng.random()) < self.P_ACCIDENTAL_DOUBLE:
            session.clock.advance(float(self.rng.uniform(60.0, 180.0)))
            session.pipeline.mouse_down()
            self._hold(session)
            session.pipeline.mouse_up()
