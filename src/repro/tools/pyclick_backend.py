"""PyClick: Bézier ``HumanCurve`` with distortion and easing tweens.

The original (https://github.com/patrikoss/pyclick) composes a Bézier
curve through random internal knots, adds per-point "distortion"
(vertical pixel noise), and replays it under an easing tween
(``easeOutQuad`` by default) -- so it accelerates/decelerates and
shivers.  It moves and clicks (single left click, no dwell model).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.dom.element import Element
from repro.experiment.session import Session
from repro.geometry import Point
from repro.models.bezier import BezierTrajectory
from repro.tools.base import ToolBackend, register


def ease_out_quad(tau: np.ndarray) -> np.ndarray:
    """PyClick's default tween: fast start, decelerating finish."""
    return 1.0 - (1.0 - tau) ** 2


@register
class PyClickBackend(ToolBackend):
    """HumanCurve movement + plain clicks."""

    name = "PyC"
    selenium_ready = False

    TARGET_POINTS = 70
    POINT_INTERVAL_MS = 9.0
    DISTORTION_SD_PX = 1.2

    def _human_curve(self, start: Point, end: Point) -> List[Point]:
        curve = BezierTrajectory(start, end, self.rng, control_offset_frac=0.15)
        tau = ease_out_quad(np.linspace(0.0, 1.0, self.TARGET_POINTS))
        points = [curve.at(float(t)) for t in tau]
        # Distortion: vertical pixel noise on interior points.
        distorted = [points[0]]
        for p in points[1:-1]:
            distorted.append(
                Point(p.x, p.y + float(self.rng.normal(0.0, self.DISTORTION_SD_PX)))
            )
        distorted.append(points[-1])
        return distorted

    def move_to_element(self, session: Session, element: Element) -> None:
        start = session.pipeline.pointer
        target = session.window.page_to_client(element.box.center)
        curve = self._human_curve(start, target)
        path: List[Tuple[float, Point]] = [
            (i * self.POINT_INTERVAL_MS, p) for i, p in enumerate(curve)
        ]
        self._walk(session, path)

    def click_element(self, session: Session, element: Element) -> None:
        self.move_to_element(session, element)
        # Plain click: press/release with no dwell model (the library
        # delegates to pyautogui.click()).
        session.pipeline.mouse_down()
        session.clock.advance(1.0)
        session.pipeline.mouse_up()
