"""Empirical feature probes for the Table 4 comparison.

Each backend runs a click battery, a typing task and a scroll task
against the recording harness; the Table 4 features are then *measured*
from the recordings.  Unsupported modalities (the backend raises
:class:`~repro.tools.base.Unsupported`) leave their feature group blank,
like the empty cells of the paper's table.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.analysis.clicks import click_metrics
from repro.analysis.scroll_metrics import scroll_metrics
from repro.analysis.trajectory import per_movement_metrics
from repro.analysis.typing_metrics import typing_metrics
from repro.events.recorder import EventRecorder
from repro.experiment.session import Session
from repro.experiment.tasks import TYPING_SAMPLE_TEXT
from repro.geometry import Box
from repro.tools.base import ToolBackend, Unsupported

#: Table 4's feature rows, grouped as in the paper.
FEATURES: Tuple[str, ...] = (
    # mouse movement
    "mouse_movement",
    "realistic_speed",
    "accel_decel",
    "shivering",
    "curve",
    "random_in_element",
    # clicking
    "click_functionality",
    "realistic_dwell",
    "accidental_right_click",
    "accidental_double_click",
    "accidental_no_click",
    # scrolling
    "scrolling",
    "pause_between_ticks",
    "finger_pause",
    "realistic_tick_distance",
    # keyboard
    "keyboard",
    "flight_time",
    "dwell_time",
    "timings_based_on_data",
    # other
    "selenium_ready",
)


def _run_click_battery(backend: ToolBackend, attempts: int) -> Tuple[EventRecorder, int]:
    """Repeatedly ask the backend to click a relocating target."""
    session = Session(automated=True)
    rng = np.random.default_rng(77)
    size = 90.0
    target = session.document.create_element(
        "button", Box(620, 340, size, size), id="probe-target"
    )
    def _relocate() -> None:
        session.clock.advance(float(rng.uniform(180, 600)))
        target.box = Box(
            float(rng.uniform(10, session.window.viewport_width - size - 10)),
            float(rng.uniform(10, session.window.viewport_height - size - 10)),
            size,
            size,
        )

    supported_attempts = 0
    for _ in range(attempts):
        try:
            backend.click_element(session, target)
        except Unsupported:
            supported_attempts = 0
            break
        supported_attempts += 1
        _relocate()
    if supported_attempts == 0 and hasattr(backend, "move_to_element"):
        # Movement-only tool: sample its pointing behaviour anyway so the
        # mouse-movement feature rows are measured on real data.
        for _ in range(20):
            try:
                backend.move_to_element(session, target)
            except Unsupported:
                break
            _relocate()
    return session.recorder, supported_attempts


def _run_typing(backend: ToolBackend) -> EventRecorder:
    session = Session(automated=True)
    area = session.document.create_element(
        "textarea", Box(420, 240, 520, 200), id="probe-typing"
    )
    try:
        backend.type_text(session, area, TYPING_SAMPLE_TEXT)
    except Unsupported:
        pass
    return session.recorder

def _run_scroll(backend: ToolBackend) -> EventRecorder:
    session = Session(automated=True, page_height=9000.0)
    try:
        backend.scroll_by(session, session.window.max_scroll_y)
    except Unsupported:
        pass
    return session.recorder


def probe_backend(backend: ToolBackend, click_attempts: int = 120) -> Dict[str, bool]:
    """Measure every Table 4 feature for one backend."""
    features: Dict[str, bool] = {name: False for name in FEATURES}

    clicks_recorder, attempts = _run_click_battery(backend, click_attempts)
    typing_recorder = _run_typing(backend)

    # -- mouse movement -------------------------------------------------------
    # Movement-capable tools show it in the click battery; keyboard-only
    # tools (the thesis framework) move the cursor to reach the field.
    mouse_path = clicks_recorder.mouse_path() or typing_recorder.mouse_path()
    movements = [
        m
        for m in per_movement_metrics(mouse_path)
        if m.chord_length > 120 and m.n_samples >= 8
    ]
    if len(mouse_path) >= 40 and movements:
        features["mouse_movement"] = True
        mean_speed = float(np.mean([m.mean_speed_px_s for m in movements]))
        top_speed = float(np.max([m.mean_speed_px_s for m in movements]))
        # Realistic pace: the typical movement sits in the human band and
        # no movement is faster than an arm can plausibly go (Selenium's
        # fixed 250 ms duration makes long moves superhumanly fast).
        features["realistic_speed"] = 150.0 <= mean_speed <= 2600.0 and top_speed <= 3200.0
        edge_mid = float(np.mean([m.edge_to_middle_speed_ratio for m in movements]))
        features["accel_decel"] = edge_mid < 0.75
        jitter = float(np.mean([m.jitter_rms_px for m in movements]))
        features["shivering"] = jitter > 0.55
        straightness = float(np.mean([m.straightness for m in movements]))
        features["curve"] = straightness < 0.995

    # -- clicking ------------------------------------------------------------------
    clicks = clicks_recorder.clicks()
    usable = [(c.position, c.target_box) for c in clicks if c.target_box is not None]
    if clicks:
        features["click_functionality"] = True
        dwells = np.array([c.dwell_ms for c in clicks])
        features["realistic_dwell"] = (
            25.0 <= float(dwells.mean()) <= 250.0 and float(dwells.std()) > 3.0
        )
        if len(usable) >= 10:
            cm = click_metrics([u[0] for u in usable], [u[1] for u in usable])
            features["random_in_element"] = (
                cm.mean_radial_offset > 0.04 and cm.exact_center_rate < 0.5
            )
        right_downs = [
            e for e in clicks_recorder.of_type("mousedown") if e.button == 2
        ]
        features["accidental_right_click"] = len(right_downs) > 0
        features["accidental_double_click"] = (
            len(clicks_recorder.of_type("dblclick")) > 0
        )
        # A missed attempt produced no left press at all.
        left_downs = [
            e for e in clicks_recorder.of_type("mousedown") if e.button == 0
        ]
        features["accidental_no_click"] = 0 < len(left_downs) < attempts

    # -- scrolling -------------------------------------------------------------------
    scroll_recorder = _run_scroll(backend)
    sm = scroll_metrics(
        scroll_recorder.scroll_events(), scroll_recorder.wheel_ticks()
    )
    if sm.n_scroll_events >= 5:
        features["scrolling"] = True
        features["pause_between_ticks"] = sm.median_tick_gap_ms > 25.0
        features["finger_pause"] = sm.has_sweep_structure
        features["realistic_tick_distance"] = 40.0 <= sm.median_scroll_step_px <= 80.0

    # -- keyboard ----------------------------------------------------------------------
    strokes = typing_recorder.key_strokes()
    character_strokes = [s for s in strokes if len(s.key) == 1]
    if len(character_strokes) >= 20:
        features["keyboard"] = True
        tm = typing_metrics(strokes)
        features["flight_time"] = tm.flight_std_ms > 8.0 and tm.flight_mean_ms > 20.0
        features["dwell_time"] = tm.dwell_mean_ms > 20.0 and tm.dwell_std_ms > 3.0
        downs = np.array([s.down.timestamp for s in character_strokes])
        gaps = np.diff(downs)
        gaps = gaps[gaps > 0]
        if gaps.size >= 20:
            ratio = float(np.quantile(gaps, 0.95) / max(np.median(gaps), 1e-9))
            features["timings_based_on_data"] = ratio >= 1.6

    # -- other -------------------------------------------------------------------------
    features["selenium_ready"] = bool(getattr(backend, "selenium_ready", False))
    return features
