"""Assembling the Table 4 feature matrix."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

# Importing the tool modules registers their backends.
from repro.tools import bezmouse  # noqa: F401
from repro.tools import clickbot  # noqa: F401
from repro.tools import hmm  # noqa: F401
from repro.tools import pyclick_backend  # noqa: F401
from repro.tools import pyhm  # noqa: F401
from repro.tools import scroller  # noqa: F401
from repro.tools import thesis_typing  # noqa: F401
from repro.experiment.agents import HLISAAgent, SeleniumAgent
from repro.tools.base import BACKEND_REGISTRY, ToolBackend, register
from repro.tools.probes import FEATURES, probe_backend


@register
class HLISABackend(HLISAAgent, ToolBackend):
    """HLISA as a Table 4 column (the rightmost of the paper's table)."""

    name = "HLISA"
    selenium_ready = True  # it *is* a Selenium API

    def __init__(self, seed: int = 5) -> None:
        HLISAAgent.__init__(self, seed=seed)


@register
class SeleniumBackend(SeleniumAgent, ToolBackend):
    """Plain Selenium, as a reference column outside the paper's table."""

    name = "Selenium"
    selenium_ready = True

    def __init__(self, seed: int = 5) -> None:
        SeleniumAgent.__init__(self)


#: Table 4's column order.
TABLE4_COLUMNS = ("HMM", "PyC", "BezMouse", "pyHM", "Scroller", "ClickBot", "[20]", "HLISA")


@dataclass
class FeatureMatrix:
    """The regenerated Table 4."""

    columns: List[str]
    #: feature -> {tool -> supported}
    rows: Dict[str, Dict[str, bool]] = field(default_factory=dict)

    def supported(self, feature: str, tool: str) -> bool:
        return self.rows.get(feature, {}).get(tool, False)

    def feature_count(self, tool: str) -> int:
        """Number of features a tool covers (HLISA should lead)."""
        return sum(1 for feature in self.rows if self.supported(feature, tool))

    def format_table(self) -> str:
        """Printable check-mark table in the paper's layout."""
        width = max(len(f) for f in self.rows) + 2
        header = "Functionality".ljust(width) + "  ".join(
            f"{c:>8s}" for c in self.columns
        )
        lines = [header, "-" * len(header)]
        for feature in self.rows:
            cells = "  ".join(
                f"{'x' if self.rows[feature][c] else '.':>8s}" for c in self.columns
            )
            lines.append(feature.ljust(width) + cells)
        return "\n".join(lines)


def build_feature_matrix(
    columns: Optional[Sequence[str]] = None,
    click_attempts: int = 120,
) -> FeatureMatrix:
    """Probe every backend and assemble the matrix.

    ``columns`` defaults to the paper's eight tools; add ``"Selenium"``
    for the baseline column.
    """
    columns = list(columns or TABLE4_COLUMNS)
    matrix = FeatureMatrix(columns=columns)
    results = {
        name: probe_backend(BACKEND_REGISTRY[name](), click_attempts=click_attempts)
        for name in columns
    }
    for feature in FEATURES:
        matrix.rows[feature] = {name: results[name][feature] for name in columns}
    return matrix
