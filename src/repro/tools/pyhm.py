"""pyHM ("Python Human Movements"): humanised movement and clicks.

The package (https://pypi.org/project/pyHM/) moves the cursor along a
curved path with an eased (accelerating/decelerating) pace and offers
click helpers with a short hold.  No tremor model, no keyboard, no
scrolling, and clicks land on the element centre.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.dom.element import Element
from repro.experiment.session import Session
from repro.geometry import Point
from repro.models.bezier import BezierTrajectory
from repro.tools.base import ToolBackend, register


def ease_in_out_sine(tau: np.ndarray) -> np.ndarray:
    """Symmetric sinusoidal easing: accelerate, then decelerate."""
    return 0.5 * (1.0 - np.cos(np.pi * tau))


@register
class PyHMBackend(ToolBackend):
    """Eased curve movement + centre clicks with a short hold."""

    name = "pyHM"
    selenium_ready = False

    TARGET_POINTS = 65
    POINT_INTERVAL_MS = 10.0

    def move_to_element(self, session: Session, element: Element) -> None:
        start = session.pipeline.pointer
        target = session.window.page_to_client(element.box.center)
        curve = BezierTrajectory(start, target, self.rng, control_offset_frac=0.16)
        tau = ease_in_out_sine(np.linspace(0.0, 1.0, self.TARGET_POINTS))
        path: List[Tuple[float, Point]] = [
            (i * self.POINT_INTERVAL_MS, curve.at(float(t)))
            for i, t in enumerate(tau)
        ]
        self._walk(session, path)

    def click_element(self, session: Session, element: Element) -> None:
        self.move_to_element(session, element)
        session.pipeline.mouse_down()
        session.clock.advance(float(max(self.rng.normal(90.0, 25.0), 30.0)))
        session.pipeline.mouse_up()
