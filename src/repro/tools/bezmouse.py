"""BezMouse: Bézier movement with noise, built to script games.

The original (https://github.com/vincentbavitz/bezmouse) draws a Bézier
curve, perturbs points with random "shake", and replays them with a
per-point sleep drawn from a small range -- so the pace is roughly
realistic and the path shivers, but there is no systematic
acceleration/deceleration profile.  Clicks are simple press/release with
a short random hold.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.dom.element import Element
from repro.experiment.session import Session
from repro.geometry import Point
from repro.models.bezier import BezierTrajectory
from repro.tools.base import ToolBackend, register


@register
class BezMouseBackend(ToolBackend):
    """Shaky Bézier movement + simple clicks."""

    name = "BezMouse"
    selenium_ready = False

    TARGET_POINTS = 60
    SHAKE_SD_PX = 1.5

    def move_to_element(self, session: Session, element: Element) -> None:
        start = session.pipeline.pointer
        target = session.window.page_to_client(element.box.center)
        curve = BezierTrajectory(start, target, self.rng, control_offset_frac=0.2)
        tau = np.linspace(0.0, 1.0, self.TARGET_POINTS)  # uniform pace
        path: List[Tuple[float, Point]] = []
        t = 0.0
        for i, value in enumerate(tau):
            p = curve.at(float(value))
            if 0 < i < self.TARGET_POINTS - 1:
                p = Point(
                    p.x + float(self.rng.normal(0.0, self.SHAKE_SD_PX)),
                    p.y + float(self.rng.normal(0.0, self.SHAKE_SD_PX)),
                )
            path.append((t, p))
            t += float(self.rng.uniform(6.0, 14.0))  # per-point sleep range
        self._walk(session, path)

    def click_element(self, session: Session, element: Element) -> None:
        self.move_to_element(session, element)
        # Delegates to a plain pyautogui.click(): no hold-time model.
        session.pipeline.mouse_down()
        session.clock.advance(1.0)
        session.pipeline.mouse_up()
