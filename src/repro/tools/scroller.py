"""Scroller: human-like scrolling for Selenium -- scrolling only.

The original (https://github.com/hayj/Scroller) drives Selenium's
``window.scrollBy`` in small steps with randomised pauses, including
occasional longer ones.  No pointer, click or keyboard functionality.
"""

from __future__ import annotations

from repro.experiment.session import Session
from repro.tools.base import ToolBackend, register


@register
class ScrollerBackend(ToolBackend):
    """Tick-wise scripted scrolling with human-ish pauses."""

    name = "Scroller"
    selenium_ready = True  # built explicitly for Selenium sessions

    TICK_PX = 57.0

    def scroll_by(self, session: Session, dy: float) -> None:
        direction = 1.0 if dy > 0 else -1.0
        remaining = abs(dy)
        ticks_since_break = 0
        next_break = int(self.rng.integers(4, 11))
        while remaining > 0:
            if ticks_since_break >= next_break:
                session.clock.advance(float(self.rng.uniform(250.0, 700.0)))
                ticks_since_break = 0
                next_break = int(self.rng.integers(4, 11))
            else:
                session.clock.advance(float(self.rng.uniform(40.0, 160.0)))
            # Scripted scrollBy: scroll events in ticks, no wheel events
            # (same limitation HLISA has).
            session.window.scroll_by(0, direction * self.TICK_PX)
            remaining -= self.TICK_PX
            ticks_since_break += 1
