"""Common backend interface for the Table 4 tools.

A backend is an agent (same verbs as :mod:`repro.experiment.agents`) that
may not support every modality: unsupported verbs raise
:class:`Unsupported` and the probe records the feature group as absent --
just as the paper's table leaves those cells empty.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.dom.element import Element
from repro.experiment.session import Session
from repro.geometry import Point


class Unsupported(NotImplementedError):
    """The backend does not implement this interaction modality."""


class ToolBackend:
    """Base class for comparison-tool backends.

    Subclasses override the verbs they support.  ``automated`` is always
    True (every tool drives an automated browser); ``selenium_ready``
    mirrors Table 4's "Selenium ready" row (an integration property that
    cannot be probed behaviourally).
    """

    name = "tool"
    automated = True
    selenium_ready = False

    def __init__(self, seed: int = 5) -> None:
        self.rng = np.random.default_rng(seed)

    # -- the agent verbs ----------------------------------------------------

    def click_element(self, session: Session, element: Element) -> None:
        raise Unsupported(f"{self.name} has no click support")

    def type_text(self, session: Session, element: Element, text: str) -> None:
        raise Unsupported(f"{self.name} has no keyboard support")

    def scroll_by(self, session: Session, dy: float) -> None:
        raise Unsupported(f"{self.name} has no scrolling support")

    # -- shared plumbing ------------------------------------------------------

    def _walk(self, session: Session, path: List[Tuple[float, Point]]) -> None:
        """Execute a timed path through the input pipeline."""
        clock = session.clock
        previous_t = 0.0
        for t, point in path:
            clock.advance(max(t - previous_t, 0.0))
            session.pipeline.move_mouse_to(point.x, point.y)
            previous_t = t
        if path:
            session.pipeline.move_mouse_to(
                path[-1][1].x, path[-1][1].y, force_event=True
            )


#: name -> backend factory; filled by the individual tool modules via
#: :func:`register` and completed in :mod:`repro.tools.matrix` with the
#: HLISA/Selenium reference columns.
BACKEND_REGISTRY: Dict[str, Callable[[], "ToolBackend"]] = {}


def register(factory: Callable[[], ToolBackend]) -> Callable[[], ToolBackend]:
    """Class decorator registering a backend under its ``name``."""
    BACKEND_REGISTRY[factory.name] = factory  # type: ignore[attr-defined]
    return factory


def make_backend(name: str) -> ToolBackend:
    """Instantiate a registered backend by name."""
    # Import the tool modules lazily so registration has happened.
    from repro.tools import matrix  # noqa: F401  (fills the registry)

    return BACKEND_REGISTRY[name]()
