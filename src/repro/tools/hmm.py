""""Human-like mouse movement" (HMM): the StackOverflow B-spline answer.

The original (https://stackoverflow.com/a/48690652) interpolates a cubic
B-spline through a handful of random knots between start and target and
replays it with ``pyautogui`` at an essentially constant pace.  Result:
a nicely curved path -- but uniform speed, no tremor, and no click or
keyboard support.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.dom.element import Element
from repro.experiment.session import Session
from repro.geometry import Point
from repro.tools.base import ToolBackend, Unsupported, register


def bspline_path(
    start: Point,
    end: Point,
    rng: np.random.Generator,
    *,
    knots: int = 3,
    samples: int = 60,
) -> List[Point]:
    """A clamped cubic-B-spline-style curve through random interior knots.

    Implemented as repeated de-Boor-like smoothing of the control
    polygon (Chaikin refinement), which converges to a quadratic
    B-spline -- matching the original's visual character without scipy.
    """
    span = start.distance_to(end)
    control = [start]
    for i in range(1, knots + 1):
        along = i / (knots + 1)
        offset = float(rng.uniform(-span * 0.12, span * 0.12))
        # Perpendicular direction of the chord.
        ux, uy = (end.x - start.x) / max(span, 1e-9), (end.y - start.y) / max(span, 1e-9)
        control.append(
            Point(
                start.x + (end.x - start.x) * along - uy * offset,
                start.y + (end.y - start.y) * along + ux * offset,
            )
        )
    control.append(end)

    points = control
    for _ in range(5):  # Chaikin corner cutting converges to a B-spline
        refined = [points[0]]
        for a, b in zip(points, points[1:]):
            refined.append(Point(a.x * 0.75 + b.x * 0.25, a.y * 0.75 + b.y * 0.25))
            refined.append(Point(a.x * 0.25 + b.x * 0.75, a.y * 0.25 + b.y * 0.75))
        refined.append(points[-1])
        points = refined

    # Resample uniformly by arc length: replayed at a fixed per-point
    # interval this yields the original's constant pace (and a perfectly
    # smooth curve -- no tremor).
    distances = np.concatenate(
        [[0.0], np.cumsum([points[i].distance_to(points[i + 1]) for i in range(len(points) - 1)])]
    )
    total = distances[-1] if distances[-1] > 0 else 1.0
    targets = np.linspace(0.0, total, samples)
    resampled: List[Point] = []
    j = 0
    for target in targets:
        while j < len(distances) - 2 and distances[j + 1] < target:
            j += 1
        span_len = distances[j + 1] - distances[j]
        frac = (target - distances[j]) / span_len if span_len > 0 else 0.0
        a, b = points[j], points[j + 1]
        resampled.append(Point(a.x + (b.x - a.x) * frac, a.y + (b.y - a.y) * frac))
    return resampled


@register
class HMMBackend(ToolBackend):
    """B-spline movement; pointing only (the answer moves, it never
    clicks)."""

    name = "HMM"
    selenium_ready = False

    #: The original replays ~100 points with pyautogui's minimum sleep;
    #: effective pace is constant and brisk.
    POINT_INTERVAL_MS = 9.0

    def move_to_element(self, session: Session, element: Element) -> None:
        start = session.pipeline.pointer
        target = session.window.page_to_client(element.box.center)
        curve = bspline_path(start, target, self.rng)
        path: List[Tuple[float, Point]] = [
            (i * self.POINT_INTERVAL_MS, p) for i, p in enumerate(curve)
        ]
        self._walk(session, path)

    def click_element(self, session: Session, element: Element) -> None:
        # Movement-only tool: it can take the cursor there, but offers no
        # click of its own.
        self.move_to_element(session, element)
        raise Unsupported("HMM moves the cursor but does not click")
