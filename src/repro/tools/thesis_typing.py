"""The bachelor-thesis typing framework ([20] in the paper).

Noordzij's WildFragSim work incorporated typing rhythm from the HCI
literature into a Java framework: keystroke flight times drawn from
published distributions (data-based timings), plus straightforward
mouse movement to reach the field.  No dwell-time model (key press and
release are emitted back-to-back), no Shift synthesis, no scrolling.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.dom.element import Element
from repro.experiment.session import Session
from repro.geometry import Point
from repro.tools.base import ToolBackend, register

#: Flight-time parameters per context, lifted from HCI keystroke
#: literature (ms): (mean, sd).
FLIGHT_TABLE = {
    "default": (170.0, 55.0),
    "after_space": (320.0, 110.0),
    "after_sentence": (780.0, 260.0),
}


@register
class ThesisTypingBackend(ToolBackend):
    """Data-based typing rhythm; movement only as a means to an end."""

    name = "[20]"
    selenium_ready = True  # the thesis drives a Selenium-like framework

    POINT_INTERVAL_MS = 12.0

    def _flight(self, previous: str) -> float:
        if previous in ".!?":
            mean, sd = FLIGHT_TABLE["after_sentence"]
        elif previous == " ":
            mean, sd = FLIGHT_TABLE["after_space"]
        else:
            mean, sd = FLIGHT_TABLE["default"]
        return float(max(self.rng.normal(mean, sd), 20.0))

    def _move_to(self, session: Session, element: Element) -> None:
        start = session.pipeline.pointer
        target = session.window.page_to_client(element.box.center)
        n = 40
        path: List[Tuple[float, Point]] = []
        for i in range(n):
            tau = i / (n - 1)
            path.append(
                (
                    i * self.POINT_INTERVAL_MS,
                    Point(
                        start.x + (target.x - start.x) * tau,
                        start.y + (target.y - start.y) * tau,
                    ),
                )
            )
        self._walk(session, path)

    def type_text(self, session: Session, element: Element, text: str) -> None:
        self._move_to(session, element)
        session.pipeline.mouse_down()
        session.clock.advance(60.0)
        session.pipeline.mouse_up()
        previous = ""
        for char in text:
            if previous:
                session.clock.advance(self._flight(previous))
            # No dwell model: press and release back to back.
            session.pipeline.key_down(char)
            session.clock.advance(2.0)
            session.pipeline.key_up(char)
            previous = char
