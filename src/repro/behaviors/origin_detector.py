"""The (0,0)-origin detector (why Appendix F's warm-up matters).

A freshly opened automated browser has its (virtual) cursor parked at
the viewport origin; the first observed movement therefore starts at
(0, 0) -- a human's cursor is wherever their hand left it.  This is an
artificial-behaviour (level 1) signal that the *experiment*, not the
interaction API, must remove (by moving the mouse before the page
loads).
"""

from __future__ import annotations

from repro.detection.base import DetectionLevel, Detector, Verdict
from repro.events.recorder import EventRecorder

#: Radius around the origin considered "parked at (0,0)" (px).
ORIGIN_RADIUS_PX = 3.0


class OriginStartDetector(Detector):
    """First cursor activity begins exactly at the viewport origin."""

    name = "origin-start"
    level = DetectionLevel.ARTIFICIAL

    def observe(self, recorder: EventRecorder) -> Verdict:
        path = recorder.mouse_path()
        if not path:
            return self._human()
        _, x, y = path[0]
        if abs(x) <= ORIGIN_RADIUS_PX and abs(y) <= ORIGIN_RADIUS_PX:
            return self._bot(
                0.7,
                f"first cursor sample at ({x:.0f}, {y:.0f}) -- the parked "
                "position of a freshly opened automated browser",
            )
        return self._human()
