"""Experiment-level humanisation behaviours (the paper's Appendix F).

Appendix F lists aspects of human behaviour that "cannot be delegated to
an interaction API" because they may interfere with an experiment's
purpose -- they must be applied *at the experiment level*, by the study
author.  This package provides them as composable helpers:

- :func:`~repro.behaviors.session_behaviors.warm_up_cursor` -- "Mouse
  movement starting at (0,0), which can be solved by moving the mouse
  prior to loading a page";
- :class:`~repro.behaviors.session_behaviors.SpontaneousMovements` --
  "Adding random/spontaneous mouse movements";
- :func:`~repro.behaviors.session_behaviors.misclick_then_correct` --
  "Misclicking";
- :class:`~repro.behaviors.typing_errors.TypoGenerator` -- "Introducing
  typing errors and more complex typing behaviour such as ... erasing
  and cancelling input";
- :func:`~repro.behaviors.session_behaviors.idle_select_deselect` --
  the "non-functional interaction" example (selecting and deselecting
  parts of a page without purpose).

None of these are wired into ``HLISA_ActionChains`` -- exactly as the
paper argues.  The corresponding detector,
:class:`~repro.behaviors.origin_detector.OriginStartDetector`, shows why
the warm-up matters.
"""

from repro.behaviors.session_behaviors import (
    SpontaneousMovements,
    idle_select_deselect,
    misclick_then_correct,
    warm_up_cursor,
)
from repro.behaviors.typing_errors import TypoGenerator
from repro.behaviors.origin_detector import OriginStartDetector

__all__ = [
    "warm_up_cursor",
    "SpontaneousMovements",
    "misclick_then_correct",
    "idle_select_deselect",
    "TypoGenerator",
    "OriginStartDetector",
]
