"""Session-level behaviours: warm-up, spontaneous movement, misclicks,
idle selection.

These operate on a driver (anything exposing ``window`` + ``pipeline``)
and intentionally live outside the HLISA chain API -- they belong to the
*experiment*, not to the interaction library (paper, Appendix F).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry import Point
from repro.models.bezier import hlisa_path
from repro.models.clicks import hlisa_dwell_ms


def _walk_path(driver, path) -> None:
    if not path:
        return
    moves = []
    previous = 0.0
    for t, point in path:
        moves.append((max(t - previous, 0.0), point))
        previous = t
    driver.pipeline.dispatch_batch(moves, repeat_final_forced=True)


def warm_up_cursor(driver, rng: Optional[np.random.Generator] = None) -> Point:
    """Move the cursor away from (0, 0) before the page is (re)loaded.

    Appendix F: "Mouse movement starting at (0,0), which can be solved by
    moving the mouse prior to loading a page."  Returns the warm-up
    target so experiments can log it.
    """
    rng = rng if rng is not None else np.random.default_rng()
    window = driver.window
    target = Point(
        float(rng.uniform(window.viewport_width * 0.2, window.viewport_width * 0.8)),
        float(rng.uniform(window.viewport_height * 0.2, window.viewport_height * 0.8)),
    )
    path = hlisa_path(driver.pipeline.pointer, target, rng)
    _walk_path(driver, path)
    return target


class SpontaneousMovements:
    """Occasional purposeless cursor wandering between actions.

    Call :meth:`maybe_wander` between experiment steps; with probability
    ``probability`` the cursor drifts to a nearby random point along a
    humanised path, as idle humans do.
    """

    def __init__(
        self,
        driver,
        probability: float = 0.3,
        max_drift_px: float = 220.0,
        seed: Optional[int] = None,
    ) -> None:
        self.driver = driver
        self.probability = probability
        self.max_drift_px = max_drift_px
        self.rng = np.random.default_rng(seed)

    def maybe_wander(self) -> bool:
        """Wander with the configured probability; returns whether it did."""
        if self.rng.random() >= self.probability:
            return False
        window = self.driver.window
        current = self.driver.pipeline.pointer
        drift = Point(
            float(
                np.clip(
                    current.x + self.rng.normal(0, self.max_drift_px / 2),
                    5,
                    window.viewport_width - 5,
                )
            ),
            float(
                np.clip(
                    current.y + self.rng.normal(0, self.max_drift_px / 2),
                    5,
                    window.viewport_height - 5,
                )
            ),
        )
        _walk_path(self.driver, hlisa_path(current, drift, self.rng))
        self.driver.window.clock.advance(float(self.rng.uniform(150, 900)))
        return True


def misclick_then_correct(
    driver,
    element,
    rng: Optional[np.random.Generator] = None,
    miss_distance_px: float = 28.0,
) -> None:
    """Click *next to* an element, pause, then click it properly.

    Appendix F lists misclicking among the behaviours to be handled "on
    the level of an experiment".  The miss lands just outside the
    element's boundary on the approach side.
    """
    rng = rng if rng is not None else np.random.default_rng()
    window = driver.window
    box = element.dom_element.box
    center = box.center
    angle = float(rng.uniform(0, 2 * np.pi))
    miss_page = Point(
        center.x + np.cos(angle) * (box.width / 2 + miss_distance_px),
        center.y + np.sin(angle) * (box.height / 2 + miss_distance_px),
    )
    miss_client = window.page_to_client(miss_page)
    miss_client = Point(
        float(np.clip(miss_client.x, 2, window.viewport_width - 2)),
        float(np.clip(miss_client.y, 2, window.viewport_height - 2)),
    )
    _walk_path(driver, hlisa_path(driver.pipeline.pointer, miss_client, rng))
    driver.pipeline.mouse_down()
    driver.window.clock.advance(hlisa_dwell_ms(rng))
    driver.pipeline.mouse_up()
    # Realise the mistake, pause, then correct.
    driver.window.clock.advance(float(rng.uniform(250, 700)))
    from repro.models.clicks import hlisa_click_point

    target_client = window.page_to_client(hlisa_click_point(box, rng))
    _walk_path(driver, hlisa_path(driver.pipeline.pointer, target_client, rng))
    driver.pipeline.mouse_down()
    driver.window.clock.advance(hlisa_dwell_ms(rng))
    driver.pipeline.mouse_up()


def idle_select_deselect(driver, rng: Optional[np.random.Generator] = None) -> None:
    """Select and deselect part of the page without purpose.

    Appendix F's example of "non-functional interaction with webpages":
    a short press-drag-release over text followed by a click elsewhere to
    deselect.
    """
    rng = rng if rng is not None else np.random.default_rng()
    window = driver.window
    start = driver.pipeline.pointer
    drag_end = Point(
        float(np.clip(start.x + rng.uniform(60, 180), 5, window.viewport_width - 5)),
        float(np.clip(start.y + rng.normal(0, 8), 5, window.viewport_height - 5)),
    )
    driver.pipeline.mouse_down()
    _walk_path(driver, hlisa_path(start, drag_end, rng))
    driver.window.clock.advance(float(rng.uniform(80, 300)))
    driver.pipeline.mouse_up()
    driver.window.clock.advance(float(rng.uniform(200, 600)))
    # Deselect: single click at the drag end.
    driver.pipeline.mouse_down()
    driver.window.clock.advance(hlisa_dwell_ms(rng))
    driver.pipeline.mouse_up()
