"""Typing errors and corrections (Appendix F).

"Introducing typing errors and more complex typing behaviour such as
reformulating sentences, pausing in longer texts, erasing and cancelling
input" is experiment-level behaviour.  :class:`TypoGenerator` rewrites a
text into the *keystroke sequence a human would actually produce*:
occasionally a neighbouring key is hit, noticed after a few more
characters, erased with Backspace, and retyped.

The output is plain text-with-Backspace tokens; feed it to any typing
model (HLISA's ``send_keys`` included) and the final field value equals
the intended text.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

#: QWERTY neighbourhoods for plausible substitution errors.
QWERTY_NEIGHBOURS = {
    "a": "qwsz", "b": "vghn", "c": "xdfv", "d": "serfcx", "e": "wsdr",
    "f": "drtgvc", "g": "ftyhbv", "h": "gyujnb", "i": "ujko", "j": "huikmn",
    "k": "jiolm", "l": "kop", "m": "njk", "n": "bhjm", "o": "iklp",
    "p": "ol", "q": "wa", "r": "edft", "s": "awedxz", "t": "rfgy",
    "u": "yhji", "v": "cfgb", "w": "qase", "x": "zsdc", "y": "tghu",
    "z": "asx",
}

#: Token representing a Backspace press in the generated sequence.
BACKSPACE = "Backspace"


class TypoGenerator:
    """Rewrites text into a human keystroke sequence with corrections."""

    def __init__(
        self,
        error_rate: float = 0.03,
        max_notice_delay: int = 3,
        seed: Optional[int] = None,
    ) -> None:
        if not 0.0 <= error_rate < 1.0:
            raise ValueError("error_rate must be in [0, 1)")
        #: Per-character probability of a substitution error.
        self.error_rate = error_rate
        #: How many further characters may be typed before noticing.
        self.max_notice_delay = max_notice_delay
        self.rng = np.random.default_rng(seed)

    def _wrong_key_for(self, char: str) -> str:
        neighbours = QWERTY_NEIGHBOURS.get(char.lower())
        if not neighbours:
            return char  # no plausible slip: typed correctly
        wrong = str(self.rng.choice(list(neighbours)))
        return wrong.upper() if char.isupper() else wrong

    def keystrokes(self, text: str) -> List[str]:
        """The full keystroke sequence (chars + Backspace tokens).

        Replaying it left-to-right against an editable field yields
        exactly ``text``.
        """
        sequence: List[str] = []
        i = 0
        while i < len(text):
            char = text[i]
            wrong = self._wrong_key_for(char)
            if wrong != char and self.rng.random() < self.error_rate:
                # Type the wrong key, continue for a moment, notice,
                # erase back to the error, resume correctly.
                sequence.append(wrong)
                extra = int(
                    self.rng.integers(0, min(self.max_notice_delay, len(text) - i - 1) + 1)
                )
                for j in range(extra):
                    sequence.append(text[i + 1 + j])
                sequence.extend([BACKSPACE] * (extra + 1))
                # Do not re-roll an error for the same position.
                sequence.append(char)
                for j in range(extra):
                    sequence.append(text[i + 1 + j])
                i += 1 + extra
            else:
                sequence.append(char)
                i += 1
        return sequence

    @staticmethod
    def replay(sequence: List[str]) -> str:
        """Apply a keystroke sequence to an empty buffer (for testing)."""
        buffer: List[str] = []
        for token in sequence:
            if token == BACKSPACE:
                if buffer:
                    buffer.pop()
            else:
                buffer.append(token)
        return "".join(buffer)

    def error_count(self, sequence: List[str]) -> int:
        """Number of corrections in a generated sequence."""
        return sum(1 for token in sequence if token == BACKSPACE)
