"""Command-line entry point: regenerate any paper artefact.

Usage::

    python -m repro table1            # Table 1: spoofing side effects
    python -m repro table2 --sites 300
    python -m repro fig3              # the arms-race tournament
    python -m repro all               # everything (full scale; slow-ish)
"""

from __future__ import annotations

import argparse
import sys

from repro.reports import REPORTS, field_study_report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the tables and figures of the HLISA paper.",
    )
    parser.add_argument(
        "artefact",
        choices=sorted(set(REPORTS)) + ["all"],
        help="which artefact to regenerate",
    )
    parser.add_argument(
        "--sites",
        type=int,
        default=1000,
        help="population size for the field study (table2/fig4)",
    )
    args = parser.parse_args(argv)

    if args.artefact == "all":
        names = ["table1", "table3", "table4", "fig1", "fig2", "fig3", "table2"]
    else:
        names = [args.artefact]
    for name in names:
        report = REPORTS[name]
        if report is field_study_report:
            print(report(n_sites=args.sites))
        else:
            print(report())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
