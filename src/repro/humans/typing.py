"""Human typing: dwell/flight times, contextual pauses, Shift, rollover.

Reproduces the typing phenomena of Section 4.1 / Appendix E:

- each keystroke has a *dwell time* (press to release) and a *flight time*
  (release to next press), both variable;
- fast typing interleaves key presses ("sometimes a key is only released
  when a different key has already been pressed");
- capital letters and shifted symbols require a **Shift** press before the
  character key and a release after it, from which a page can infer the
  keyboard layout;
- flight times carry **contextual pauses** in the style of Alves et
  al. [1]: longer before a new word, after commas, after closing and
  before opening sentences.

The output is an abstract key-event plan ``[(dt_ms, "down"/"up", key)]``
that any agent can feed into the input pipeline.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.humans.profile import HumanProfile

#: Characters that need Shift on a US layout.
SHIFTED_SYMBOLS = set('~!@#$%^&*()_+{}|:"<>?')


def needs_shift(char: str) -> bool:
    """Whether ``char`` requires the Shift modifier on a US layout."""
    return (char.isalpha() and char.isupper()) or char in SHIFTED_SYMBOLS


KeyEvent = Tuple[float, str, str]  # (dt since previous event, "down"/"up", key)


def lognormal_ms(rng: np.random.Generator, mean: float, sd: float) -> float:
    """A lognormal draw moment-matched to ``(mean, sd)``.

    Human keystroke timings are right-skewed, not normal (the paper's
    Appendix F concedes HLISA's normal model is a simplification).  The
    generative human therefore samples lognormally; the skew is exactly
    what a *refined* level-2 detector can exploit against stock HLISA
    (see :mod:`repro.models.refinements`).
    """
    if mean <= 0:
        raise ValueError("lognormal mean must be positive")
    variance_ratio = (sd / mean) ** 2
    sigma2 = np.log1p(variance_ratio)
    mu = np.log(mean) - sigma2 / 2.0
    return float(rng.lognormal(mu, np.sqrt(sigma2)))


class HumanTyping:
    """Generates human key-event plans for a piece of text.

    ``layout`` selects the keyboard layout whose modifier conventions
    the subject follows (defaults to US; pass
    :data:`repro.models.layouts.DE_LAYOUT` for a German typist).
    """

    def __init__(
        self,
        profile: Optional[HumanProfile] = None,
        rng: Optional[np.random.Generator] = None,
        layout=None,
    ) -> None:
        self.profile = profile or HumanProfile()
        self.rng = rng if rng is not None else self.profile.rng()
        if layout is None:
            from repro.models.layouts import US_LAYOUT

            layout = US_LAYOUT
        self.layout = layout

    # -- timing primitives ----------------------------------------------------

    def dwell_ms(self) -> float:
        """Key hold time (right-skewed, as real keystroke data is)."""
        value = lognormal_ms(
            self.rng, self.profile.key_dwell_mean_ms, self.profile.key_dwell_sd_ms
        )
        return float(max(value, 18.0))

    def flight_ms(self, previous: str, current: str) -> float:
        """Flight time from releasing ``previous`` to pressing ``current``.

        Contextual pauses are added based on what was just typed,
        following the categories of Alves et al.: word boundaries,
        commas, sentence boundaries.
        """
        profile = self.profile
        base = lognormal_ms(
            self.rng, profile.key_flight_mean_ms, profile.key_flight_sd_ms
        )
        extra = 0.0
        if previous == " ":
            extra += self._pause(profile.pause_new_word_ms)
        if previous == ",":
            extra += self._pause(profile.pause_comma_ms)
        if previous in ".!?":
            extra += self._pause(profile.pause_sentence_ms)
        if current.isupper() and previous in ".!?  ":
            # Opening a new sentence: planning pause before the capital.
            extra += self._pause(profile.pause_open_sentence_ms)
        return float(max(base, 15.0) + extra)

    def _pause(self, mean_ms: float) -> float:
        sd = mean_ms * self.profile.pause_sd_frac
        return float(max(self.rng.normal(mean_ms, sd), 0.0))

    # -- plan generation ----------------------------------------------------------

    def plan(self, text: str) -> List[KeyEvent]:
        """Key-event plan for typing ``text``.

        Shift is pressed/released around shifted characters; with
        probability :attr:`HumanProfile.rollover_prob` a fast transition
        interleaves the next press before the previous release.
        """
        from repro.models.layouts import PLAIN, SHIFT

        events: List[KeyEvent] = []
        previous_char: Optional[str] = None
        for char in text:
            flight = 0.0 if previous_char is None else self.flight_ms(previous_char, char)
            modifier = self.layout.modifier_for(char)
            shifted = modifier is not PLAIN
            dwell = self.dwell_ms()
            if shifted:
                # The modifier leads the character press by a short
                # interval and is released shortly after the character.
                modifier_key = "Shift" if modifier is SHIFT else "AltGraph"
                shift_lead = float(max(self.rng.normal(45.0, 15.0), 10.0))
                shift_lag = float(max(self.rng.normal(35.0, 12.0), 5.0))
                events.append((max(flight - shift_lead, 5.0), "down", modifier_key))
                events.append((shift_lead, "down", char))
                events.append((dwell, "up", char))
                events.append((shift_lag, "up", modifier_key))
            else:
                rollover = (
                    previous_char is not None
                    and not needs_shift(previous_char)
                    and self.rng.random() < self.profile.rollover_prob
                )
                if rollover and events:
                    # Press the next key *before* the previous key's
                    # release: swap the order by inserting the press with
                    # a negative lead relative to the pending release.
                    overlap = float(np.clip(self.rng.normal(25.0, 10.0), 5.0, 60.0))
                    last_dt, last_kind, last_key = events[-1]
                    if last_kind == "up" and last_dt > overlap + 5.0:
                        events[-1] = (last_dt - overlap, "down", char)
                        events.append((overlap, "up", last_key))
                        events.append((dwell, "up", char))
                        previous_char = char
                        continue
                events.append((flight, "down", char))
                events.append((dwell, "up", char))
            previous_char = char
        return events

    def characters_per_minute(self, text: str) -> float:
        """Expected typing speed for ``text`` under this profile."""
        plan = self.plan(text)
        total_ms = sum(dt for dt, _, _ in plan)
        if total_ms <= 0:
            return 0.0
        return len(text) / (total_ms / 60000.0)
