"""Human click placement and button dwell.

Fig. 2 (top right): human clicks are "much more distributed but hardly
ever in the centre" of the element.  The generator samples a bivariate
Gaussian around the centre, scaled to the element, clamped inside it with
a small margin, and adds a systematic bias along the approach direction
(people undershoot slightly towards where they came from).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry import Box, Point
from repro.humans.profile import HumanProfile


class HumanClicking:
    """Samples click positions and button dwell times."""

    def __init__(self, profile: Optional[HumanProfile] = None, rng: Optional[np.random.Generator] = None) -> None:
        self.profile = profile or HumanProfile()
        self.rng = rng if rng is not None else self.profile.rng()

    def click_point(
        self,
        box: Box,
        approach_from: Optional[Point] = None,
        speed_factor: float = 1.0,
    ) -> Point:
        """A click position inside ``box``, Gaussian around the centre.

        ``speed_factor`` expresses how hurried the approach movement was
        relative to the subject's typical pace; faster approaches scatter
        wider (the speed-accuracy trade-off level-3 detectors track --
        Section 4.2: "faster mouse movement may be correlated with ...
        accuracy").
        """
        profile = self.profile
        center = box.center
        accuracy_scale = float(np.clip(speed_factor**1.5, 0.5, 2.5))
        sigma_x = max(box.width / 2.0 * profile.click_sigma_frac * accuracy_scale, 0.5)
        sigma_y = max(box.height / 2.0 * profile.click_sigma_frac * accuracy_scale, 0.5)
        x = float(self.rng.normal(center.x, sigma_x))
        y = float(self.rng.normal(center.y, sigma_y))
        if approach_from is not None:
            # Undershoot: a small bias towards the approach side, bounded
            # by a fraction of the element size (not of the approach
            # distance -- the hand corrects most of the way).
            dx = approach_from.x - center.x
            dy = approach_from.y - center.y
            dist = max((dx**2 + dy**2) ** 0.5, 1e-9)
            magnitude = min(box.width, box.height) * profile.click_bias_frac
            x += dx / dist * magnitude
            y += dy / dist * magnitude
        # Keep a safety margin so clamping cannot put the click on the
        # border (humans aim inside the visual boundary).
        margin_x = min(2.0, box.width / 4.0)
        margin_y = min(2.0, box.height / 4.0)
        inner = Box(
            box.x + margin_x,
            box.y + margin_y,
            max(box.width - 2 * margin_x, 0.0),
            max(box.height - 2 * margin_y, 0.0),
        )
        return inner.clamp(Point(x, y))

    def dwell_ms(self) -> float:
        """Mouse-button hold time (press to release), in ms."""
        value = self.rng.normal(
            self.profile.click_dwell_mean_ms, self.profile.click_dwell_sd_ms
        )
        return float(max(value, 25.0))

    def double_click_gap_ms(self) -> float:
        """Release-to-press gap inside a double click (must stay well
        under the environment's interval -- 500 ms by default)."""
        return float(np.clip(self.rng.normal(120.0, 35.0), 40.0, 350.0))
