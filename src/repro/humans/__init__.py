"""A generative model of human interaction.

The paper contrasts Selenium's interaction with that of a human (the
authors themselves, Appendix E).  With no humans available offline, this
package provides the "human subject": a physiologically-grounded generator
of pointing, clicking, typing and scrolling behaviour whose *qualitative*
signatures match the paper's observations:

- mouse movement with initial acceleration, deceleration near the target,
  and a jittery curved trajectory (Fig. 1 B) -- minimum-jerk velocity
  profiles with motor noise, Fitts'-law durations;
- clicks distributed around (but almost never exactly on) element centres
  (Fig. 2 top-right) -- bivariate Gaussian scatter with clamping;
- typing with variable dwell/flight times, contextual pauses in the style
  of Alves et al., Shift usage for capitals, and occasional rollover
  (interleaved key presses) at speed;
- mouse-wheel scrolling in 57 px ticks with short inter-tick pauses and
  longer finger-repositioning breaks.

Parameters live in :class:`~repro.humans.profile.HumanProfile`; all
randomness flows from a seeded generator for reproducibility.
"""

from repro.humans.profile import HumanProfile
from repro.humans.pointing import HumanPointing, fitts_duration_ms
from repro.humans.clicking import HumanClicking
from repro.humans.typing import HumanTyping
from repro.humans.scrolling import HumanScrolling

__all__ = [
    "HumanProfile",
    "HumanPointing",
    "fitts_duration_ms",
    "HumanClicking",
    "HumanTyping",
    "HumanScrolling",
]
