"""Human mouse-wheel scrolling.

Appendix E: the subject scrolled a 30,000 px page "via the mouse wheel
from top to bottom at a comfortable pace".  The signature (Section 4.1):

- one wheel tick scrolls a fixed distance (57 px in the paper's setup);
- consecutive ticks are separated by short, normally-distributed pauses;
- every few ticks the finger returns to the top of the wheel, causing a
  noticeably longer break.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.humans.profile import HumanProfile

ScrollTick = Tuple[float, float]  # (dt since previous tick ms, delta_y px)


class HumanScrolling:
    """Generates wheel-tick plans covering a scroll distance."""

    def __init__(self, profile: Optional[HumanProfile] = None, rng: Optional[np.random.Generator] = None) -> None:
        self.profile = profile or HumanProfile()
        self.rng = rng if rng is not None else self.profile.rng()

    def plan(self, distance_px: float) -> List[ScrollTick]:
        """Wheel ticks that cover ``distance_px`` (sign = direction).

        The last tick may overshoot the distance by part of a tick, as a
        real wheel would.  Tick pauses are realised one batched draw per
        wheel sweep, preserving the scalar draw order (sweep length, tick
        pauses, finger pause, ...) byte-for-byte.
        """
        from repro.models.scroll_cadence import count_wheel_ticks

        profile = self.profile
        if distance_px == 0:
            return []
        direction = 1.0 if distance_px > 0 else -1.0
        delta = direction * profile.wheel_tick_px
        total = count_wheel_ticks(abs(distance_px), profile.wheel_tick_px)
        pauses: List[float] = []
        sweep_length = self._sweep_length()
        group = min(sweep_length, total)
        pauses.append(0.0)
        pauses.extend(self._tick_pauses(group - 1))
        emitted = group
        while emitted < total:
            pauses.append(self._finger_pause())
            sweep_length = self._sweep_length()
            group = min(sweep_length, total - emitted)
            pauses.extend(self._tick_pauses(group - 1))
            emitted += group
        return [(pause, delta) for pause in pauses]

    def _tick_pause(self) -> float:
        value = self.rng.normal(
            self.profile.scroll_tick_pause_mean_ms, self.profile.scroll_tick_pause_sd_ms
        )
        return float(max(value, 15.0))

    def _tick_pauses(self, count: int) -> List[float]:
        """``count`` inter-tick pauses as one stream-preserving batch."""
        if count <= 0:
            return []
        draws = self.rng.normal(
            self.profile.scroll_tick_pause_mean_ms,
            self.profile.scroll_tick_pause_sd_ms,
            size=count,
        )
        return np.maximum(draws, 15.0).tolist()

    def _finger_pause(self) -> float:
        """The longer break while the finger moves back on the wheel."""
        value = self.rng.normal(
            self.profile.scroll_finger_pause_mean_ms,
            self.profile.scroll_finger_pause_sd_ms,
        )
        return float(max(value, 120.0))

    def _sweep_length(self) -> int:
        mean = self.profile.scroll_ticks_per_sweep_mean
        return int(max(2, round(self.rng.normal(mean, mean * 0.3))))

    # -- scrollbar dragging -----------------------------------------------------

    #: Frame interval while dragging the scrollbar thumb (display rate).
    DRAG_FRAME_MS = 16.0

    def plan_scrollbar_drag(
        self,
        distance_px: float,
        current_scroll_y: float = 0.0,
    ) -> List[Tuple[float, float]]:
        """A scrollbar drag: ``[(dt_ms, absolute_scroll_y), ...]``.

        Appendix D lists the scroll bar among the wheel-less scroll
        origins.  The thumb is browser chrome: the page sees *only* the
        resulting ``scroll`` events -- continuous, frame-paced, with a
        human reach profile (minimum-jerk plus hand tremor), nothing
        like wheel ticks.
        """
        from repro.humans.pointing import minimum_jerk_profile

        if distance_px == 0:
            return []
        # Drag duration grows sub-linearly with distance (it is one hand
        # movement, not repeated ticks).
        duration_ms = float(
            max(500.0, 300.0 + abs(distance_px) * 0.38)
            * np.exp(self.rng.normal(0.0, 0.15))
        )
        n = max(4, int(round(duration_ms / self.DRAG_FRAME_MS)))
        s = minimum_jerk_profile(n)
        tremor = self.rng.normal(0.0, abs(distance_px) * 0.004, size=n)
        tremor[0] = tremor[-1] = 0.0
        targets = current_scroll_y + distance_px * s + tremor
        return [(self.DRAG_FRAME_MS, target) for target in targets.tolist()[1:]]
