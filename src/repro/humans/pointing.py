"""Human pointing: minimum-jerk kinematics, curvature, tremor, corrections.

The paper (Fig. 1 B) characterises human mouse movement by: initial
acceleration, deceleration near the end, and a "jitterish curved
trajectory".  This generator composes:

1. a **minimum-jerk** time course (Flash & Hogan's 10t^3 - 15t^4 + 6t^5
   polynomial), giving the bell-shaped speed profile human reaching
   exhibits;
2. a movement **duration from Fitts' law** [Fitts 1954, cited by the
   paper], with lognormal trial-to-trial noise;
3. a low-frequency **bow** perpendicular to the chord (humans rarely move
   in straight lines; Phillips & Triggs 2001);
4. high-frequency smoothed **tremor** (jitter);
5. an optional corrective **submovement** near the target, producing the
   characteristic hooks of real cursor data.

The per-sample work is vectorised: positions, offsets and timestamps are
computed array-at-once and converted to the timestamped-point list in a
single pass.  RNG draw order is identical to the scalar formulation
(one array draw where the scalar code drew one array, scalar draws
elsewhere), so same-seed output is byte-identical to
:func:`repro.models.scalar_reference.scalar_human_path`.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import List, Optional, Tuple

import numpy as np

from repro.geometry import Point, timed_points
from repro.humans.profile import HumanProfile

#: Below this chord length a movement is degenerate: no samples, no time.
DEGENERATE_DISTANCE_PX = 1e-9

#: Ceiling on the corrective hook's time budget, as a fraction of the
#: sampled movement duration.  The hook is a small secondary submovement;
#: without the bound, floor-clamped durations reused the pre-hook ``dt``
#: and could exceed the Fitts-sampled duration by >50%.
CORRECTION_MAX_FRAC = 0.25


@lru_cache(maxsize=4096)
def fitts_duration_ms(
    distance: float,
    target_width: float,
    a_ms: float = 120.0,
    b_ms: float = 140.0,
) -> float:
    """Movement time from Fitts' law: ``MT = a + b * log2(D/W + 1)``.

    ``target_width`` below 1 px is clamped to keep the index of difficulty
    finite.  A degenerate movement (no distance to cover) takes no time at
    all -- returning ``a_ms`` here would send a zero-length move through
    the patched 50 ms Selenium lower bound as a stationary pointer move
    (see :mod:`repro.core.patching`); callers short-circuit instead.

    Memoised: experiment loops and replays evaluate the same
    ``(distance, width)`` geometry repeatedly.
    """
    if distance < DEGENERATE_DISTANCE_PX:
        return 0.0
    width = max(target_width, 1.0)
    index_of_difficulty = math.log2(distance / width + 1.0)
    return a_ms + b_ms * index_of_difficulty


@lru_cache(maxsize=512)
def minimum_jerk_profile(n: int) -> np.ndarray:
    """Normalised minimum-jerk position profile at ``n`` samples.

    Returns s(tau) for tau in [0, 1]: s = 10 tau^3 - 15 tau^4 + 6 tau^5.
    The derivative (speed) is bell-shaped: slow start, fast middle, slow
    end -- the acceleration/deceleration signature the paper requires.

    Memoised per ``n`` (sample counts repeat across movements on the same
    duration grid); the cached array is marked read-only.
    """
    tau = np.linspace(0.0, 1.0, n)
    s = 10.0 * tau**3 - 15.0 * tau**4 + 6.0 * tau**5
    s.flags.writeable = False
    return s


@lru_cache(maxsize=512)
def _tremor_envelope(n: int) -> np.ndarray:
    """Tremor fade envelope: full amplitude mid-path, zero at the ends."""
    envelope = np.sin(np.pi * np.linspace(0.0, 1.0, n)) ** 0.5
    envelope.flags.writeable = False
    return envelope


def _smoothed_noise(rng: np.random.Generator, n: int, sigma: float, kernel: int = 3) -> np.ndarray:
    """White noise convolved with a small box kernel (tremor-like).

    The convolution applies whenever a full kernel fits (``n >= kernel``);
    the previous ``n > kernel`` boundary skipped smoothing for exactly
    kernel-sized paths, so 3-sample movements carried raw tremor.
    Endpoints are zeroed after the convolution so the cursor starts and
    lands exactly.
    """
    if n <= 0:
        return np.zeros(0)
    raw = rng.normal(0.0, sigma, size=n)
    if kernel > 1 and n >= kernel:
        window = np.ones(kernel) / kernel
        raw = np.convolve(raw, window, mode="same")
    raw[0] = 0.0
    raw[-1] = 0.0
    return raw


class HumanPointing:
    """Generates timestamped human cursor paths between two points."""

    def __init__(self, profile: Optional[HumanProfile] = None, rng: Optional[np.random.Generator] = None) -> None:
        self.profile = profile or HumanProfile()
        self.rng = rng if rng is not None else self.profile.rng()

    def duration_ms(self, start: Point, end: Point, target_width: float) -> float:
        """Sampled movement duration for this trial (Fitts + noise).

        Degenerate movements take no time and draw no noise, matching
        :meth:`path`'s early return -- the pointer never moves, so no
        pointer-move duration exists to clamp.
        """
        distance = start.distance_to(end)
        if distance < DEGENERATE_DISTANCE_PX:
            return 0.0
        base = fitts_duration_ms(
            distance, target_width, self.profile.fitts_a_ms, self.profile.fitts_b_ms
        )
        noise = float(np.exp(self.rng.normal(0.0, self.profile.fitts_noise_sigma)))
        return max(base * noise, 2.0 * self.profile.sample_interval_ms)

    def path(
        self,
        start: Point,
        end: Point,
        *,
        target_width: float = 30.0,
        duration_ms: Optional[float] = None,
    ) -> List[Tuple[float, Point]]:
        """A timestamped path ``[(dt_ms, point), ...]`` from start to end.

        ``dt_ms`` values are offsets from movement onset; the final sample
        lands exactly on ``end`` (plus any corrective hook returning to
        it).
        """
        profile = self.profile
        distance = start.distance_to(end)
        if distance < DEGENERATE_DISTANCE_PX:
            return [(0.0, start)]
        if duration_ms is None:
            duration_ms = self.duration_ms(start, end, target_width)
        n = max(3, int(round(duration_ms / profile.sample_interval_ms)) + 1)
        s = minimum_jerk_profile(n)
        dt = duration_ms / (n - 1)

        # Chord direction and its perpendicular.
        ux, uy = (end.x - start.x) / distance, (end.y - start.y) / distance
        px, py = -uy, ux

        # Low-frequency bow: a half-sine arc with random amplitude/sign.
        amplitude = (
            distance
            * profile.curve_amplitude_frac
            * float(self.rng.normal(1.0, 0.35))
            * (1.0 if self.rng.random() < 0.5 else -1.0)
        )
        bow = amplitude * np.sin(np.pi * s)

        # High-frequency tremor, scaled down near both endpoints.
        tremor = _smoothed_noise(self.rng, n, profile.jitter_px)
        tremor = tremor * _tremor_envelope(n)

        # Array-at-once kernel: positions along the chord plus the
        # perpendicular offset, and the timestamp grid, in four
        # elementwise expressions instead of a per-sample Python loop.
        offsets = bow + tremor
        xs = start.x + (end.x - start.x) * s + offsets * px
        ys = start.y + (end.y - start.y) * s + offsets * py
        points: List[Tuple[float, Point]] = timed_points(np.arange(n) * dt, xs, ys)

        if self.rng.random() < profile.correction_prob and distance > 60.0:
            points = self._append_correction(points, end, dt, duration_ms)
        return points

    def _append_correction(
        self,
        points: List[Tuple[float, Point]],
        end: Point,
        dt: float,
        duration_ms: float,
    ) -> List[Tuple[float, Point]]:
        """Overshoot slightly past the target, then hook back onto it.

        The hook's sample interval is bounded so the whole hook fits in
        :data:`CORRECTION_MAX_FRAC` of the sampled movement duration --
        reusing the pre-hook ``dt`` unbounded let floor-clamped durations
        overshoot the Fitts-sampled total by >50%.
        """
        last_t = points[-1][0]
        overshoot = Point(
            end.x + float(self.rng.normal(0.0, 4.0)),
            end.y + float(self.rng.normal(0.0, 4.0)),
        )
        hook_samples = int(self.rng.integers(2, 5))
        hook_dt = min(dt, CORRECTION_MAX_FRAC * duration_ms / (hook_samples + 1))
        out: List[Tuple[float, Point]] = list(points)
        for i in range(1, hook_samples + 1):
            tau = i / hook_samples
            out.append(
                (
                    last_t + i * hook_dt,
                    Point(
                        end.x + (overshoot.x - end.x) * math.sin(math.pi * tau),
                        end.y + (overshoot.y - end.y) * math.sin(math.pi * tau),
                    ),
                )
            )
        out.append((last_t + (hook_samples + 1) * hook_dt, end))
        return out
