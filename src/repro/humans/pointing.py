"""Human pointing: minimum-jerk kinematics, curvature, tremor, corrections.

The paper (Fig. 1 B) characterises human mouse movement by: initial
acceleration, deceleration near the end, and a "jitterish curved
trajectory".  This generator composes:

1. a **minimum-jerk** time course (Flash & Hogan's 10t^3 - 15t^4 + 6t^5
   polynomial), giving the bell-shaped speed profile human reaching
   exhibits;
2. a movement **duration from Fitts' law** [Fitts 1954, cited by the
   paper], with lognormal trial-to-trial noise;
3. a low-frequency **bow** perpendicular to the chord (humans rarely move
   in straight lines; Phillips & Triggs 2001);
4. high-frequency smoothed **tremor** (jitter);
5. an optional corrective **submovement** near the target, producing the
   characteristic hooks of real cursor data.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.geometry import Point
from repro.humans.profile import HumanProfile


def fitts_duration_ms(
    distance: float,
    target_width: float,
    a_ms: float = 120.0,
    b_ms: float = 140.0,
) -> float:
    """Movement time from Fitts' law: ``MT = a + b * log2(D/W + 1)``.

    ``target_width`` below 1 px is clamped to keep the index of difficulty
    finite.
    """
    width = max(target_width, 1.0)
    index_of_difficulty = math.log2(distance / width + 1.0)
    return a_ms + b_ms * index_of_difficulty


def minimum_jerk_profile(n: int) -> np.ndarray:
    """Normalised minimum-jerk position profile at ``n`` samples.

    Returns s(tau) for tau in [0, 1]: s = 10 tau^3 - 15 tau^4 + 6 tau^5.
    The derivative (speed) is bell-shaped: slow start, fast middle, slow
    end -- the acceleration/deceleration signature the paper requires.
    """
    tau = np.linspace(0.0, 1.0, n)
    return 10.0 * tau**3 - 15.0 * tau**4 + 6.0 * tau**5


def _smoothed_noise(rng: np.random.Generator, n: int, sigma: float, kernel: int = 3) -> np.ndarray:
    """White noise convolved with a small box kernel (tremor-like)."""
    if n <= 0:
        return np.zeros(0)
    raw = rng.normal(0.0, sigma, size=n)
    if kernel > 1 and n > kernel:
        window = np.ones(kernel) / kernel
        raw = np.convolve(raw, window, mode="same")
    raw[0] = 0.0
    raw[-1] = 0.0
    return raw


class HumanPointing:
    """Generates timestamped human cursor paths between two points."""

    def __init__(self, profile: Optional[HumanProfile] = None, rng: Optional[np.random.Generator] = None) -> None:
        self.profile = profile or HumanProfile()
        self.rng = rng if rng is not None else self.profile.rng()

    def duration_ms(self, start: Point, end: Point, target_width: float) -> float:
        """Sampled movement duration for this trial (Fitts + noise)."""
        distance = start.distance_to(end)
        base = fitts_duration_ms(
            distance, target_width, self.profile.fitts_a_ms, self.profile.fitts_b_ms
        )
        noise = float(np.exp(self.rng.normal(0.0, self.profile.fitts_noise_sigma)))
        return max(base * noise, 2.0 * self.profile.sample_interval_ms)

    def path(
        self,
        start: Point,
        end: Point,
        *,
        target_width: float = 30.0,
        duration_ms: Optional[float] = None,
    ) -> List[Tuple[float, Point]]:
        """A timestamped path ``[(dt_ms, point), ...]`` from start to end.

        ``dt_ms`` values are offsets from movement onset; the final sample
        lands exactly on ``end`` (plus any corrective hook returning to
        it).
        """
        profile = self.profile
        distance = start.distance_to(end)
        if distance < 1e-9:
            return [(0.0, start)]
        if duration_ms is None:
            duration_ms = self.duration_ms(start, end, target_width)
        n = max(3, int(round(duration_ms / profile.sample_interval_ms)) + 1)
        s = minimum_jerk_profile(n)
        dt = duration_ms / (n - 1)

        # Chord direction and its perpendicular.
        ux, uy = (end.x - start.x) / distance, (end.y - start.y) / distance
        px, py = -uy, ux

        # Low-frequency bow: a half-sine arc with random amplitude/sign.
        amplitude = (
            distance
            * profile.curve_amplitude_frac
            * float(self.rng.normal(1.0, 0.35))
            * (1.0 if self.rng.random() < 0.5 else -1.0)
        )
        bow = amplitude * np.sin(np.pi * s)

        # High-frequency tremor, scaled down near both endpoints.
        tremor = _smoothed_noise(self.rng, n, profile.jitter_px)
        envelope = np.sin(np.pi * np.linspace(0.0, 1.0, n)) ** 0.5
        tremor = tremor * envelope

        offsets = bow + tremor
        points: List[Tuple[float, Point]] = []
        for i in range(n):
            along_x = start.x + (end.x - start.x) * s[i]
            along_y = start.y + (end.y - start.y) * s[i]
            points.append(
                (
                    i * dt,
                    Point(along_x + offsets[i] * px, along_y + offsets[i] * py),
                )
            )

        if self.rng.random() < profile.correction_prob and distance > 60.0:
            points = self._append_correction(points, end, dt)
        return points

    def _append_correction(
        self,
        points: List[Tuple[float, Point]],
        end: Point,
        dt: float,
    ) -> List[Tuple[float, Point]]:
        """Overshoot slightly past the target, then hook back onto it."""
        last_t = points[-1][0]
        overshoot = Point(
            end.x + float(self.rng.normal(0.0, 4.0)),
            end.y + float(self.rng.normal(0.0, 4.0)),
        )
        hook_samples = int(self.rng.integers(2, 5))
        out: List[Tuple[float, Point]] = list(points)
        for i in range(1, hook_samples + 1):
            tau = i / hook_samples
            out.append(
                (
                    last_t + i * dt,
                    Point(
                        end.x + (overshoot.x - end.x) * math.sin(math.pi * tau),
                        end.y + (overshoot.y - end.y) * math.sin(math.pi * tau),
                    ),
                )
            )
        out.append((last_t + (hook_samples + 1) * dt, end))
        return out
