"""Per-subject motor parameters.

The paper's human data came from an "extremely small set" of subjects (the
authors).  :class:`HumanProfile` captures the parameters such a subject
exhibits; :data:`SUBJECT_POOL` offers a few plausible presets so
experiments can be run against more than one "person" (the paper's own
future-work suggestion).

Magnitudes are drawn from the HCI literature the paper cites (Fitts 1954;
Phillips & Triggs 2001; Alves et al. 2007) and from its own measurements
(57 px wheel ticks, 600 cpm fast typing with rollover).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

import numpy as np


@dataclass
class HumanProfile:
    """Motor parameters of one simulated human subject."""

    name: str = "subject-a"
    seed: int = 7

    # -- pointing (Fitts' law: MT = a + b * log2(D/W + 1)) -------------------
    fitts_a_ms: float = 120.0
    fitts_b_ms: float = 140.0
    #: Multiplicative lognormal noise on movement time (sigma of log).
    #: This trial-to-trial variation carries the speed-accuracy coupling
    #: that level-3 detectors measure; real pointing data shows ~15-20%.
    fitts_noise_sigma: float = 0.17
    #: Bow of the path's main curve, as a fraction of movement distance.
    curve_amplitude_frac: float = 0.08
    #: Standard deviation of tremor/jitter perpendicular to the path (px).
    jitter_px: float = 2.8
    #: Probability of a corrective submovement near the target.
    correction_prob: float = 0.55
    #: Pointer sampling interval (ms); ~125 Hz mouse.
    sample_interval_ms: float = 8.0

    # -- clicking --------------------------------------------------------------
    #: Click scatter sigma as a fraction of the element's half-extent.
    click_sigma_frac: float = 0.28
    #: Mean/SD of mouse-button dwell time (ms).
    click_dwell_mean_ms: float = 85.0
    click_dwell_sd_ms: float = 22.0
    #: Systematic click bias towards the approach direction (fraction).
    click_bias_frac: float = 0.05

    # -- typing ------------------------------------------------------------------
    #: Mean/SD of key dwell time (ms).
    key_dwell_mean_ms: float = 95.0
    key_dwell_sd_ms: float = 24.0
    #: Mean/SD of within-word flight time (ms).  600 cpm ~= 100 ms/char.
    key_flight_mean_ms: float = 135.0
    key_flight_sd_ms: float = 45.0
    #: Probability that a fast transition interleaves (rollover).
    rollover_prob: float = 0.12
    #: Contextual pause means (ms), in the style of Alves et al. [1]:
    #: extra flight time before a new word / after a comma / after ending
    #: a sentence / before opening one.
    pause_new_word_ms: float = 210.0
    pause_comma_ms: float = 420.0
    pause_sentence_ms: float = 850.0
    pause_open_sentence_ms: float = 520.0
    #: SD of contextual pauses as a fraction of their mean.
    pause_sd_frac: float = 0.45

    # -- scrolling ------------------------------------------------------------------
    #: Pixels per wheel tick (paper: 57 in their setup).
    wheel_tick_px: float = 57.0
    #: Mean/SD of the pause between consecutive ticks (ms).
    scroll_tick_pause_mean_ms: float = 90.0
    scroll_tick_pause_sd_ms: float = 35.0
    #: Every ~N ticks the finger is repositioned, causing a longer break.
    scroll_ticks_per_sweep_mean: float = 7.0
    scroll_finger_pause_mean_ms: float = 380.0
    scroll_finger_pause_sd_ms: float = 130.0

    def rng(self) -> np.random.Generator:
        """A fresh seeded generator for this profile."""
        return np.random.default_rng(self.seed)

    def with_seed(self, seed: int) -> "HumanProfile":
        """A copy of this profile with a different seed."""
        return replace(self, seed=seed)


#: A small pool of subjects with plausibly different motor habits.  The
#: paper's limitations appendix cautions that its own subjects were not
#: representative; varying these parameters is the suggested remedy.
SUBJECT_POOL: Dict[str, HumanProfile] = {
    "subject-a": HumanProfile(name="subject-a", seed=7),
    "subject-b": HumanProfile(
        name="subject-b",
        seed=11,
        fitts_b_ms=170.0,
        jitter_px=3.8,
        click_sigma_frac=0.34,
        click_dwell_mean_ms=118.0,
        key_dwell_mean_ms=130.0,
        key_flight_mean_ms=180.0,
        scroll_tick_pause_mean_ms=115.0,
    ),
    "subject-c": HumanProfile(
        name="subject-c",
        seed=13,
        fitts_a_ms=95.0,
        fitts_b_ms=118.0,
        jitter_px=2.0,
        click_sigma_frac=0.21,
        click_dwell_mean_ms=62.0,
        key_dwell_mean_ms=68.0,
        key_flight_mean_ms=95.0,
        rollover_prob=0.2,
    ),
}
