"""``python -m repro.shard``: run a sharded crawl from the shell.

Examples::

    # 1000-site crawl, 4 workers, merged artifacts under out/
    python -m repro.shard --sites 1000 --jobs 4 --out out/

    # Prove the merge: re-run serially in-process and byte-compare
    python -m repro.shard --sites 200 --jobs 2 --out out/ --verify

``--verify`` is the oracle from ``docs/SHARDING.md`` in executable
form: it runs the identical crawl on one serial supervisor and diffs
every artifact (checkpoint, trace, metrics, records, ledger) byte for
byte, exiting non-zero on the first divergence.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import List, Optional, Tuple

from repro.crawl.population import (
    PopulationConfig,
    SiteConfig,
    generate_population,
    hostile_population,
)
from repro.faults.plan import FaultPlan
from repro.shard.executor import run_sharded_crawl
from repro.shard.merge import write_canonical_json
from repro.shard.worker import (
    WATCHDOGS_DEFAULT,
    WATCHDOGS_NONE,
    ShardRunSpec,
    build_supervisor,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.shard",
        description="Sharded parallel crawl with deterministic merge.",
    )
    parser.add_argument(
        "--out", required=True, help="output directory (manifest + artifacts)"
    )
    parser.add_argument(
        "--sites", type=int, default=200, help="population size (default 200)"
    )
    parser.add_argument(
        "--population-seed",
        type=int,
        default=2021,
        help="population generator seed (default 2021)",
    )
    parser.add_argument(
        "--hostile-fraction",
        type=float,
        default=0.0,
        help="fraction of hostile sites (default 0: paper population)",
    )
    parser.add_argument(
        "--name", default="OpenWPM", help="crawler name (default OpenWPM)"
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="crawl seed (default 1)"
    )
    parser.add_argument(
        "--instances",
        type=int,
        default=8,
        help="browser instances / visits per site (default 8)",
    )
    parser.add_argument(
        "--extension",
        action="store_true",
        help="crawl with the spoofing extension",
    )
    parser.add_argument(
        "--ledger",
        action="store_true",
        help="record the probe ledger per shard and merge it",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="per-visit fault probability (default 0: no fault plan)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=7,
        help="fault plan seed (default 7)",
    )
    parser.add_argument(
        "--no-watchdogs",
        action="store_true",
        help="run the unprotected ablation (no recycle/crash watchdogs)",
    )
    parser.add_argument(
        "--shard-size",
        type=int,
        default=50,
        help="sites per shard (default 50)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (default 1: in-process, still sharded)",
    )
    parser.add_argument(
        "--max-shards",
        type=int,
        default=None,
        help="stop after N missing shards (interrupt injection; resume by "
        "re-running with the same --out)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="re-run serially in-process and byte-compare every artifact",
    )
    return parser


def _population(args: argparse.Namespace) -> List[SiteConfig]:
    if args.hostile_fraction > 0.0:
        return hostile_population(
            n_sites=args.sites,
            seed=args.population_seed,
            hostile_fraction=args.hostile_fraction,
        )
    return generate_population(
        PopulationConfig(n_sites=args.sites, seed=args.population_seed)
    )


def _verify(
    out_dir: Path,
    spec: ShardRunSpec,
    population: List[SiteConfig],
) -> int:
    """Serial oracle: same crawl on one supervisor, byte-diff everything."""
    supervisor = build_supervisor(spec)
    result = supervisor.crawl(
        population,
        checkpoint_path=out_dir / "serial.ckpt.json",
        trace_path=out_dir / "serial.trace.jsonl",
        ledger_path=out_dir / "serial.ledger.jsonl" if spec.ledger else None,
    )
    write_canonical_json(
        out_dir / "serial.metrics.json", supervisor.metrics.state_dict()
    )
    write_canonical_json(
        out_dir / "serial.records.json",
        [record.to_dict() for record in result.records],
    )

    pairs: List[Tuple[str, str]] = [
        ("crawl.ckpt.json", "serial.ckpt.json"),
        ("crawl.trace.jsonl", "serial.trace.jsonl"),
        ("crawl.metrics.json", "serial.metrics.json"),
        ("crawl.records.json", "serial.records.json"),
    ]
    if spec.ledger:
        pairs.append(("crawl.ledger.jsonl", "serial.ledger.jsonl"))
    failures = 0
    for merged_name, serial_name in pairs:
        merged_bytes = (out_dir / merged_name).read_bytes()
        serial_bytes = (out_dir / serial_name).read_bytes()
        verdict = "ok" if merged_bytes == serial_bytes else "MISMATCH"
        if verdict != "ok":
            failures += 1
        print(f"verify {merged_name} vs {serial_name}: {verdict}")
    if failures:
        print(f"verify FAILED: {failures} artifact(s) diverge from serial")
        return 1
    print("verify ok: merged output is byte-identical to the serial run")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    population = _population(args)
    fault_plan = None
    if args.fault_rate > 0.0:
        fault_plan = FaultPlan.generate(
            population,
            args.instances,
            rate=args.fault_rate,
            seed=args.fault_seed,
        )
    watchdogs = WATCHDOGS_NONE if args.no_watchdogs else WATCHDOGS_DEFAULT
    outcome = run_sharded_crawl(
        population,
        out_dir=args.out,
        crawler_name=args.name,
        seed=args.seed,
        instances=args.instances,
        with_extension=args.extension,
        fault_plan=fault_plan,
        ledger=args.ledger,
        watchdogs=watchdogs,
        shard_size=args.shard_size,
        jobs=args.jobs,
        max_shards=args.max_shards,
    )
    if not outcome.complete:
        print(
            json.dumps(
                {
                    "status": "interrupted",
                    "plan_digest": outcome.plan.digest,
                    "shards_total": len(outcome.plan),
                    "shards_run": outcome.shards_run,
                    "resume": f"re-run with the same --out ({args.out})",
                },
                indent=1,
            )
        )
        return 0
    stats = outcome.stats
    print(
        json.dumps(
            {
                "status": "complete",
                "plan_digest": outcome.plan.digest,
                "shards_total": len(outcome.plan),
                "shards_run": outcome.shards_run,
                "jobs": args.jobs,
                "visits": stats.visits,
                "reached": stats.reached,
                "failed": stats.failed,
                "recycles": stats.recycles,
                "clock_ms": outcome.clock_ms,
                "artifacts": {
                    "checkpoint": str(outcome.artifacts.checkpoint),
                    "trace": str(outcome.artifacts.trace),
                    "metrics": str(outcome.artifacts.metrics),
                    "records": str(outcome.artifacts.records),
                    "ledger": (
                        None
                        if outcome.artifacts.ledger is None
                        else str(outcome.artifacts.ledger)
                    ),
                },
            },
            indent=1,
        )
    )
    if args.verify:
        spec = ShardRunSpec(
            crawler_name=args.name,
            seed=args.seed,
            instances=args.instances,
            with_extension=args.extension,
            fault_plan=fault_plan,
            ledger=args.ledger,
            watchdogs=watchdogs,
        )
        return _verify(Path(args.out), spec, population)
    return 0
