"""The deterministic shard planner.

Shards are **contiguous blocks in population order** -- never a hash
partition.  The serial supervisor's virtual timeline is a left fold over
sites in population order, so only contiguous shards let the merge layer
rebase each shard's local timeline by a constant offset (the preceding
shards' total duration) and land every timestamp exactly where the
serial run put it.

Shard identity is seed-derived and content-addressed: ``shard_id``
hashes the seed, the shard index and the member sites, and the plan
``digest`` hashes the shard ids.  Neither depends on ``--jobs``, so the
same population and seed always produce the same plan no matter how
many workers execute it -- worker count only decides which process runs
which shard, and the merge consumes shards in index order regardless.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crawl.population import SiteConfig


def site_fingerprint(site: SiteConfig) -> str:
    """A cheap, stable content fingerprint of one site.

    Covers the fields that shape crawl control flow (identity,
    reachability, hostile mechanics) -- enough for the manifest to
    detect a population drifting between a run and its resumption.
    """
    hostile = site.hostile.value if site.hostile is not None else ""
    detector = site.detector.signal.value if site.detector is not None else ""
    return (
        f"{site.rank}:{site.domain}:{int(site.unreachable)}:"
        f"{hostile}:{detector}"
    )


def population_digest(population: Sequence[SiteConfig]) -> str:
    """Content digest of the whole population, in order."""
    digest = hashlib.sha256()
    for site in population:
        digest.update(site_fingerprint(site).encode())
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass(frozen=True)
class Shard:
    """One contiguous block of the population."""

    index: int
    #: Population offset of the first site (sites[start:start+len]).
    start: int
    sites: Tuple[SiteConfig, ...]
    #: Seed-derived, content-addressed identity.
    shard_id: str

    def __len__(self) -> int:
        return len(self.sites)


@dataclass(frozen=True)
class ShardPlan:
    """The full partition of one population."""

    seed: int
    shard_size: int
    population_digest: str
    #: Digest over the shard ids: two plans with equal digests partition
    #: equal populations identically.
    digest: str
    shards: Tuple[Shard, ...]

    def __len__(self) -> int:
        return len(self.shards)


def _shard_id(seed: int, index: int, sites: Sequence[SiteConfig]) -> str:
    digest = hashlib.sha256()
    digest.update(f"{seed}:{index}".encode())
    for site in sites:
        digest.update(b"\n")
        digest.update(site_fingerprint(site).encode())
    return digest.hexdigest()[:16]


def plan_shards(
    population: Sequence[SiteConfig], shard_size: int, seed: int
) -> ShardPlan:
    """Partition ``population`` into contiguous ``shard_size`` blocks.

    The final shard may be short.  An empty population yields an empty
    plan (nothing to crawl, nothing to merge).
    """
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    shards: List[Shard] = []
    for start in range(0, len(population), shard_size):
        sites = tuple(population[start : start + shard_size])
        shards.append(
            Shard(
                index=len(shards),
                start=start,
                sites=sites,
                shard_id=_shard_id(seed, len(shards), sites),
            )
        )
    plan_digest = hashlib.sha256()
    plan_digest.update(f"{seed}:{shard_size}".encode())
    for shard in shards:
        plan_digest.update(shard.shard_id.encode())
        plan_digest.update(b"\n")
    return ShardPlan(
        seed=seed,
        shard_size=shard_size,
        population_digest=population_digest(population),
        digest=plan_digest.hexdigest(),
        shards=tuple(shards),
    )
