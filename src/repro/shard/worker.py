"""The per-shard unit of work: one supervisor, one clock, one bus.

A :class:`ShardTask` is a plain picklable description of one shard run;
:func:`run_shard` is the process-pool entry point that executes it.
Every shard builds its *own* :class:`~repro.crawl.supervisor.
CrawlSupervisor` -- and with it its own :class:`~repro.clock.
VirtualClock`, :class:`~repro.bus.EventBus`, :class:`~repro.obs.Tracer`,
metrics registry and (optionally) probe ledger -- so shards share no
mutable state whatsoever: bus isolation is by construction, not by
locking.

The supervisor's own site-boundary checkpointing gives mid-shard
interrupt/resume for free: ``run_shard`` passes a per-shard checkpoint
path, and a re-run of the same task resumes from it byte-identically.
The shard's final checkpoint doubles as the merge layer's input -- it
already carries the records, trace, metrics, stats, browser states and
ledger of the completed shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.crawl.crawler import OpenWPMCrawler
from repro.crawl.population import SiteConfig
from repro.crawl.supervisor import CrawlSupervisor, SupervisorConfig
from repro.faults.plan import FaultPlan
from repro.obs.probes import ProbeLedger
from repro.shard.state import fault_log_from_spans
from repro.spoofing.extension import SpoofingExtension

#: The two watchdog configurations the sharded executor supports: the
#: production set or the unprotected ablation.  Arbitrary watchdog sets
#: would need their own fold in :mod:`repro.shard.state`.
WATCHDOGS_DEFAULT = "default"
WATCHDOGS_NONE = "none"


@dataclass(frozen=True)
class ShardRunSpec:
    """Everything a worker needs to rebuild the supervisor in-process.

    Live objects (extension, ledger, watchdogs) are rebuilt from flags
    rather than pickled: the spoofing extension and watchdogs hold
    window/bus wiring that must be constructed fresh per process.
    """

    crawler_name: str
    seed: int
    instances: int
    with_extension: bool = False
    config: SupervisorConfig = field(default_factory=SupervisorConfig)
    fault_plan: Optional[FaultPlan] = None
    ledger: bool = False
    watchdogs: str = WATCHDOGS_DEFAULT

    def __post_init__(self) -> None:
        if self.watchdogs not in (WATCHDOGS_DEFAULT, WATCHDOGS_NONE):
            raise ValueError(
                f"watchdogs must be {WATCHDOGS_DEFAULT!r} or "
                f"{WATCHDOGS_NONE!r}, got {self.watchdogs!r}"
            )

    @property
    def recycling(self) -> bool:
        """Whether the recycle/crash watchdogs are active."""
        return self.watchdogs == WATCHDOGS_DEFAULT


@dataclass(frozen=True)
class ShardTask:
    """One shard run, picklable for the process pool."""

    spec: ShardRunSpec
    index: int
    sites: Tuple[SiteConfig, ...]
    out_dir: str
    #: Per-browser ``{"fault_count", "recycles"}`` entry states (the
    #: serial fold of the preceding shards, or fresh zeros in round 1).
    entry_states: Tuple[Dict[str, int], ...]
    #: Discard any prior output for this shard first (fixpoint re-runs
    #: must not resume from a checkpoint recorded under a stale entry
    #: state).
    fresh: bool = False


@dataclass(frozen=True)
class ShardPaths:
    """Where one shard's artifacts live inside the output directory."""

    checkpoint: Path
    trace: Path
    ledger: Path


def shard_paths(out_dir: Any, index: int) -> ShardPaths:
    """Zero-padded per-shard file names (sorted order == plan order)."""
    base = Path(out_dir) / f"shard-{index:04d}"
    return ShardPaths(
        checkpoint=base.with_name(base.name + ".ckpt.json"),
        trace=base.with_name(base.name + ".trace.jsonl"),
        ledger=base.with_name(base.name + ".ledger.jsonl"),
    )


def build_supervisor(spec: ShardRunSpec) -> CrawlSupervisor:
    """Construct the shard's supervisor stack from its picklable spec."""
    extension = SpoofingExtension() if spec.with_extension else None
    crawler = OpenWPMCrawler(
        spec.crawler_name,
        extension=extension,
        instances=spec.instances,
        seed=spec.seed,
    )
    return CrawlSupervisor(
        crawler,
        config=spec.config,
        plan=spec.fault_plan,
        probe_ledger=ProbeLedger() if spec.ledger else None,
        watchdogs=None if spec.recycling else (),
    )


def run_shard(task: ShardTask) -> Dict[str, Any]:
    """Execute one shard; returns its manifest meta record.

    The meta record carries the shard's duration and its fault log --
    read back off the trace, so a resumed shard reports its complete
    history.  The heavyweight artifacts (checkpoint, trace, ledger) go
    to disk under :func:`shard_paths`.
    """
    spec = task.spec
    paths = shard_paths(task.out_dir, task.index)
    if task.fresh:
        for path in (paths.checkpoint, paths.trace, paths.ledger):
            if path.exists():
                path.unlink()
    supervisor = build_supervisor(spec)
    supervisor.crawl_shard(
        list(task.sites),
        entry_browser_states=[dict(s) for s in task.entry_states],
        checkpoint_path=paths.checkpoint,
        trace_path=paths.trace,
        ledger_path=paths.ledger if spec.ledger else None,
    )
    log = fault_log_from_spans(supervisor.tracer.spans)
    return {
        "shard": task.index,
        "duration_ms": supervisor.clock.now(),
        "fault_log": [
            [entry.browser, int(entry.fatal), int(entry.triggered)]
            for entry in log
        ],
    }
