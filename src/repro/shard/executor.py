"""The process-pool shard executor and its determinism fixpoint.

Execution is two rounds at most:

**Round 1** runs every shard the manifest does not record yet, each with
*fresh* browser entry states.  Fault sequences are entry-state
independent (:mod:`repro.shard.state`), so a round-one run already
observes the shard's true fault log -- possibly with recycle triggers in
the wrong places.

**Round 2** folds the recorded logs across the plan in order, computing
each shard's true serial entry state and the trigger positions that
state implies.  Shards whose *observed* triggers already match are done;
the rest re-run once with the true entry state.  Because the log itself
cannot change, the re-run's observed triggers equal the fold's
prediction and the fixpoint closes -- a final verification pass asserts
exactly that.

Workers are plain ``multiprocessing.Pool`` processes; every task is
picklable and writes only its own ``shard-NNNN.*`` files, so the pool
needs no shared state and ``--jobs N`` changes nothing but wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import Pool
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.crawl.crawler import CrawlResult
from repro.crawl.population import SiteConfig
from repro.crawl.supervisor import SupervisorConfig, SupervisorStats
from repro.faults.plan import FaultPlan
from repro.shard.manifest import ShardManifest
from repro.shard.merge import MergedArtifacts, merge_shards
from repro.shard.plan import ShardPlan, plan_shards
from repro.shard.state import (
    fold_fault_log,
    fresh_browser_states,
    observed_triggers,
)
from repro.shard.worker import (
    WATCHDOGS_DEFAULT,
    ShardRunSpec,
    ShardTask,
    run_shard,
)


@dataclass(frozen=True)
class ShardedCrawlOutcome:
    """What one executor invocation produced.

    ``complete`` is False when ``max_shards`` stopped the run early (the
    interrupt case); the manifest then holds enough to resume, and
    ``result``/``stats``/``artifacts`` are None.
    """

    complete: bool
    out_dir: Path
    plan: ShardPlan
    #: Shards executed by *this* invocation (resumed runs skip recorded
    #: ones; fixpoint re-runs count again).
    shards_run: int
    result: Optional[CrawlResult]
    stats: Optional[SupervisorStats]
    clock_ms: Optional[float]
    artifacts: Optional[MergedArtifacts]


def _run_tasks(
    tasks: Sequence[ShardTask], jobs: int
) -> List[Dict[str, object]]:
    if not tasks:
        return []
    if jobs <= 1:
        return [run_shard(task) for task in tasks]
    with Pool(processes=min(jobs, len(tasks))) as pool:
        return pool.map(run_shard, tasks)


def run_sharded_crawl(
    population: Sequence[SiteConfig],
    *,
    out_dir: Union[str, Path],
    crawler_name: str = "OpenWPM",
    seed: int = 1,
    instances: int = 8,
    with_extension: bool = False,
    config: Optional[SupervisorConfig] = None,
    fault_plan: Optional[FaultPlan] = None,
    ledger: bool = False,
    watchdogs: str = WATCHDOGS_DEFAULT,
    shard_size: int = 50,
    jobs: int = 1,
    max_shards: Optional[int] = None,
) -> ShardedCrawlOutcome:
    """Crawl ``population`` in shards and merge serial-identical output.

    Resumable: re-invoking with the same population, seed and output
    directory skips shards the manifest records and picks up mid-shard
    supervisor checkpoints for the rest.  ``max_shards`` bounds how many
    missing shards this invocation executes (interrupt injection for
    tests; None means all).
    """
    spec = ShardRunSpec(
        crawler_name=crawler_name,
        seed=seed,
        instances=instances,
        with_extension=with_extension,
        config=config if config is not None else SupervisorConfig(),
        fault_plan=fault_plan,
        ledger=ledger,
        watchdogs=watchdogs,
    )
    plan = plan_shards(population, shard_size, seed)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    manifest = ShardManifest.load_or_create(out_dir, plan, spec)

    # -- round 1: run missing shards with fresh entry states ------------
    fresh = tuple(
        {k: v for k, v in state.items()}
        for state in fresh_browser_states(instances)
    )
    missing = [
        shard for shard in plan.shards if manifest.shard_meta(shard.index) is None
    ]
    if max_shards is not None:
        missing = missing[:max_shards]
    round_one = [
        ShardTask(
            spec=spec,
            index=shard.index,
            sites=shard.sites,
            out_dir=str(out_dir),
            entry_states=fresh,
        )
        for shard in missing
    ]
    for meta in _run_tasks(round_one, jobs):
        manifest.record_shard(meta)
    manifest.save()
    shards_run = len(round_one)

    if manifest.completed() < len(plan):
        return ShardedCrawlOutcome(
            complete=False,
            out_dir=out_dir,
            plan=plan,
            shards_run=shards_run,
            result=None,
            stats=None,
            clock_ms=None,
            artifacts=None,
        )

    # -- round 2: fixpoint on recycle-trigger positions -----------------
    reruns: List[ShardTask] = []
    entry = [dict(state) for state in fresh_browser_states(instances)]
    for shard in plan.shards:
        log = manifest.fault_log(shard.index)
        exit_states, want = fold_fault_log(
            entry, log, spec.config.recycle_after_faults, spec.recycling
        )
        if want != observed_triggers(log):
            reruns.append(
                ShardTask(
                    spec=spec,
                    index=shard.index,
                    sites=shard.sites,
                    out_dir=str(out_dir),
                    entry_states=tuple(dict(s) for s in entry),
                    fresh=True,
                )
            )
        entry = exit_states
    for meta in _run_tasks(reruns, jobs):
        manifest.record_shard(meta)
    manifest.save()
    shards_run += len(reruns)

    # -- verify convergence and compute the final browser states --------
    entry = [dict(state) for state in fresh_browser_states(instances)]
    for shard in plan.shards:
        log = manifest.fault_log(shard.index)
        exit_states, want = fold_fault_log(
            entry, log, spec.config.recycle_after_faults, spec.recycling
        )
        if want != observed_triggers(log):
            raise RuntimeError(
                f"shard {shard.index} did not converge after re-run: "
                f"expected recycle triggers {want}, observed "
                f"{observed_triggers(log)}"
            )
        entry = exit_states

    merged = merge_shards(out_dir, plan, spec, entry)
    return ShardedCrawlOutcome(
        complete=True,
        out_dir=out_dir,
        plan=plan,
        shards_run=shards_run,
        result=merged.result,
        stats=merged.stats,
        clock_ms=merged.clock_ms,
        artifacts=merged.artifacts,
    )
