"""``repro.shard``: sharded parallel crawl execution, deterministically.

The :class:`~repro.crawl.supervisor.CrawlSupervisor` executes one visit
at a time on a single simulated clock.  This package scales it across a
process pool without giving up the byte-identity contract every prior
layer protects:

- :mod:`repro.shard.plan` -- a deterministic planner partitioning the
  population into contiguous shards with stable, seed-derived identities
  (independent of worker count);
- :mod:`repro.shard.worker` -- the per-shard unit of work: one
  supervisor + event bus + tracer + virtual clock per shard, runnable in
  a pool worker;
- :mod:`repro.shard.state` -- the cross-shard browser-health algebra:
  fault logs folded into the per-browser fault/recycle counters a serial
  crawl would carry into each shard;
- :mod:`repro.shard.executor` -- the pool driver: runs shards (with a
  provisional fresh entry state), folds the observed fault logs, and
  re-runs exactly the shards whose recycle decisions would differ under
  the true serial entry state (a fixpoint reached in at most two rounds,
  because fault sequences are entry-state-independent);
- :mod:`repro.shard.merge` -- recombines per-shard VisitRecords,
  traces, metrics, probe ledgers and checkpoints into artifacts
  byte-identical to a serial run's;
- :mod:`repro.shard.manifest` -- the resume manifest: a partially
  completed sharded crawl picks up where it stopped (mid-shard via the
  per-shard supervisor checkpoints, cross-shard via recorded fault
  logs);
- :mod:`repro.shard.cli` -- ``python -m repro.shard`` with ``--jobs N``.

See ``docs/SHARDING.md`` for the planner/executor/merge contract and
the determinism invariants (dyadic clock grid, contiguous shards,
entry-state fixpoint).
"""

from repro.shard.executor import ShardedCrawlOutcome, run_sharded_crawl
from repro.shard.manifest import ManifestError, ShardManifest
from repro.shard.merge import MergedArtifacts, merge_shards, write_canonical_json
from repro.shard.plan import Shard, ShardPlan, plan_shards, population_digest
from repro.shard.state import (
    FaultLogEntry,
    fault_log_from_spans,
    fold_fault_log,
    fresh_browser_states,
    observed_triggers,
)
from repro.shard.worker import (
    ShardRunSpec,
    ShardTask,
    build_supervisor,
    run_shard,
    shard_paths,
)

__all__ = [
    "Shard",
    "ShardPlan",
    "plan_shards",
    "population_digest",
    "FaultLogEntry",
    "fresh_browser_states",
    "fault_log_from_spans",
    "fold_fault_log",
    "observed_triggers",
    "ShardRunSpec",
    "ShardTask",
    "build_supervisor",
    "run_shard",
    "shard_paths",
    "ShardManifest",
    "ManifestError",
    "MergedArtifacts",
    "merge_shards",
    "write_canonical_json",
    "ShardedCrawlOutcome",
    "run_sharded_crawl",
]
