"""The sharded-crawl resume manifest.

``manifest.json`` in the output directory records what the executor
knows: the plan it is executing (digest, shard ids, population digest),
the run spec fingerprint, and -- per completed shard -- the meta record
:func:`repro.shard.worker.run_shard` returned (duration + fault log).

Resume contract (see ``docs/SHARDING.md``):

- a shard **absent** from the manifest has not completed; re-running it
  picks up any mid-shard supervisor checkpoint on disk;
- a shard **present** is complete; the executor re-runs it only if the
  fixpoint pass finds its recycle triggers diverge from the true serial
  entry state (:mod:`repro.shard.state`);
- a manifest whose plan digest or spec fingerprint does not match the
  requested run is an error, never silently reused.

Writes are atomic (tmp + replace), matching the supervisor's checkpoint
discipline.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.shard.plan import ShardPlan
from repro.shard.state import FaultLogEntry
from repro.shard.worker import ShardRunSpec

MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"


class ManifestError(ValueError):
    """Raised when a manifest cannot serve the requested run."""


def spec_fingerprint(spec: ShardRunSpec) -> Dict[str, Any]:
    """The JSON-safe identity of a run spec.

    The fault plan is summarised (seed, rate, size): the schedule is
    seed-derived, so the summary pins it without serialising every
    entry.
    """
    plan = spec.fault_plan
    return {
        "crawler_name": spec.crawler_name,
        "seed": spec.seed,
        "instances": spec.instances,
        "with_extension": spec.with_extension,
        "config": asdict(spec.config),
        "fault_plan": (
            None
            if plan is None
            else {"seed": plan.seed, "rate": plan.rate, "size": len(plan)}
        ),
        "ledger": spec.ledger,
        "watchdogs": spec.watchdogs,
    }


def decode_fault_log(raw: List[List[int]]) -> List[FaultLogEntry]:
    """Inverse of the ``fault_log`` wire form ``run_shard`` returns."""
    return [
        FaultLogEntry(int(browser), bool(fatal), bool(triggered))
        for browser, fatal, triggered in raw
    ]


@dataclass
class ShardManifest:
    """The executor's durable view of one sharded crawl."""

    path: Path
    data: Dict[str, Any]

    @classmethod
    def load_or_create(
        cls,
        out_dir: Union[str, Path],
        plan: ShardPlan,
        spec: ShardRunSpec,
    ) -> "ShardManifest":
        """Open the output directory's manifest, verifying it belongs to
        this plan and spec; create a fresh one if none exists."""
        path = Path(out_dir) / MANIFEST_NAME
        fingerprint = spec_fingerprint(spec)
        plan_record = {
            "digest": plan.digest,
            "seed": plan.seed,
            "shard_size": plan.shard_size,
            "shard_count": len(plan),
            "population_digest": plan.population_digest,
            "shard_ids": [shard.shard_id for shard in plan.shards],
        }
        if path.exists():
            data = json.loads(path.read_text())
            if data.get("version") != MANIFEST_VERSION:
                raise ManifestError(
                    f"unsupported manifest version in {path}"
                )
            if data.get("plan", {}).get("digest") != plan.digest:
                raise ManifestError(
                    f"{path} records a different shard plan; refusing to "
                    "mix outputs (use a fresh output directory)"
                )
            if data.get("spec") != fingerprint:
                raise ManifestError(
                    f"{path} records a different run spec; refusing to "
                    "mix outputs (use a fresh output directory)"
                )
            return cls(path=path, data=data)
        data = {
            "version": MANIFEST_VERSION,
            "plan": plan_record,
            "spec": fingerprint,
            "shards": {},
        }
        return cls(path=path, data=data)

    # -- per-shard records ----------------------------------------------

    def shard_meta(self, index: int) -> Optional[Dict[str, Any]]:
        """The recorded meta of shard ``index``, or None if incomplete."""
        return self.data["shards"].get(str(index))

    def record_shard(self, meta: Dict[str, Any]) -> None:
        """Record one completed shard's meta (``run_shard``'s result)."""
        self.data["shards"][str(meta["shard"])] = meta

    def completed(self) -> int:
        """How many shards have completed."""
        return len(self.data["shards"])

    def fault_log(self, index: int) -> List[FaultLogEntry]:
        """The recorded fault log of a completed shard."""
        meta = self.shard_meta(index)
        if meta is None:
            raise ManifestError(f"shard {index} has not completed")
        return decode_fault_log(meta["fault_log"])

    def save(self) -> None:
        """Atomically persist the manifest."""
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(self.data, sort_keys=True, indent=1))
        tmp.replace(self.path)
