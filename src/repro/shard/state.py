"""Cross-shard browser-health algebra: fault logs and their fold.

The *only* crawl-path state that crosses site (hence shard) boundaries
is the per-browser fault/recycle counter pair on
:class:`~repro.crawl.supervisor.BrowserInstance`.  Everything else a
visit observes derives from per-visit rng streams, the per-site circuit
breaker (fresh each site) or the virtual clock -- all invariant under
where the shard boundary falls.

Two facts make parallel sharding sound:

1. **Fault sequences are entry-state-independent.**  Whether an attempt
   faults, and with which type, comes from the fault plan and the visit
   rng -- never from the browser's accumulated counters.  So a shard
   run with *any* entry state observes the same ``(browser, fatal)``
   fault sequence.
2. **Recycle decisions are a fold over that sequence.**  The
   :class:`~repro.crawl.watchdogs.crash.CrashWatchdog` recycles on
   every fatal fault (state-independent); the
   :class:`~repro.crawl.watchdogs.recycle.RecycleWatchdog` recycles
   when the running non-fatal count reaches the budget -- the only
   entry-state-*dependent* observable.  :func:`fold_fault_log` replays
   that machine over a recorded log, so the executor can compute the
   true serial entry state of every shard from round-one logs alone and
   re-run exactly the shards whose recycle positions would differ.

The log itself is reconstructed from the shard's trace
(:func:`fault_log_from_spans`) rather than captured live: the trace
rides the per-shard checkpoint, so a shard interrupted and resumed
mid-way still reports its *complete* fault history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.faults.types import FaultType
from repro.obs.span import Span

#: Trace event the supervisor records for every observed fault.
FAULT_EVENT = "fault"

#: Trace event the recycle watchdog records when the fault budget
#: triggers -- the one entry-state-dependent observable.
RECYCLE_TRIGGER_EVENT = "watchdog.recycle.recycle_requested"

#: Span names the fault log is read from.
_ATTEMPT_SPAN = "attempt"
_VISIT_SPAN = "visit"


@dataclass(frozen=True)
class FaultLogEntry:
    """One observed fault, in timeline order."""

    #: Browser slot the fault struck (== the visit_index of the visit,
    #: the supervisor pins instance ``i`` to visit index ``i``).
    browser: int
    #: Browser-fatal faults recycle immediately via the crash watchdog.
    fatal: bool
    #: Whether the recycle watchdog's budget fired on this fault *in the
    #: run the log was read from* (used to detect entry-state drift).
    triggered: bool


def fresh_browser_states(instances: int) -> List[Dict[str, int]]:
    """The state every browser starts a serial crawl with."""
    return [{"fault_count": 0, "recycles": 0} for _ in range(instances)]


def fault_log_from_spans(spans: Sequence[Span]) -> List[FaultLogEntry]:
    """Reconstruct the shard's fault log from its span tree.

    Fault events live on ``attempt`` spans; the owning browser slot is
    the enclosing ``visit`` span's ``visit_index``.  Spans are stored in
    start order and attempts never overlap on the serial shard timeline,
    so walking spans (and each span's events) in order yields the
    chronological fault sequence.
    """
    by_id = {span.span_id: span for span in spans}
    log: List[FaultLogEntry] = []
    for span in spans:
        if span.name != _ATTEMPT_SPAN or not span.events:
            continue
        visit = by_id.get(span.parent_id)
        if visit is None or visit.name != _VISIT_SPAN:
            continue
        browser = int(visit.attrs["visit_index"])
        for event in span.events:
            if event.name == FAULT_EVENT:
                fatal = FaultType(event.attrs["fault_type"]).browser_fatal
                log.append(FaultLogEntry(browser, fatal, False))
            elif event.name == RECYCLE_TRIGGER_EVENT and log:
                last = log[-1]
                log[-1] = FaultLogEntry(last.browser, last.fatal, True)
    return log


def observed_triggers(log: Sequence[FaultLogEntry]) -> List[int]:
    """Positions where the recycle budget fired in the recorded run."""
    return [
        position for position, entry in enumerate(log) if entry.triggered
    ]


def fold_fault_log(
    entry_states: Sequence[Dict[str, int]],
    log: Sequence[FaultLogEntry],
    recycle_after_faults: int,
    recycling: bool = True,
) -> Tuple[List[Dict[str, int]], List[int]]:
    """Replay the watchdog recycle machine over a fault log.

    Returns ``(exit_states, trigger_positions)``: the per-browser
    fault/recycle counters after the log, and the log positions where
    the non-fatal fault budget fires.  ``recycling=False`` models the
    ``watchdogs=()`` ablation: counters never move and nothing triggers.
    """
    states = [dict(state) for state in entry_states]
    triggers: List[int] = []
    if not recycling:
        return states, triggers
    for position, entry in enumerate(log):
        state = states[entry.browser]
        if entry.fatal:
            # CrashWatchdog: immediate recycle, counter reset.
            state["recycles"] += 1
            state["fault_count"] = 0
            continue
        state["fault_count"] += 1
        if state["fault_count"] >= recycle_after_faults:
            triggers.append(position)
            state["recycles"] += 1
            state["fault_count"] = 0
    return states, triggers
