"""Recombining per-shard artifacts into serial-identical output.

Inputs are the per-shard supervisor checkpoints (which already carry
each shard's records, trace, metrics, stats, and optional ledger); the
observability splice lives in :mod:`repro.obs.merge`.  This module adds
the crawl-level assembly:

- **records**: shards are contiguous population blocks, so plain
  concatenation in shard order *is* the serial visit order;
- **stats**: work counters sum; result counters are reconciled from the
  merged records exactly as the serial supervisor reconciles its own;
- **checkpoint**: a version-2 supervisor checkpoint is assembled from
  the merged parts -- loadable by a serial
  :class:`~repro.crawl.supervisor.CrawlSupervisor` to extend the crawl,
  and byte-identical to the final checkpoint the serial run writes;
- **canonical files**: ``crawl.trace.jsonl`` / ``crawl.ledger.jsonl`` /
  ``crawl.metrics.json`` / ``crawl.records.json`` next to the
  checkpoint, each in the byte-stable form the oracle tests diff
  against a serial run.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.crawl.crawler import CrawlResult
from repro.crawl.supervisor import CHECKPOINT_VERSION, SupervisorStats
from repro.crawl.visit import VisitRecord
from repro.obs.export import trace_to_jsonl
from repro.obs.merge import (
    MergeError,
    merge_ledger_entries,
    merge_metrics_states,
    merge_spans,
    shard_durations,
)
from repro.obs.probes import LedgerEntry, ledger_to_jsonl
from repro.obs.span import Span
from repro.shard.plan import ShardPlan
from repro.shard.worker import ShardRunSpec, shard_paths

_SEPARATORS = (",", ":")

#: Work counters summed across shards verbatim (result counters --
#: visits/reached/failed/resumed -- are reconciled from records).
_SUMMED_STATS = (
    "attempts",
    "retries",
    "recovered",
    "faults_seen",
    "recycles",
    "breaker_skips",
)


@dataclass(frozen=True)
class MergedArtifacts:
    """The merged crawl's on-disk artifacts."""

    checkpoint: Path
    trace: Path
    metrics: Path
    records: Path
    ledger: Optional[Path]


def write_canonical_json(path: Union[str, Path], payload: Any) -> Path:
    """Byte-stable JSON: sorted keys, minimal separators, one newline."""
    path = Path(path)
    path.write_text(
        json.dumps(payload, sort_keys=True, separators=_SEPARATORS) + "\n"
    )
    return path


def _exact_sum(values: Sequence[float]) -> float:
    # A left fold, exactly like the serial clock's advance sequence; the
    # dyadic grid makes it exact, so the order spelled out here is
    # documentation more than necessity.
    total = 0.0
    for value in values:
        total += value
    return total


def merge_shards(
    out_dir: Union[str, Path],
    plan: ShardPlan,
    spec: ShardRunSpec,
    browser_states: Sequence[Dict[str, int]],
) -> "MergedCrawl":
    """Merge every shard's checkpoint into serial-identical artifacts.

    ``browser_states`` is the full-crawl exit state (the executor's fold
    of all shard fault logs) -- what the serial supervisor's browsers
    would hold at crawl end.
    """
    out_dir = Path(out_dir)
    payloads = []
    for shard in plan.shards:
        checkpoint = shard_paths(out_dir, shard.index).checkpoint
        if not checkpoint.exists():
            raise MergeError(
                f"shard {shard.index}: no checkpoint at {checkpoint}; "
                "merge requires a fully-executed plan"
            )
        payloads.append(json.loads(checkpoint.read_text()))

    shard_spans = [
        [Span.from_dict(data) for data in payload["trace"]["spans"]]
        for payload in payloads
    ]
    durations = shard_durations(shard_spans)
    merged_spans = merge_spans(shard_spans)
    clock_ms = _exact_sum(durations)
    metrics_state = merge_metrics_states(
        [payload["metrics"] for payload in payloads]
    )
    record_dicts: List[Dict[str, Any]] = []
    for payload in payloads:
        record_dicts.extend(payload["records"])

    stats = SupervisorStats()
    for payload in payloads:
        for name in _SUMMED_STATS:
            setattr(
                stats, name, getattr(stats, name) + int(payload["stats"][name])
            )
    stats.visits = len(record_dicts)
    stats.reached = sum(1 for record in record_dicts if record["reached"])
    stats.failed = stats.visits - stats.reached
    stats.resumed = 0

    merged_ledger: Optional[List[LedgerEntry]] = None
    if spec.ledger:
        merged_ledger = merge_ledger_entries(
            [
                [
                    LedgerEntry.from_dict(data)
                    for data in payload["ledger"]["entries"]
                ]
                for payload in payloads
            ],
            durations,
        )

    checkpoint_payload: Dict[str, Any] = {
        "version": CHECKPOINT_VERSION,
        "crawler_name": spec.crawler_name,
        "seed": spec.seed,
        "instances": spec.instances,
        "clock_ms": clock_ms,
        "stats": asdict(stats),
        "browsers": [dict(state) for state in browser_states],
        "trace": {
            "next_id": len(merged_spans) + 1,
            "open": [],
            "spans": [span.to_dict() for span in merged_spans],
        },
        "metrics": metrics_state,
        "records": record_dicts,
    }
    if merged_ledger is not None:
        checkpoint_payload["ledger"] = {
            "next_id": len(merged_ledger) + 1,
            "scopes": [],
            "entries": [entry.to_dict() for entry in merged_ledger],
        }

    checkpoint_path = out_dir / "crawl.ckpt.json"
    # Same non-canonical dumps the serial supervisor uses, so the two
    # checkpoint files are byte-comparable.
    tmp = checkpoint_path.with_name(checkpoint_path.name + ".tmp")
    tmp.write_text(json.dumps(checkpoint_payload))
    tmp.replace(checkpoint_path)

    trace_path = out_dir / "crawl.trace.jsonl"
    trace_path.write_text(trace_to_jsonl(merged_spans))
    metrics_path = write_canonical_json(
        out_dir / "crawl.metrics.json", metrics_state
    )
    records_path = write_canonical_json(
        out_dir / "crawl.records.json", record_dicts
    )
    ledger_path: Optional[Path] = None
    if merged_ledger is not None:
        ledger_path = out_dir / "crawl.ledger.jsonl"
        ledger_path.write_text(ledger_to_jsonl(merged_ledger))

    result = CrawlResult(
        crawler_name=spec.crawler_name,
        records=[VisitRecord.from_dict(data) for data in record_dicts],
    )
    return MergedCrawl(
        result=result,
        stats=stats,
        clock_ms=clock_ms,
        artifacts=MergedArtifacts(
            checkpoint=checkpoint_path,
            trace=trace_path,
            metrics=metrics_path,
            records=records_path,
            ledger=ledger_path,
        ),
    )


@dataclass
class MergedCrawl:
    """The merged crawl: result, stats, and artifact locations."""

    result: CrawlResult
    stats: SupervisorStats
    clock_ms: float
    artifacts: MergedArtifacts
