"""Committed JSON baseline for grandfathered findings.

A baseline lets the linter gate *new* violations while old ones are paid
down incrementally: findings whose fingerprint appears in the baseline
are reported as "baselined" and do not fail the run.

Fingerprints are content-addressed, not line-addressed: the hash covers
(rule id, file path, stripped source line, occurrence index among
identical lines in that file).  Edits elsewhere in a file shift line
numbers without invalidating its baseline entries; editing the offending
line itself -- including fixing it -- does invalidate the entry, which
is exactly the behaviour a ratchet needs.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List

from repro.lint.findings import Finding

BASELINE_VERSION = 1

#: Default baseline filename, looked up relative to the lint root.
DEFAULT_BASELINE_NAME = "lint-baseline.json"


def fingerprint(rule: str, path: str, snippet: str, occurrence: int) -> str:
    payload = "\0".join((rule, path, snippet, str(occurrence)))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def fingerprint_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Attach fingerprints; occurrence indices disambiguate duplicates.

    Callers must pass findings of one file in report order so occurrence
    numbering is stable.
    """
    counts: Counter = Counter()
    out: List[Finding] = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.snippet)
        occurrence = counts[key]
        counts[key] += 1
        out.append(
            Finding(
                rule=finding.rule,
                path=finding.path,
                line=finding.line,
                col=finding.col,
                message=finding.message,
                snippet=finding.snippet,
                severity=finding.severity,
                fingerprint=fingerprint(
                    finding.rule, finding.path, finding.snippet, occurrence
                ),
            )
        )
    return out


class Baseline:
    """The set of grandfathered fingerprints."""

    def __init__(self, entries: Dict[str, Dict[str, object]]) -> None:
        self.entries = entries

    @classmethod
    def empty(cls) -> "Baseline":
        return cls({})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(f"unsupported baseline version in {path}")
        return cls(dict(data.get("findings", {})))

    def __contains__(self, fp: str) -> bool:
        return fp in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    @staticmethod
    def write(
        path: Path,
        findings: Iterable[Finding],
        previous: "Baseline" = None,
    ) -> None:
        """Serialise ``findings`` as the new baseline (sorted, stable).

        ``previous`` carries hand-written ``justification`` fields over:
        an entry whose fingerprint survives the rewrite keeps its
        justification, so re-running ``--write-baseline`` never erases
        the documented rationale for grandfathered findings.
        """
        entries = {}
        for f in sorted(findings, key=Finding.sort_key):
            entry = {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "snippet": f.snippet,
            }
            if previous is not None:
                old = previous.entries.get(f.fingerprint, {})
                if "justification" in old:
                    entry["justification"] = old["justification"]
            entries[f.fingerprint] = entry
        payload = {"version": BASELINE_VERSION, "findings": entries}
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
