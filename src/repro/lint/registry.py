"""Rule base classes and the pluggable registry.

Rules self-register at import time via the :func:`register` decorator;
:mod:`repro.lint.rules` imports every rule module so that importing the
package is enough to populate the registry.  Registration order is
irrelevant -- drivers iterate rules sorted by id, which keeps serial and
parallel runs byte-identical.

Two rule kinds share one id namespace: per-module rules (subclass
:class:`Rule`, see one file at a time) and whole-program rules
(subclass :class:`ProjectRule`, see the cross-module
:class:`~repro.lint.graph.ProjectContext`).  The runner fans per-module
rules out over the process pool and runs project rules once, serially,
after every file is parsed.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Type

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding


class Rule:
    """One invariant check.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding one :class:`Finding` per violation.  ``scope`` restricts a
    rule to files whose path carries the matching scope tag (see
    :func:`repro.lint.context.path_scopes`); ``None`` applies everywhere.
    """

    id: str = ""
    name: str = ""
    family: str = ""
    rationale: str = ""
    scope: Optional[str] = None
    severity: str = "error"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return self.scope is None or self.scope in ctx.scopes

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    # -- helpers shared by concrete rules --------------------------------

    def finding(
        self, ctx: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=line,
            col=col,
            message=message,
            snippet=ctx.line_text(line),
            severity=self.severity,
        )


class ProjectRule(Rule):
    """One whole-program invariant check.

    Subclasses implement :meth:`check_project` over the shared
    :class:`~repro.lint.graph.ProjectContext` (symbol table, call
    graph, taint and reachability results are built once and cached on
    it).  ``scope`` is ignored: a project rule always sees the whole
    linted tree, and its findings land in whichever file the violating
    node lives.
    """

    whole_program = True

    def applies_to(self, ctx: ModuleContext) -> bool:
        return False  # never run from the per-module driver

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError("project rules implement check_project")

    def check_project(self, project) -> Iterator[Finding]:
        raise NotImplementedError


# Import-time registries: mutated only by @register while rule modules
# import, which replays identically in every pool worker (shard-safe).
_REGISTRY: Dict[str, Type[Rule]] = {}  # repro-lint: disable=SHD003
_PROJECT_REGISTRY: Dict[str, Type[ProjectRule]] = {}  # repro-lint: disable=SHD003


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    if not rule_cls.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in _REGISTRY or rule_cls.id in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    if getattr(rule_cls, "whole_program", False):
        _PROJECT_REGISTRY[rule_cls.id] = rule_cls
    else:
        _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules() -> List[Rule]:
    """Fresh instances of every per-module rule, sorted by id."""
    import repro.lint.rules  # noqa: F401  (populates the registry)

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def all_project_rules() -> List[ProjectRule]:
    """Fresh instances of every whole-program rule, sorted by id."""
    import repro.lint.rules  # noqa: F401  (populates the registry)

    return [_PROJECT_REGISTRY[rule_id]() for rule_id in sorted(_PROJECT_REGISTRY)]


def rules_by_family() -> Dict[str, List[Rule]]:
    grouped: Dict[str, List[Rule]] = {}
    for rule in all_rules() + all_project_rules():
        grouped.setdefault(rule.family, []).append(rule)
    return grouped
