"""``python -m repro.lint`` / ``repro-lint``: the command-line driver.

Exit codes: 0 clean (or fully baselined), 1 non-baselined findings,
2 usage errors.  ``--write-baseline`` grandfathers the current findings
and exits 0, establishing the ratchet a later run is held to.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.lint.report import (
    render_json,
    render_rules,
    render_sarif,
    render_text,
)
from repro.lint.runner import run_lint


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant linter: seed determinism (DET), fault "
            "discipline (FLT), event protocol (EVT), perf (PERF)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="root that report paths are made relative to (default: cwd)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (sarif: SARIF 2.1.0 for code-scanning upload)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "baseline JSON path (default: <root>/lint-baseline.json "
            "when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather the current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (0 = one per CPU; default: 1, serial)",
    )
    parser.add_argument(
        "--no-whole-program",
        action="store_true",
        help="skip the whole-program pass (XDET/SHD/BUS families)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule reference (grouped by family) and exit",
    )
    return parser


def _resolve_baseline(args, root: Path) -> Optional[Path]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Path(args.baseline)
    default = root / DEFAULT_BASELINE_NAME
    return default if default.exists() else None


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        sys.stdout.write(render_rules())
        return 0

    root = Path(args.root)
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    baseline_path = _resolve_baseline(args, root)

    baseline = Baseline.empty()
    if baseline_path is not None and not args.write_baseline:
        if not baseline_path.exists():
            parser.error(f"baseline file not found: {baseline_path}")
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            parser.error(str(exc))

    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(missing)}")

    report = run_lint(
        paths,
        root=root,
        baseline=baseline,
        jobs=jobs,
        whole_program=not args.no_whole_program,
    )

    if args.write_baseline:
        target = baseline_path or root / DEFAULT_BASELINE_NAME
        previous = Baseline.empty()
        if target.exists():
            try:
                previous = Baseline.load(target)
            except ValueError:
                pass
        Baseline.write(target, report.all_findings, previous=previous)
        sys.stdout.write(
            f"wrote {len(report.all_findings)} finding(s) to {target}\n"
        )
        return 0

    renderer = {
        "json": render_json,
        "sarif": render_sarif,
    }.get(args.format, render_text)
    sys.stdout.write(renderer(report))
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
