"""Text and JSON reporters.

Both renderers are pure functions of the :class:`LintReport`, with no
timestamps, absolute paths, or machine state, so two runs over the same
tree -- serial or parallel -- render byte-identical output.
"""

from __future__ import annotations

import json

from repro.lint.registry import all_rules
from repro.lint.runner import LintReport

REPORT_VERSION = 1


def render_text(report: LintReport) -> str:
    lines = []
    for finding in report.new_findings:
        lines.append(finding.render())
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    summary = (
        f"{len(report.new_findings)} finding(s) in {report.files} file(s)"
        f" ({len(report.baselined)} baselined, {report.suppressed} suppressed)"
    )
    lines.append(summary)
    return "\n".join(lines) + "\n"


def render_json(report: LintReport) -> str:
    payload = {
        "version": REPORT_VERSION,
        "files": report.files,
        "findings": [f.to_dict() for f in report.new_findings],
        "baselined": [f.to_dict() for f in report.baselined],
        "suppressed": report.suppressed,
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_rules() -> str:
    """``--list-rules``: one line per rule, grouped by id order."""
    lines = []
    for rule in all_rules():
        scope = rule.scope or "all"
        lines.append(f"{rule.id}  [{rule.family}/{scope}]  {rule.name}")
        lines.append(f"        {rule.rationale}")
    return "\n".join(lines) + "\n"
