"""Text, JSON and SARIF reporters.

All renderers are pure functions of the :class:`LintReport`, with no
timestamps, absolute paths, or machine state, so two runs over the same
tree -- serial or parallel -- render byte-identical output.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.context import scope_components
from repro.lint.findings import Finding
from repro.lint.registry import rules_by_family
from repro.lint.runner import LintReport

REPORT_VERSION = 1

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

TOOL_NAME = "repro-lint"


def render_text(report: LintReport) -> str:
    lines = []
    for finding in report.new_findings:
        lines.append(finding.render())
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    summary = (
        f"{len(report.new_findings)} finding(s) in {report.files} file(s)"
        f" ({len(report.baselined)} baselined, {report.suppressed} suppressed)"
    )
    lines.append(summary)
    return "\n".join(lines) + "\n"


def render_json(report: LintReport) -> str:
    payload = {
        "version": REPORT_VERSION,
        "files": report.files,
        "findings": [f.to_dict() for f in report.new_findings],
        "baselined": [f.to_dict() for f in report.baselined],
        "suppressed": report.suppressed,
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _sarif_level(severity: str) -> str:
    return {"error": "error", "warning": "warning"}.get(severity, "note")


def _sarif_result(finding: Finding, baselined: bool) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.rule,
        "level": _sarif_level(finding.severity),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                }
            }
        ],
        "partialFingerprints": {"reproLint/v1": finding.fingerprint},
    }
    if baselined:
        result["suppressions"] = [{"kind": "external"}]
    return result


def render_sarif(report: LintReport) -> str:
    """Minimal SARIF 2.1.0: one run, every rule described, baselined
    findings carried as externally suppressed results."""
    rules = []
    grouped = rules_by_family()
    for family in sorted(grouped):
        for rule in sorted(grouped[family], key=lambda r: r.id):
            rules.append(
                {
                    "id": rule.id,
                    "name": rule.name,
                    "shortDescription": {"text": rule.name},
                    "fullDescription": {"text": rule.rationale},
                    "defaultConfiguration": {
                        "level": _sarif_level(rule.severity)
                    },
                }
            )
    results = [_sarif_result(f, baselined=False) for f in report.new_findings]
    results += [_sarif_result(f, baselined=True) for f in report.baselined]
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": "docs/LINT.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _scope_label(rule) -> str:
    """Human-readable path scope for one rule line."""
    if getattr(rule, "whole_program", False):
        return "whole-program"
    if rule.scope is None:
        return "all paths"
    components = ", ".join(scope_components(rule.scope))
    return f"{rule.scope} paths ({components})"


def render_rules() -> str:
    """``--list-rules``: rules grouped by family, with path scopes."""
    lines: List[str] = []
    grouped = rules_by_family()
    for family in sorted(grouped):
        lines.append(f"{family}:")
        for rule in sorted(grouped[family], key=lambda r: r.id):
            lines.append(
                f"  {rule.id}  [{_scope_label(rule)}]  {rule.name}"
            )
            lines.append(f"        {rule.rationale}")
        lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"
