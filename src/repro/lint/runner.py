"""File collection and the serial / multiprocess lint drivers.

Determinism is self-hosted: files are collected in sorted order,
per-file findings are sorted before fingerprinting, and the parallel
driver preserves submission order (``imap`` over sorted files), so a
``--jobs 8`` run produces byte-identical output to a serial one -- the
property the acceptance benchmark asserts.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from multiprocessing import Pool
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.lint.baseline import Baseline, fingerprint_findings
from repro.lint.context import ModuleContext
from repro.lint.findings import PARSE_ERROR_RULE, Finding
from repro.lint.graph.engine import lint_project
from repro.lint.registry import all_rules

#: Directories never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv"})


def collect_files(paths: Sequence[Path], root: Path) -> List[Tuple[Path, str]]:
    """``(file, display_path)`` pairs, sorted by display path.

    Directories are walked recursively; display paths are root-relative
    posix paths so reports and baselines are machine-independent.
    """
    collected = {}
    for target in paths:
        target = Path(target)
        if target.is_dir():
            candidates: Iterable[Path] = sorted(target.rglob("*.py"))
        else:
            candidates = [target]
        for candidate in candidates:
            if _SKIP_DIRS.intersection(candidate.parts):
                continue
            display = Path(os.path.relpath(candidate, root)).as_posix()
            collected[display] = candidate
    return [(collected[display], display) for display in sorted(collected)]


@dataclass
class FileResult:
    """Outcome of linting one file (picklable for the pool)."""

    display: str
    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0


def lint_file(path: Path, display: str) -> FileResult:
    """Run every applicable rule over one file."""
    try:
        ctx = ModuleContext.from_file(path, display)
    except SyntaxError as exc:
        finding = Finding(
            rule=PARSE_ERROR_RULE,
            path=display,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            message=f"file does not parse: {exc.msg}",
        )
        return FileResult(display, fingerprint_findings([finding]))
    raw: List[Finding] = []
    suppressed = 0
    for rule in all_rules():
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if ctx.is_suppressed(finding.rule, finding.line):
                suppressed += 1
            else:
                raw.append(finding)
    raw.sort(key=Finding.sort_key)
    return FileResult(display, fingerprint_findings(raw), suppressed)


def _lint_one(item: Tuple[str, str]) -> FileResult:
    path, display = item
    return lint_file(Path(path), display)


@dataclass
class LintReport:
    """Aggregated outcome of one lint run."""

    files: int = 0
    new_findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: int = 0

    @property
    def all_findings(self) -> List[Finding]:
        return sorted(self.new_findings + self.baselined, key=Finding.sort_key)

    @property
    def exit_code(self) -> int:
        return 1 if self.new_findings else 0


def run_lint(
    paths: Sequence[Path],
    root: Path,
    baseline: Optional[Baseline] = None,
    jobs: int = 1,
    whole_program: bool = True,
) -> LintReport:
    """Lint ``paths`` and split findings against ``baseline``.

    ``jobs > 1`` fans files out over a process pool; results keep file
    submission order, so output is byte-identical to ``jobs == 1``.
    The whole-program pass always runs serially in the parent process
    after the per-module pass (the project graph is one shared
    structure), so its findings are identical under any ``jobs``.
    """
    baseline = baseline or Baseline.empty()
    files = collect_files(paths, root)
    if jobs > 1 and len(files) > 1:
        items = [(str(path), display) for path, display in files]
        with Pool(processes=min(jobs, len(items))) as pool:
            results = list(pool.imap(_lint_one, items, chunksize=4))
    else:
        results = [lint_file(path, display) for path, display in files]

    project_findings: dict = {}
    project_suppressed = 0
    if whole_program and files:
        project_findings, project_suppressed = lint_project(files)

    report = LintReport(files=len(results))
    report.suppressed += project_suppressed
    for result in results:
        report.suppressed += result.suppressed
        merged = result.findings + project_findings.pop(result.display, [])
        merged.sort(key=Finding.sort_key)
        for finding in merged:
            if finding.fingerprint in baseline:
                report.baselined.append(finding)
            else:
                report.new_findings.append(finding)
    # Defensive: whole-program findings for files the per-module pass
    # produced no result for (cannot happen today -- same collection).
    for display in sorted(project_findings):
        for finding in project_findings[display]:
            if finding.fingerprint in baseline:
                report.baselined.append(finding)
            else:
                report.new_findings.append(finding)
    return report


def parse_source(source: str, display: str = "<string>") -> ModuleContext:
    """Context for an in-memory snippet (test fixtures, tooling)."""
    return ModuleContext(display, source, ast.parse(source))
