"""repro.lint: an AST-based invariant linter for the reproduction.

The reproduction's conclusions rest on invariants no unit test checks
directly: seed determinism (checkpoint/resume is only byte-identical if
nothing reads the wall clock or global RNG state, and no hash order
leaks into outputs), fault discipline (hook points raise the typed
taxonomy from :mod:`repro.faults.types`), and event-protocol
correctness (simulators emit input through the pipeline, mousemove
before mousedown, clock-sourced timestamps).  This package checks those
invariants statically: a pluggable rule registry walks every module's
AST and reports typed findings, with inline suppressions, a committed
JSON baseline for grandfathered findings, and serial/parallel drivers
whose output is byte-identical.

Usage::

    python -m repro.lint [paths] [--format json] [--jobs 8]
    repro-lint --list-rules
"""

from repro.lint.baseline import Baseline, fingerprint_findings
from repro.lint.context import ModuleContext, path_scopes, scope_components
from repro.lint.findings import PARSE_ERROR_RULE, Finding
from repro.lint.graph import ProjectContext, build_project, lint_project
from repro.lint.registry import (
    ProjectRule,
    Rule,
    all_project_rules,
    all_rules,
    register,
    rules_by_family,
)
from repro.lint.report import (
    render_json,
    render_rules,
    render_sarif,
    render_text,
)
from repro.lint.runner import (
    FileResult,
    LintReport,
    collect_files,
    lint_file,
    parse_source,
    run_lint,
)

__all__ = [
    "Baseline",
    "FileResult",
    "Finding",
    "LintReport",
    "ModuleContext",
    "PARSE_ERROR_RULE",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "all_project_rules",
    "all_rules",
    "build_project",
    "collect_files",
    "fingerprint_findings",
    "lint_file",
    "lint_project",
    "parse_source",
    "path_scopes",
    "register",
    "render_json",
    "render_rules",
    "render_sarif",
    "render_text",
    "rules_by_family",
    "run_lint",
    "scope_components",
]
