"""Typed findings: what a rule reports and how findings are ordered.

A :class:`Finding` is deliberately flat and picklable so the
multiprocess driver can ship findings back from worker processes, and
deliberately *positionless* in identity terms: the committed baseline
matches findings by rule + path + source-line text + occurrence index
(see :mod:`repro.lint.baseline`), so unrelated edits that shift line
numbers do not invalidate grandfathered entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: The stripped source line the finding points at (baseline identity,
    #: and context for the text reporter).
    snippet: str = ""
    severity: str = "error"
    #: Baseline fingerprint; filled in by the runner after fingerprinting.
    fingerprint: str = field(default="", compare=False)

    def sort_key(self) -> Tuple[str, int, int, str]:
        """Deterministic report order: by location, then rule id."""
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        """``path:line:col: RULE message`` -- the text reporter line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


#: Rule id for files the parser rejects; reported like any other finding
#: so a syntax error cannot silently shrink the linted surface.
PARSE_ERROR_RULE = "LNT001"
