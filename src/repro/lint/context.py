"""Per-module analysis context shared by every rule.

One :class:`ModuleContext` is built per linted file: the parsed AST, a
parent map (``ast`` has no parent links), an import-alias table so rules
can resolve ``np.random.seed`` to ``numpy.random.seed`` no matter how
the module spelled its imports, inline suppressions, and the scope tags
derived from the file's path (fault-discipline rules only apply to the
webdriver/crawl/faults layers, event-protocol rules to the simulator
packages that must go through the input pipeline).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path, PurePosixPath
from typing import Dict, Iterator, Optional, Set

#: ``# repro-lint: disable=DET001,FLT002`` (or ``disable=all``) on the
#: offending line suppresses the listed rules for that line.
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")

#: Path components -> scope tag.  Matching any component is enough, so
#: fixture trees in tests (``tmpdir/webdriver/snippet.py``) land in the
#: same scope as the real package.
_SCOPE_COMPONENTS: Dict[str, str] = {
    "webdriver": "faults",
    "crawl": "faults",
    "faults": "faults",
    "humans": "events",
    "core": "events",
    "tools": "events",
    "obs": "obs",
    "bus": "bus",
    "watchdogs": "bus",
}


def path_scopes(path: str) -> Set[str]:
    """Scope tags for a (posix) path, from its directory components."""
    parts = PurePosixPath(path).parts
    return {
        _SCOPE_COMPONENTS[part] for part in parts if part in _SCOPE_COMPONENTS
    }


def scope_components(scope: str) -> list:
    """Path components that carry ``scope``, sorted (for --list-rules)."""
    return sorted(
        component
        for component, tag in _SCOPE_COMPONENTS.items()
        if tag == scope
    )


class ModuleContext:
    """Everything a rule needs to analyse one module."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.scopes = path_scopes(path)
        self.suppressions = self._parse_suppressions()
        self.aliases = self._collect_aliases()
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    @classmethod
    def from_file(cls, path: Path, display_path: str) -> "ModuleContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(display_path, source, tree)

    # -- suppressions ----------------------------------------------------

    def _parse_suppressions(self) -> Dict[int, Set[str]]:
        suppressions: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                rules = {
                    token.strip()
                    for token in match.group(1).split(",")
                    if token.strip()
                }
                suppressions[lineno] = rules
        return suppressions

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is disabled on ``line`` by an inline comment."""
        rules = self.suppressions.get(line)
        if not rules:
            return False
        return rule_id in rules or "all" in rules

    # -- source access ---------------------------------------------------

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    # -- structure -------------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.AST]:
        """Nearest enclosing function/async-function definition."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    # -- import-alias resolution ----------------------------------------

    def _collect_aliases(self) -> Dict[str, str]:
        aliases: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    aliases[bound] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:  # relative import: keep the tail only
                    continue
                for alias in node.names:
                    bound = alias.asname or alias.name
                    aliases[bound] = f"{node.module}.{alias.name}"
        return aliases

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain to its imported dotted path.

        ``np.random.seed`` with ``import numpy as np`` resolves to
        ``numpy.random.seed``; ``Random`` with ``from random import
        Random`` resolves to ``random.Random``.  Returns ``None`` for
        expressions that are not plain attribute chains.
        """
        parts = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.aliases.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))
