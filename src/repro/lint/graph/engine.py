"""The whole-program lint driver.

Runs every registered :class:`~repro.lint.registry.ProjectRule` over a
freshly built :class:`~repro.lint.graph.project.ProjectContext` and
returns findings grouped by display path, already suppression-filtered,
sorted and fingerprinted -- ready for the runner to merge into the
per-module :class:`~repro.lint.runner.FileResult` stream.

The pass always runs serially in the parent process (the graph is one
shared structure), which makes serial and ``--jobs N`` output trivially
byte-identical for the whole-program families.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.baseline import fingerprint_findings
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.graph.project import ProjectContext, module_name_for
from repro.lint.registry import all_project_rules


def build_project(files: Sequence[Tuple[Path, str]]) -> ProjectContext:
    """Parse ``(path, display)`` pairs into a project context.

    Files that fail to parse are skipped here -- the per-module pass
    already reports them as LNT001.
    """
    contexts: Dict[str, ModuleContext] = {}
    for path, display in files:
        try:
            ctx = ModuleContext.from_file(Path(path), display)
        except SyntaxError:
            continue
        contexts[module_name_for(display)] = ctx
    return ProjectContext(contexts)


def lint_project(
    files: Sequence[Tuple[Path, str]]
) -> Tuple[Dict[str, List[Finding]], int]:
    """(display -> fingerprinted findings, suppressed count)."""
    project = build_project(files)
    by_display: Dict[str, List[Finding]] = {}
    suppressed = 0
    for rule in all_project_rules():
        for finding in rule.check_project(project):
            ctx = project.context_for(finding.path)
            if ctx is not None and ctx.is_suppressed(
                finding.rule, finding.line
            ):
                suppressed += 1
            else:
                by_display.setdefault(finding.path, []).append(finding)
    out: Dict[str, List[Finding]] = {}
    for display in sorted(by_display):
        ordered = sorted(by_display[display], key=Finding.sort_key)
        out[display] = fingerprint_findings(ordered)
    return out, suppressed
