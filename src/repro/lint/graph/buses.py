"""Whole-program inventory of the event-bus contract.

Collects, across every linted module:

* **event classes** -- classes whose (project-resolved) base chain
  reaches a class named ``BusEvent``, with ``Resolvable`` descent
  tracked separately;
* **subscriptions** -- ``*.subscribe(EventType, handler)`` call sites,
  with the handler resolved to a project function/method (or kept as a
  lambda node);
* **publishes** -- ``*.publish(EventType(...))`` and
  ``resolve_or_none(bus, EventType(...))`` call sites.

The BUS rules read this inventory: BUS001 wants every concrete event
class covered by at least one subscription (MRO matching, like the real
:class:`~repro.bus.bus.EventBus`), BUS002 wants every published
``Resolvable`` to have a handler that actually calls ``.resolve(...)``
on its event parameter, BUS003 polices payload mutation inside handlers.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lint.context import ModuleContext
from repro.lint.graph.symbols import ClassInfo, FunctionInfo, SymbolTable

#: Root class names anchoring the event hierarchy.  Matching by terminal
#: name keeps fixture trees (which often import an unresolvable
#: ``repro.bus.events.BusEvent``) classifiable.
EVENT_ROOT = "BusEvent"
RESOLVABLE_ROOT = "Resolvable"

#: Handler-side event fields a command handler legitimately writes.
SANCTIONED_EVENT_FIELDS = frozenset({"handled", "result"})


@dataclass
class EventClassInfo:
    info: ClassInfo
    resolvable: bool


@dataclass
class Subscription:
    """One ``subscribe(EventType, handler)`` call site."""

    event: str  # event class qualname
    handler: Optional[FunctionInfo]
    handler_lambda: Optional[ast.Lambda]
    path: str
    node: ast.Call


@dataclass
class Publish:
    """One publish/resolve_or_none call site constructing an event."""

    event: str
    path: str
    node: ast.Call
    via: str  # "publish" | "resolve_or_none"


class BusInventory:
    def __init__(
        self, symbols: SymbolTable, contexts: Dict[str, ModuleContext]
    ) -> None:
        self.symbols = symbols
        self.events: Dict[str, EventClassInfo] = {}
        self.subscriptions: List[Subscription] = []
        self.publishes: List[Publish] = []
        self._classify_events()
        for module in sorted(contexts):
            self._scan_module(module, contexts[module])

    # -- event classification -------------------------------------------

    def _classify_events(self) -> None:
        memo: Dict[str, Tuple[bool, bool]] = {}
        for qualname in sorted(self.symbols.classes):
            is_event, resolvable = self._classify(qualname, memo)
            if is_event:
                self.events[qualname] = EventClassInfo(
                    self.symbols.classes[qualname], resolvable
                )

    def _classify(
        self, qualname: str, memo: Dict[str, Tuple[bool, bool]]
    ) -> Tuple[bool, bool]:
        """(descends from BusEvent, descends from Resolvable)."""
        if qualname in memo:
            return memo[qualname]
        memo[qualname] = (False, False)  # cycle guard
        info = self.symbols.classes[qualname]
        is_event = resolvable = False
        for dotted in info.base_names:
            last = dotted.rsplit(".", 1)[-1]
            if last == EVENT_ROOT:
                is_event = True
            if last == RESOLVABLE_ROOT:
                is_event = resolvable = True
            base = self.symbols.resolve_class(dotted, scope=info.module)
            if base is not None:
                sub_event, sub_resolvable = self._classify(base.qualname, memo)
                is_event = is_event or sub_event
                resolvable = resolvable or sub_resolvable
        memo[qualname] = (is_event, resolvable)
        return memo[qualname]

    def is_anchor(self, qualname: str) -> bool:
        """Whether this class *is* one of the hierarchy roots."""
        info = self.symbols.classes.get(qualname)
        return info is not None and info.name in (EVENT_ROOT, RESOLVABLE_ROOT)

    def concrete_events(self) -> List[str]:
        """Event classes with no project subclasses (leaves), sorted."""
        return sorted(
            qualname
            for qualname in self.events
            if not self.is_anchor(qualname)
            and not self.symbols.subclasses(qualname)
        )

    # -- site collection -------------------------------------------------

    def _scan_module(self, module: str, ctx: ModuleContext) -> None:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "subscribe":
                self._collect_subscription(module, ctx, node)
                continue
            if isinstance(func, ast.Attribute) and func.attr == "publish":
                self._collect_publish(module, ctx, node, via="publish")
                continue
            dotted = ctx.dotted_name(func)
            if dotted is not None and dotted.rsplit(".", 1)[-1] == (
                "resolve_or_none"
            ):
                self._collect_publish(module, ctx, node, via="resolve_or_none")

    def _event_class(
        self, module: str, ctx: ModuleContext, node: ast.AST
    ) -> Optional[str]:
        dotted = ctx.dotted_name(node)
        if dotted is None:
            return None
        info = self.symbols.resolve_class(dotted, scope=module)
        if info is not None and info.qualname in self.events:
            return info.qualname
        return None

    def _collect_subscription(
        self, module: str, ctx: ModuleContext, node: ast.Call
    ) -> None:
        if len(node.args) < 2:
            return
        event = self._event_class(module, ctx, node.args[0])
        if event is None:
            return
        handler_node = node.args[1]
        handler: Optional[FunctionInfo] = None
        handler_lambda: Optional[ast.Lambda] = None
        if isinstance(handler_node, ast.Lambda):
            handler_lambda = handler_node
        elif (
            isinstance(handler_node, ast.Attribute)
            and isinstance(handler_node.value, ast.Name)
            and handler_node.value.id in ("self", "cls")
        ):
            cls = self._enclosing_class(module, ctx, node)
            if cls is not None:
                handler = self.symbols.method_in_hierarchy(
                    cls, handler_node.attr
                )
        else:
            dotted = ctx.dotted_name(handler_node)
            if dotted is not None:
                resolved = self.symbols.resolve(dotted, scope=module)
                if resolved is not None and resolved[0] == "function":
                    handler = resolved[1]  # type: ignore[assignment]
        self.subscriptions.append(
            Subscription(
                event=event,
                handler=handler,
                handler_lambda=handler_lambda,
                path=ctx.path,
                node=node,
            )
        )

    def _enclosing_class(
        self, module: str, ctx: ModuleContext, node: ast.AST
    ) -> Optional[str]:
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return f"{module}.{ancestor.name}"
        return None

    def _collect_publish(
        self, module: str, ctx: ModuleContext, node: ast.Call, via: str
    ) -> None:
        for arg in node.args:
            if not isinstance(arg, ast.Call):
                continue
            event = self._event_class(module, ctx, arg.func)
            if event is not None:
                self.publishes.append(
                    Publish(event=event, path=ctx.path, node=node, via=via)
                )

    # -- coverage queries ------------------------------------------------

    def _matches(self, subscribed: str, event: str) -> bool:
        """MRO-style match: a subscription to a base covers the event."""
        if subscribed == event:
            return True
        return any(
            ancestor.qualname == subscribed
            for ancestor in self.symbols.ancestors(event)
        )

    def subscriptions_for(self, event: str) -> List[Subscription]:
        return [
            sub
            for sub in self.subscriptions
            if self._matches(sub.event, event)
        ]

    def handler_resolves(self, sub: Subscription) -> bool:
        """Whether the subscription's handler calls ``.resolve(`` on its
        event parameter (or, for an unresolvable handler, conservatively
        assume it might)."""
        node, param = self.handler_body(sub)
        if node is None:
            return sub.handler is None and sub.handler_lambda is None
        if param is None:
            return False
        for inner in ast.walk(node):
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr == "resolve"
                and isinstance(inner.func.value, ast.Name)
                and inner.func.value.id == param
            ):
                return True
        return False

    def handler_body(
        self, sub: Subscription
    ) -> Tuple[Optional[ast.AST], Optional[str]]:
        """(handler AST, name of its event parameter)."""
        if sub.handler_lambda is not None:
            args = sub.handler_lambda.args.args
            return sub.handler_lambda, args[0].arg if args else None
        if sub.handler is not None:
            node = sub.handler.node
            args = getattr(node, "args", None)
            if args is None:
                return node, None
            positional = list(args.posonlyargs) + list(args.args)
            skip = 1 if sub.handler.cls is not None else 0
            if len(positional) > skip:
                return node, positional[skip].arg
            return node, None
        return None, None
