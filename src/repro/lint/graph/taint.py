"""Interprocedural determinism taint over the call graph.

A function is *directly* tainted when its body contains a call the
per-module DET rules would flag -- the detectors are imported from
:mod:`repro.lint.rules.determinism` so the two layers share one
definition of "nondeterminism source".  Taint then propagates backwards
along call edges: any function that calls a tainted function is itself
tainted, transitively.  Each tainted function remembers the ultimate
source and the next hop towards it, so findings can print the full
witness chain (``a() -> b() -> time.time()``).

Three independent taint kinds mirror the DET families:

* ``wall-clock`` -- ``time.time`` et al., ``datetime.now`` et al.
* ``global-rng`` -- global ``random`` state, argless ``Random()``,
  ``SystemRandom``, numpy's legacy global ``RandomState``.
* ``fs-order`` -- unsorted filesystem enumeration (``sorted(...)``
  wrapping exempts a call, exactly as DET006 does).
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.lint.context import ModuleContext
from repro.lint.graph.callgraph import CallGraph

TAINT_KINDS = ("wall-clock", "global-rng", "fs-order")


def _detectors() -> Dict[
    str, Callable[[ModuleContext, ast.Call], Optional[str]]
]:
    # Imported lazily: the rules package imports this module (xdet), so
    # a top-level import of rules.determinism would be circular.
    from repro.lint.rules.determinism import (
        fs_order_source,
        global_rng_source,
        wall_clock_source,
    )

    return {
        "wall-clock": wall_clock_source,
        "global-rng": global_rng_source,
        "fs-order": fs_order_source,
    }


@dataclass(frozen=True)
class TaintInfo:
    """Why a function is tainted: the source and the path towards it."""

    source: str  # e.g. "time.time"
    source_path: str
    source_line: int
    #: The callee one hop closer to the source; ``None`` when this
    #: function contains the source call itself.
    next_hop: Optional[str]


def compute_taint(
    graph: CallGraph, contexts: Dict[str, ModuleContext], kind: str
) -> Dict[str, TaintInfo]:
    """qualname -> :class:`TaintInfo` for every function tainted by ``kind``."""
    detector = _detectors()[kind]
    direct: Dict[str, TaintInfo] = {}
    for owner in sorted(graph.raw_calls):
        ctx = _context_of(contexts, owner)
        if ctx is None:
            continue
        for call in graph.raw_calls[owner]:
            source = detector(ctx, call)
            if source is not None and owner not in direct:
                direct[owner] = TaintInfo(
                    source=source,
                    source_path=ctx.path,
                    source_line=call.lineno,
                    next_hop=None,
                )
    tainted = dict(direct)
    frontier = deque(sorted(direct))
    while frontier:
        current = frontier.popleft()
        info = tainted[current]
        for site in graph.edges_to(current):
            if site.caller not in tainted:
                tainted[site.caller] = TaintInfo(
                    source=info.source,
                    source_path=info.source_path,
                    source_line=info.source_line,
                    next_hop=current,
                )
                frontier.append(site.caller)
    return tainted


def _context_of(
    contexts: Dict[str, ModuleContext], owner: str
) -> Optional[ModuleContext]:
    """The module context an owner qualname lives in."""
    parts = owner.split(".")
    for i in range(len(parts) - 1, 0, -1):
        module = ".".join(parts[:i])
        if module in contexts:
            return contexts[module]
    return None


def witness_chain(tainted: Dict[str, TaintInfo], qualname: str) -> str:
    """``a -> b -> time.time()`` rendered from the next-hop links."""
    hops: List[str] = [qualname]
    current = qualname
    seen = {qualname}
    while True:
        info = tainted[current]
        if info.next_hop is None or info.next_hop in seen:
            break
        current = info.next_hop
        seen.add(current)
        hops.append(current)
    short = [hop.rsplit(".", 1)[-1] if "." in hop else hop for hop in hops]
    return " -> ".join(short + [f"{tainted[qualname].source}()"])
