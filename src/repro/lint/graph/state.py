"""Module-level mutable state inventory for the shard-safety pass.

Process-pool sharding (the ROADMAP's parallel-crawl item) forks
workers that each get a *copy* of module globals: any code that mutates
one at runtime silently diverges between shards.  This pass inventories

* **mutable globals** -- module-level assignments whose value is a
  literal/constructor-known mutable (list/dict/set/bytearray, their
  comprehensions, ``collections.defaultdict`` and friends), and
* **mutation sites** -- in-function statements that mutate
  (``kind="mutate"``: mutator-method calls, subscript/augmented
  assignment, ``del``) or rebind (``kind="rebind"``: assignment under a
  ``global`` declaration) such a global, with local shadowing checked
  so ``registry = {}`` inside a function never counts.

Import-time mutation (decorator-driven registration running in the
module's ``<module>`` node) is exempt: it happens identically in every
worker before any visit runs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.context import ModuleContext
from repro.lint.graph.callgraph import MODULE_NODE
from repro.lint.graph.symbols import SymbolTable

#: In-place mutator method names on the builtin containers.
_MUTATORS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "sort",
        "reverse",
        "update",
    }
)

_MUTABLE_CONSTRUCTORS = frozenset(
    {
        "bytearray",
        "collections.Counter",
        "collections.OrderedDict",
        "collections.defaultdict",
        "collections.deque",
        "dict",
        "list",
        "set",
    }
)


@dataclass(frozen=True)
class MutationSite:
    """One statement mutating or rebinding a module-level name."""

    owner: str  # qualname of the enclosing function
    target_module: str
    target_name: str
    kind: str  # "mutate" | "rebind"
    path: str
    line: int
    col: int

    @property
    def target(self) -> str:
        return f"{self.target_module}.{self.target_name}"


def is_mutable_value(ctx: ModuleContext, node: ast.AST) -> bool:
    """Whether the assigned expression is a known-mutable container."""
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)
    ):
        return True
    if isinstance(node, ast.Call):
        return ctx.dotted_name(node.func) in _MUTABLE_CONSTRUCTORS
    return False


def mutable_globals(
    symbols: SymbolTable, contexts: Dict[str, ModuleContext]
) -> Dict[Tuple[str, str], ast.AST]:
    """(module, name) -> module-level assignment node, mutable values only."""
    out: Dict[Tuple[str, str], ast.AST] = {}
    for module in sorted(contexts):
        ctx = contexts[module]
        for name in symbols.module_globals(module):
            stmt = symbols.global_node(module, name)
            value = getattr(stmt, "value", None)
            if value is not None and is_mutable_value(ctx, value):
                out[(module, name)] = stmt
    return out


def _bound_names(target: ast.AST) -> Iterator[str]:
    """Names a binding target actually binds.

    ``x[0] = v`` and ``x.attr = v`` mutate ``x`` without binding it, so
    Subscript/Attribute bases are deliberately NOT yielded.
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _bound_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _bound_names(target.value)


def _local_bindings(fn: ast.AST) -> Set[str]:
    """Names bound inside the function body (params, assignments, loops),
    minus names explicitly declared ``global``."""
    bound: Set[str] = set()
    declared_global: Set[str] = set()
    args = getattr(fn, "args", None)
    if args is not None:
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            bound.add(arg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                bound.update(_bound_names(target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bound.update(_bound_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    bound.update(_bound_names(item.optional_vars))
        elif isinstance(node, ast.comprehension):
            bound.update(_bound_names(node.target))
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
    return bound - declared_global


def mutation_sites(
    symbols: SymbolTable,
    contexts: Dict[str, ModuleContext],
    globals_index: Dict[Tuple[str, str], ast.AST],
) -> List[MutationSite]:
    """Every in-function mutate/rebind of a module-level name, sorted."""
    sites: List[MutationSite] = []
    for qualname in sorted(symbols.functions):
        info = symbols.functions[qualname]
        ctx = contexts.get(info.module)
        if ctx is None:
            continue
        sites.extend(
            _function_sites(symbols, ctx, info.module, qualname, globals_index)
        )
    sites.sort(key=lambda s: (s.path, s.line, s.col, s.target))
    return sites


def _function_sites(
    symbols: SymbolTable,
    ctx: ModuleContext,
    module: str,
    qualname: str,
    globals_index: Dict[Tuple[str, str], ast.AST],
) -> Iterator[MutationSite]:
    fn = symbols.functions[qualname].node
    local = _local_bindings(fn)
    declared_global: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)

    def resolve_target(
        expr: ast.AST,
    ) -> Optional[Tuple[str, str]]:
        """The (module, name) mutable global this expression names."""
        if isinstance(expr, ast.Name):
            if expr.id in local:
                return None
            key = (module, expr.id)
            return key if key in globals_index else None
        dotted = ctx.dotted_name(expr)
        if dotted is None:
            return None
        resolved = symbols.resolve(dotted, scope=module)
        if resolved is not None and resolved[0] == "global":
            target_module, target_name, _ = resolved[1]
            key = (target_module, target_name)
            return key if key in globals_index else None
        return None

    def site(node: ast.AST, key: Tuple[str, str], kind: str) -> MutationSite:
        return MutationSite(
            owner=qualname,
            target_module=key[0],
            target_name=key[1],
            kind=kind,
            path=ctx.path,
            line=node.lineno,
            col=node.col_offset + 1,
        )

    for stmt in fn.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in _MUTATORS:
                    key = resolve_target(node.func.value)
                    if key is not None:
                        yield site(node, key, "mutate")
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        key = resolve_target(target.value)
                        if key is not None:
                            yield site(node, key, "mutate")
                    elif (
                        isinstance(target, ast.Name)
                        and target.id in declared_global
                    ):
                        yield site(node, (module, target.id), "rebind")
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        key = resolve_target(target.value)
                        if key is not None:
                            yield site(node, key, "mutate")


def module_node_of(qualname: str) -> bool:
    """Whether the qualname is a ``<module>`` pseudo-node."""
    return qualname.endswith(f".{MODULE_NODE}")
