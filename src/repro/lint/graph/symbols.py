"""The project symbol table: every module's defs, classes and imports.

Built once per whole-program pass from the already-parsed
:class:`~repro.lint.context.ModuleContext` objects, the table answers
the questions every graph pass shares: *what does this dotted name
refer to?* (following import aliases and ``__init__`` re-export chains),
*which class defines this method?* (class-local lookup plus
project-internal base classes and subclass overrides), and *which
module-level names exist?*.

Resolution is deliberately conservative: only project-internal symbols
resolve; anything external (numpy, stdlib) returns ``None`` and the
passes treat it as opaque.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.context import ModuleContext

#: Method names shared with the builtin containers: an attribute call on
#: an unresolvable receiver with one of these names is far more likely a
#: dict/list/set operation than a call to the one project class that
#: happens to define it, so unique-name attribution skips them (a
#: documented soundness caveat -- see docs/LINT.md).
UNIQUE_NAME_BLOCKLIST = frozenset(
    {
        "add",
        "append",
        "clear",
        "copy",
        "count",
        "decode",
        "discard",
        "encode",
        "extend",
        "format",
        "get",
        "index",
        "insert",
        "items",
        "join",
        "keys",
        "pop",
        "popitem",
        "read",
        "readline",
        "readlines",
        "remove",
        "reverse",
        "seek",
        "setdefault",
        "sort",
        "split",
        "strip",
        "update",
        "values",
        "write",
    }
)


@dataclass
class FunctionInfo:
    """One project function or method (a call-graph node)."""

    module: str
    qualname: str
    name: str
    node: ast.AST
    #: Qualified name of the defining class for methods, else ``None``.
    cls: Optional[str] = None


@dataclass
class ClassInfo:
    """One project class: bases (as resolved dotted names) and methods."""

    module: str
    name: str
    qualname: str
    node: ast.ClassDef
    base_names: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


class SymbolTable:
    """Project-wide name resolution over a set of parsed modules."""

    def __init__(self, modules: Dict[str, ModuleContext]) -> None:
        self.modules = modules
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: module -> local name -> (kind, payload).  Kinds: ``func`` /
        #: ``class`` (payload: qualified name), ``alias`` (payload:
        #: imported dotted target), ``global`` (payload: the module-level
        #: assignment node).
        self._names: Dict[str, Dict[str, Tuple[str, object]]] = {}
        self._method_classes: Dict[str, List[str]] = {}
        self._direct_subclasses: Dict[str, List[str]] = {}
        for module in sorted(modules):
            self._index_module(module, modules[module])
        self._link_hierarchy()

    # -- construction ----------------------------------------------------

    def _index_module(self, module: str, ctx: ModuleContext) -> None:
        names: Dict[str, Tuple[str, object]] = {}
        for bound, target in sorted(ctx.aliases.items()):
            names[bound] = ("alias", target)
        for bound, target in self._relative_aliases(module, ctx):
            names[bound] = ("alias", target)
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{module}.{stmt.name}"
                self.functions[qualname] = FunctionInfo(
                    module, qualname, stmt.name, stmt
                )
                names[stmt.name] = ("func", qualname)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(module, ctx, stmt, names)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        names[target.id] = ("global", stmt)
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                    names[stmt.target.id] = ("global", stmt)
        self._names[module] = names

    def _index_class(
        self,
        module: str,
        ctx: ModuleContext,
        stmt: ast.ClassDef,
        names: Dict[str, Tuple[str, object]],
    ) -> None:
        qualname = f"{module}.{stmt.name}"
        info = ClassInfo(module, stmt.name, qualname, stmt)
        for base in stmt.bases:
            dotted = ctx.dotted_name(base)
            if dotted is not None:
                info.base_names.append(dotted)
        for member in stmt.body:
            if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_qualname = f"{qualname}.{member.name}"
                method = FunctionInfo(
                    module, method_qualname, member.name, member, cls=qualname
                )
                info.methods[member.name] = method
                self.functions[method_qualname] = method
        self.classes[qualname] = info
        names[stmt.name] = ("class", qualname)

    @staticmethod
    def _relative_aliases(module: str, ctx: ModuleContext):
        """``from .base import X`` bindings (ModuleContext skips them)."""
        parts = module.split(".")
        is_package = ctx.path.endswith("__init__.py")
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.ImportFrom) and node.level):
                continue
            keep = len(parts) - node.level + (1 if is_package else 0)
            if keep < 0:
                continue
            base = parts[:keep]
            if node.module:
                base = base + node.module.split(".")
            prefix = ".".join(base)
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                target = f"{prefix}.{alias.name}" if prefix else alias.name
                yield bound, target

    def _link_hierarchy(self) -> None:
        for qualname in sorted(self.classes):
            info = self.classes[qualname]
            for method_name in info.methods:
                self._method_classes.setdefault(method_name, []).append(qualname)
            for dotted in info.base_names:
                base = self.resolve_class(dotted, scope=info.module)
                if base is not None:
                    self._direct_subclasses.setdefault(
                        base.qualname, []
                    ).append(qualname)

    # -- resolution ------------------------------------------------------

    def resolve(
        self,
        dotted: str,
        scope: Optional[str] = None,
        _seen: Optional[Set[Tuple[str, str]]] = None,
    ) -> Optional[Tuple[str, object]]:
        """Resolve a dotted name to a project symbol.

        ``scope`` is the module the name appeared in: bare local names
        (``helper``) resolve against it first.  Returns ``(kind,
        payload)`` -- ``("function", FunctionInfo)``, ``("class",
        ClassInfo)``, ``("module", name)``, ``("global", (module, name,
        node))`` -- or ``None`` for anything external.
        """
        if _seen is None:
            _seen = set()
        if scope is not None and scope in self.modules:
            local = self._resolve_in_module(
                scope, dotted.split("."), _seen
            )
            if local is not None:
                return local
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            prefix = ".".join(parts[:i])
            if prefix in self.modules:
                return self._resolve_in_module(prefix, parts[i:], _seen)
        return None

    def _resolve_in_module(
        self, module: str, rest: List[str], seen: Set[Tuple[str, str]]
    ) -> Optional[Tuple[str, object]]:
        if not rest:
            return ("module", module)
        name, tail = rest[0], rest[1:]
        key = (module, name)
        if key in seen:
            return None
        entry = self._names.get(module, {}).get(name)
        if entry is None:
            return None
        kind, payload = entry
        if kind == "alias":
            seen.add(key)
            target = ".".join([str(payload)] + tail)
            return self.resolve(target, _seen=seen)
        if kind == "func":
            return ("function", self.functions[str(payload)]) if not tail else None
        if kind == "global":
            return ("global", (module, name, payload)) if not tail else None
        if kind == "class":
            info = self.classes[str(payload)]
            if not tail:
                return ("class", info)
            if len(tail) == 1:
                method = self.method_in_hierarchy(info.qualname, tail[0])
                if method is not None:
                    return ("function", method)
            return None
        return None

    def resolve_class(
        self, dotted: str, scope: Optional[str] = None
    ) -> Optional[ClassInfo]:
        resolved = self.resolve(dotted, scope=scope)
        if resolved is not None and resolved[0] == "class":
            return resolved[1]  # type: ignore[return-value]
        return None

    # -- hierarchy -------------------------------------------------------

    def ancestors(self, qualname: str) -> List[ClassInfo]:
        """Project-internal ancestor classes, breadth-first, no dupes."""
        out: List[ClassInfo] = []
        visited = {qualname}
        frontier = [qualname]
        while frontier:
            next_frontier: List[str] = []
            for current in frontier:
                info = self.classes.get(current)
                if info is None:
                    continue
                for dotted in info.base_names:
                    base = self.resolve_class(dotted, scope=info.module)
                    if base is not None and base.qualname not in visited:
                        visited.add(base.qualname)
                        out.append(base)
                        next_frontier.append(base.qualname)
            frontier = next_frontier
        return out

    def subclasses(self, qualname: str) -> List[str]:
        """Transitive project subclasses, sorted."""
        out: Set[str] = set()
        frontier = [qualname]
        while frontier:
            current = frontier.pop()
            for sub in self._direct_subclasses.get(current, []):
                if sub not in out:
                    out.add(sub)
                    frontier.append(sub)
        return sorted(out)

    def method_in_hierarchy(
        self, qualname: str, method: str
    ) -> Optional[FunctionInfo]:
        """``method`` looked up class-locally, then through the bases."""
        info = self.classes.get(qualname)
        if info is not None and method in info.methods:
            return info.methods[method]
        for ancestor in self.ancestors(qualname):
            if method in ancestor.methods:
                return ancestor.methods[method]
        return None

    def override_methods(self, qualname: str, method: str) -> List[FunctionInfo]:
        """Subclass overrides of ``method`` (CHA over-approximation)."""
        out = []
        for sub in self.subclasses(qualname):
            info = self.classes[sub]
            if method in info.methods:
                out.append(info.methods[method])
        return out

    def unique_method(self, name: str) -> Optional[FunctionInfo]:
        """The single project method called ``name``, if unambiguous.

        Dunder names and builtin-container method names never resolve
        this way (see :data:`UNIQUE_NAME_BLOCKLIST`).
        """
        if name.startswith("__") or name in UNIQUE_NAME_BLOCKLIST:
            return None
        owners = self._method_classes.get(name, [])
        if len(owners) != 1:
            return None
        return self.classes[owners[0]].methods[name]

    def module_globals(self, module: str) -> List[str]:
        """Names bound by module-level assignment, sorted."""
        names = self._names.get(module, {})
        return sorted(
            name for name, (kind, _) in names.items() if kind == "global"
        )

    def global_node(self, module: str, name: str) -> Optional[ast.AST]:
        entry = self._names.get(module, {}).get(name)
        if entry is not None and entry[0] == "global":
            return entry[1]  # type: ignore[return-value]
        return None
