"""Conservative project-internal call graph.

Every call expression in every module is attributed to an *owner* --
the enclosing registered function/method, or the module's ``<module>``
pseudo-node for import-time code (decorators, default argument
expressions, class bodies, top-level statements).  Edges are added only
when the callee resolves to a project symbol; external calls never
create edges (but stay visible to the taint pass through
:attr:`CallGraph.raw_calls`).

Resolution mechanisms, in order:

``direct``
    ``helper()`` / ``mod.helper()`` / ``Cls.method(...)`` resolved
    through the symbol table (aliases and re-export chains included).
``init``
    ``Cls(...)`` resolves to ``Cls.__init__`` looked up through the
    hierarchy.
``self``
    ``self.m()`` / ``cls.m()`` resolved class-locally, then through
    project base classes, plus every subclass override (CHA
    over-approximation, so supervisor code calling an abstract hook
    reaches the concrete implementations).
``unique``
    ``expr.m()`` on an unresolvable receiver, when exactly one project
    class defines ``m`` (dunders and builtin-container method names
    excluded).

Node and edge ordering is deterministic: modules are visited sorted,
AST walks are positional, and the final edge list is sorted.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.context import ModuleContext
from repro.lint.graph.symbols import FunctionInfo, SymbolTable

MODULE_NODE = "<module>"


@dataclass(frozen=True)
class CallSite:
    """One resolved project-internal call edge."""

    caller: str
    callee: str
    path: str
    line: int
    col: int
    mechanism: str

    @property
    def sort_key(self) -> Tuple[str, str, int, int, str]:
        return (self.caller, self.path, self.line, self.col, self.callee)


class CallGraph:
    """Call edges plus the ownership map the other passes reuse."""

    def __init__(
        self, symbols: SymbolTable, contexts: Dict[str, ModuleContext]
    ) -> None:
        self.symbols = symbols
        self.contexts = contexts
        self.edges: List[CallSite] = []
        self.out_edges: Dict[str, List[CallSite]] = {}
        self.in_edges: Dict[str, List[CallSite]] = {}
        #: owner qualname -> every ``ast.Call`` in its region, in source
        #: order (resolved or not -- the taint pass scans these for
        #: external sources).
        self.raw_calls: Dict[str, List[ast.Call]] = {}
        #: module -> node -> owning qualname (nodes outside any
        #: registered function body are owned by ``module.<module>``).
        self.owners: Dict[str, Dict[ast.AST, str]] = {}
        for module in sorted(contexts):
            self._build_module(module, contexts[module])
        self.edges.sort(key=lambda site: site.sort_key)
        for site in self.edges:
            self.out_edges.setdefault(site.caller, []).append(site)
            self.in_edges.setdefault(site.callee, []).append(site)

    # -- construction ----------------------------------------------------

    def _build_module(self, module: str, ctx: ModuleContext) -> None:
        owners: Dict[ast.AST, str] = {}
        module_node = f"{module}.{MODULE_NODE}"
        for qualname in self._module_functions(module):
            info = self.symbols.functions[qualname]
            for stmt in info.node.body:
                for node in ast.walk(stmt):
                    owners[node] = qualname
        self.owners[module] = owners
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            owner = owners.get(node, module_node)
            self.raw_calls.setdefault(owner, []).append(node)
            owner_info = self.symbols.functions.get(owner)
            for callee, mechanism in self._resolve_call(
                ctx, module, owner_info, node
            ):
                self.edges.append(
                    CallSite(
                        caller=owner,
                        callee=callee,
                        path=ctx.path,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        mechanism=mechanism,
                    )
                )

    def _module_functions(self, module: str) -> List[str]:
        return sorted(
            qualname
            for qualname, info in self.symbols.functions.items()
            if info.module == module
        )

    def _resolve_call(
        self,
        ctx: ModuleContext,
        module: str,
        owner: Optional[FunctionInfo],
        node: ast.Call,
    ) -> Iterator[Tuple[str, str]]:
        func = node.func
        # self.m() / cls.m(): class-local + bases + subclass overrides.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and owner is not None
            and owner.cls is not None
        ):
            seen = set()
            target = self.symbols.method_in_hierarchy(owner.cls, func.attr)
            if target is not None:
                seen.add(target.qualname)
                yield target.qualname, "self"
            for override in self.symbols.override_methods(owner.cls, func.attr):
                if override.qualname not in seen:
                    seen.add(override.qualname)
                    yield override.qualname, "self"
            if seen:
                return
        dotted = ctx.dotted_name(func)
        if dotted is not None:
            resolved = self.symbols.resolve(dotted, scope=module)
            if resolved is not None:
                kind, payload = resolved
                if kind == "function":
                    yield payload.qualname, "direct"
                    return
                if kind == "class":
                    init = self.symbols.method_in_hierarchy(
                        payload.qualname, "__init__"
                    )
                    if init is not None:
                        yield init.qualname, "init"
                    return
                if kind in ("module", "global"):
                    return
        # Fallback: attribute call on an opaque receiver, unique name.
        if isinstance(func, ast.Attribute):
            target = self.symbols.unique_method(func.attr)
            if target is not None:
                yield target.qualname, "unique"

    # -- queries ---------------------------------------------------------

    def nodes(self) -> List[str]:
        """Every caller/callee qualname, sorted."""
        names = set(self.raw_calls)
        for site in self.edges:
            names.add(site.caller)
            names.add(site.callee)
        return sorted(names)

    def owner_of(self, module: str, node: ast.AST) -> str:
        return self.owners.get(module, {}).get(node, f"{module}.{MODULE_NODE}")

    def edges_from(self, qualname: str) -> List[CallSite]:
        return self.out_edges.get(qualname, [])

    def edges_to(self, qualname: str) -> List[CallSite]:
        return self.in_edges.get(qualname, [])
