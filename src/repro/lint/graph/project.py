"""The shared whole-program context handed to every project rule.

A :class:`ProjectContext` wraps the parsed modules of one lint run and
lazily builds (then caches) the expensive shared structures: symbol
table, call graph, bus inventory, entry-point roots, reachability and
per-kind taint maps.  Project rules read these caches, so adding a new
XDET/SHD/BUS rule costs one graph traversal, not a rebuild.
"""

from __future__ import annotations

from functools import cached_property
from pathlib import PurePosixPath
from typing import Dict, Iterable, Optional, Tuple

from repro.lint.context import ModuleContext
from repro.lint.graph.buses import BusInventory
from repro.lint.graph.callgraph import CallGraph
from repro.lint.graph.roots import entry_points, reachable
from repro.lint.graph.state import mutable_globals, mutation_sites
from repro.lint.graph.symbols import SymbolTable
from repro.lint.graph.taint import TaintInfo, compute_taint


def module_name_for(display: str) -> str:
    """Dotted module name derived from a display path.

    ``src/repro/crawl/visit.py`` -> ``repro.crawl.visit``;
    ``pkg/__init__.py`` -> ``pkg``.  Fixture trees rooted anywhere get
    consistent intra-tree names, which is all resolution needs.
    """
    parts = list(PurePosixPath(display).parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else "<root>"


class ProjectContext:
    """Cross-module view over one lint run's parsed modules."""

    def __init__(self, contexts: Dict[str, ModuleContext]) -> None:
        #: module name -> parsed context
        self.contexts = contexts
        self._by_path = {ctx.path: ctx for ctx in contexts.values()}
        self._taint: Dict[str, Dict[str, TaintInfo]] = {}
        self._reachable: Dict[
            Optional[Tuple[str, ...]], Dict[str, Tuple[str, str]]
        ] = {}

    def context_for(self, path: str) -> Optional[ModuleContext]:
        return self._by_path.get(path)

    @cached_property
    def symbols(self) -> SymbolTable:
        return SymbolTable(self.contexts)

    @cached_property
    def call_graph(self) -> CallGraph:
        return CallGraph(self.symbols, self.contexts)

    @cached_property
    def bus(self) -> BusInventory:
        return BusInventory(self.symbols, self.contexts)

    @cached_property
    def entry_points(self) -> Dict[str, str]:
        """Entry-point qualname -> root family."""
        return entry_points(self.symbols, self.bus)

    def taint(self, kind: str) -> Dict[str, TaintInfo]:
        if kind not in self._taint:
            self._taint[kind] = compute_taint(
                self.call_graph, self.contexts, kind
            )
        return self._taint[kind]

    def reachable(
        self, families: Optional[Iterable[str]] = None
    ) -> Dict[str, Tuple[str, str]]:
        """qualname -> (root, family); cached per family selection."""
        key = tuple(sorted(families)) if families is not None else None
        if key not in self._reachable:
            self._reachable[key] = reachable(
                self.call_graph, self.entry_points, families
            )
        return self._reachable[key]

    @cached_property
    def mutable_globals(self):
        return mutable_globals(self.symbols, self.contexts)

    @cached_property
    def mutation_sites(self):
        return mutation_sites(self.symbols, self.contexts, self.mutable_globals)
