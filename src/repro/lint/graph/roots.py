"""Entry-point roots and forward reachability over the call graph.

Three root *families* anchor the whole-program rules, mirroring the
artefacts whose byte-identity the project guarantees:

``visit``
    ``simulate_visit`` functions, ``crawl`` / ``crawl_shard`` methods of
    ``*Supervisor`` classes, the shard-executor entry points
    (``run_shard`` runs in pool workers, ``run_sharded_crawl`` drives
    them), and every bus-subscribed handler (watchdogs and browser
    command handlers run inside the visit dispatch path).
``checkpoint``
    ``state_dict`` / ``load_state`` / ``_write_checkpoint`` /
    ``_load_checkpoint`` -- anything feeding the resume contract.
``trace``
    ``write_trace`` / ``write_ledger`` / ``export_trace`` -- the
    observability exports diffed across runs.

Reachability is a forward BFS from the roots over the call graph; each
reached function remembers the root it was first reached from (roots
are seeded in deterministic family-then-name order, so the witness is
stable).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.lint.graph.buses import BusInventory
from repro.lint.graph.callgraph import CallGraph
from repro.lint.graph.symbols import SymbolTable

FAMILIES = ("visit", "checkpoint", "trace")

_VISIT_FUNCTIONS = frozenset(
    {"simulate_visit", "run_shard", "run_sharded_crawl"}
)
_VISIT_CLASS_SUFFIX = "Supervisor"
_VISIT_METHODS = frozenset({"crawl", "crawl_shard"})
_CHECKPOINT_FUNCTIONS = frozenset(
    {"state_dict", "load_state", "_write_checkpoint", "_load_checkpoint"}
)
_TRACE_FUNCTIONS = frozenset({"write_trace", "write_ledger", "export_trace"})


def entry_points(
    symbols: SymbolTable, bus: BusInventory
) -> Dict[str, str]:
    """qualname -> family for every entry-point root.

    A function matching several families keeps the highest-priority one
    (visit > checkpoint > trace).
    """
    roots: Dict[str, str] = {}

    def claim(qualname: str, family: str) -> None:
        current = roots.get(qualname)
        if current is None or FAMILIES.index(family) < FAMILIES.index(current):
            roots[qualname] = family

    for qualname in sorted(symbols.functions):
        info = symbols.functions[qualname]
        if info.name in _VISIT_FUNCTIONS:
            claim(qualname, "visit")
        if (
            info.cls is not None
            and info.cls.endswith(_VISIT_CLASS_SUFFIX)
            and info.name in _VISIT_METHODS
        ):
            claim(qualname, "visit")
        if info.name in _CHECKPOINT_FUNCTIONS:
            claim(qualname, "checkpoint")
        if info.name in _TRACE_FUNCTIONS:
            claim(qualname, "trace")
    for sub in bus.subscriptions:
        if sub.handler is not None:
            claim(sub.handler.qualname, "visit")
    return roots


def reachable(
    graph: CallGraph,
    roots: Dict[str, str],
    families: Optional[Iterable[str]] = None,
) -> Dict[str, Tuple[str, str]]:
    """qualname -> (root, family) for everything reachable from roots.

    Roots are reachable from themselves.  ``families`` restricts which
    root families seed the walk (default: all).
    """
    wanted = set(families) if families is not None else set(FAMILIES)
    seeds = sorted(
        (FAMILIES.index(family), qualname)
        for qualname, family in roots.items()
        if family in wanted
    )
    reached: Dict[str, Tuple[str, str]] = {}
    frontier = []
    for _, qualname in seeds:
        if qualname not in reached:
            reached[qualname] = (qualname, roots[qualname])
            frontier.append(qualname)
    while frontier:
        current = frontier.pop(0)
        witness = reached[current]
        for site in graph.edges_from(current):
            if site.callee not in reached:
                reached[site.callee] = witness
                frontier.append(site.callee)
    return reached
