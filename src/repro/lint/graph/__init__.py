"""Whole-program analysis: symbol table, call graph, taint, inventories.

This subpackage gives :class:`~repro.lint.registry.ProjectRule`
subclasses a cross-module view the per-module rules lack: a project
symbol table with import-alias and re-export resolution, a conservative
``repro.*``-internal call graph, interprocedural determinism taint,
entry-point reachability, the module-level mutable-state inventory, and
the event-bus contract inventory.  See docs/LINT.md ("Whole-program
analysis") for architecture and soundness caveats.
"""

from repro.lint.graph.buses import (
    SANCTIONED_EVENT_FIELDS,
    BusInventory,
    Publish,
    Subscription,
)
from repro.lint.graph.callgraph import MODULE_NODE, CallGraph, CallSite
from repro.lint.graph.engine import build_project, lint_project
from repro.lint.graph.project import ProjectContext, module_name_for
from repro.lint.graph.roots import FAMILIES, entry_points, reachable
from repro.lint.graph.state import MutationSite, mutable_globals, mutation_sites
from repro.lint.graph.symbols import ClassInfo, FunctionInfo, SymbolTable
from repro.lint.graph.taint import (
    TAINT_KINDS,
    TaintInfo,
    compute_taint,
    witness_chain,
)

__all__ = [
    "BusInventory",
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FAMILIES",
    "FunctionInfo",
    "MODULE_NODE",
    "MutationSite",
    "ProjectContext",
    "Publish",
    "SANCTIONED_EVENT_FIELDS",
    "Subscription",
    "SymbolTable",
    "TAINT_KINDS",
    "TaintInfo",
    "build_project",
    "compute_taint",
    "entry_points",
    "lint_project",
    "module_name_for",
    "mutable_globals",
    "mutation_sites",
    "reachable",
    "witness_chain",
]
