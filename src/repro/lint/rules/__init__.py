"""Rule modules; importing this package populates the registry."""

from repro.lint.rules import determinism, events, faults, obs, perf  # noqa: F401
