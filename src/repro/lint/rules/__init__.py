"""Rule modules; importing this package populates the registry."""

from repro.lint.rules import (  # noqa: F401
    bus_contract,
    determinism,
    events,
    faults,
    obs,
    perf,
    shard,
    xdet,
)
