"""BUS00x: whole-program event-bus contract rules.

The PR 5 event taxonomy only works if publishers and subscribers agree
across module boundaries -- exactly what no per-module rule can see.

* BUS001 -- a concrete event class (leaf of the ``BusEvent`` hierarchy)
  with no covering ``subscribe`` call anywhere in the linted tree is
  dead protocol: published occurrences vanish silently.
* BUS002 -- a ``Resolvable`` published (via ``publish`` or
  ``resolve_or_none``) where no covering handler ever calls
  ``event.resolve(...)``: the degradation ladder treats the hazard as
  unhandled every time.
* BUS003 -- a subscribed handler assigning event-payload attributes
  other than the sanctioned command-result fields (``handled``,
  ``result``): notifications must stay immutable facts.

Subscription coverage uses MRO-style matching, mirroring the real
:meth:`~repro.bus.bus.EventBus.subscribers` lookup.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.graph.buses import SANCTIONED_EVENT_FIELDS
from repro.lint.registry import ProjectRule, register


@register
class UnsubscribedEventRule(ProjectRule):
    id = "BUS001"
    name = "event-without-subscriber"
    family = "bus-contract"
    rationale = (
        "A concrete event class no handler subscribes to anywhere is "
        "dead protocol -- its publishes disappear silently; wire a "
        "subscriber or baseline fire-and-forget notifications with a "
        "justification."
    )

    def check_project(self, project) -> Iterator[Finding]:
        bus = project.bus
        for qualname in bus.concrete_events():
            if bus.subscriptions_for(qualname):
                continue
            info = bus.events[qualname].info
            ctx = project.contexts.get(info.module)
            if ctx is None:
                continue
            yield self.finding(
                ctx,
                info.node,
                f"event class {info.name} has no subscriber anywhere in "
                "the linted tree -- published occurrences are dropped "
                "silently",
            )


@register
class UnresolvedResolvableRule(ProjectRule):
    id = "BUS002"
    name = "resolvable-without-resolver"
    family = "bus-contract"
    rationale = (
        "Publishing a Resolvable that no covering handler ever "
        "resolves means the hazard is permanently unhandled and the "
        "degradation ladder always falls through."
    )

    def check_project(self, project) -> Iterator[Finding]:
        bus = project.bus
        for publish in bus.publishes:
            event = bus.events.get(publish.event)
            if event is None or not event.resolvable:
                continue
            subs = bus.subscriptions_for(publish.event)
            if any(bus.handler_resolves(sub) for sub in subs):
                continue
            ctx = project.context_for(publish.path)
            if ctx is None:
                continue
            name = event.info.name
            detail = (
                "no handler subscribes to it"
                if not subs
                else "no subscribed handler calls .resolve() on it"
            )
            yield self.finding(
                ctx,
                publish.node,
                f"Resolvable {name} is published but {detail} -- the "
                "hazard can never be resolved",
            )


@register
class HandlerMutatesPayloadRule(ProjectRule):
    id = "BUS003"
    name = "handler-mutates-event"
    family = "bus-contract"
    rationale = (
        "Handlers writing event fields other than the sanctioned "
        "command-result pair (handled, result) turn immutable "
        "notifications into hidden channels between subscribers."
    )

    def check_project(self, project) -> Iterator[Finding]:
        bus = project.bus
        seen = set()
        for sub in bus.subscriptions:
            node, param = bus.handler_body(sub)
            if node is None or param is None:
                continue
            handler_key = (
                sub.handler.qualname
                if sub.handler is not None
                else (sub.path, node.lineno)
            )
            if handler_key in seen:
                continue
            seen.add(handler_key)
            handler_path = (
                project.contexts[sub.handler.module].path
                if sub.handler is not None
                else sub.path
            )
            ctx = project.context_for(handler_path)
            if ctx is None:
                continue
            event_name = sub.event.rsplit(".", 1)[-1]
            for assign in ast.walk(node):
                if not isinstance(assign, (ast.Assign, ast.AugAssign)):
                    continue
                targets = (
                    assign.targets
                    if isinstance(assign, ast.Assign)
                    else [assign.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == param
                        and target.attr not in SANCTIONED_EVENT_FIELDS
                    ):
                        yield self.finding(
                            ctx,
                            assign,
                            f"handler for {event_name} writes event field "
                            f".{target.attr} -- only "
                            f"{sorted(SANCTIONED_EVENT_FIELDS)} may be set "
                            "on a dispatched event",
                        )
