"""EVT0xx: event-protocol rules (humans / core / tools scope).

The paper measures agents *through the DOM event stream* (Fig. 1-2,
Appendix C/D): detectors key on the pipeline quirks -- pointer/mouse
twins, mousemove preceding mousedown, clock-quantised timestamps.  Every
simulated agent must therefore produce input through
:class:`repro.browser.input_pipeline.InputPipeline`; a simulator that
dispatches DOM events directly, presses before moving, or hardcodes a
timestamp silently measures a protocol no real browser emits.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Tuple

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

_DISPATCH_METHODS = frozenset({"dispatch", "dispatch_event", "handle_event"})

#: Call names that imply pointer movement happened (directly or via a
#: helper that replays a path through the pipeline).
_MOVEMENT_NAME = re.compile(
    r"move|walk|path|hover|trajectory|approach", re.IGNORECASE
)
_MOVEMENT_EVENTS = frozenset({"mousemove", "pointermove"})
_PRESS_EVENTS = frozenset({"mousedown", "pointerdown"})


def _string_args(node: ast.Call) -> Iterator[str]:
    for arg in list(node.args) + [kw.value for kw in node.keywords]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            yield arg.value


def _func_label(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


@register
class DirectDispatchRule(Rule):
    id = "EVT001"
    name = "direct-dispatch"
    family = "events"
    scope = "events"
    rationale = (
        "dispatch_event() from simulator code bypasses the input "
        "pipeline, so the agent skips the coalescing, pointer-twin and "
        "focus semantics every real visitor exhibits -- the exact "
        "inconsistency detectors key on."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _DISPATCH_METHODS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f".{node.func.attr}() bypasses the input pipeline -- "
                    "synthesise input via InputPipeline (move_mouse_to / "
                    "mouse_down / key_down ...)",
                )


@register
class PressWithoutMoveRule(Rule):
    id = "EVT002"
    name = "press-without-move"
    family = "events"
    scope = "events"
    rationale = (
        "A mousedown with no preceding mousemove is the protocol "
        "violation the paper measures for Selenium (Fig. 1): real input "
        "always moves the pointer to the target first."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            calls: List[Tuple[int, int, ast.Call]] = sorted(
                (
                    (node.lineno, node.col_offset, node)
                    for node in ast.walk(func)
                    if isinstance(node, ast.Call)
                ),
                key=lambda item: (item[0], item[1]),
            )
            movement_seen = False
            for _, _, call in calls:
                if self._is_movement(call):
                    movement_seen = True
                elif self._is_press(call) and not movement_seen:
                    yield self.finding(
                        ctx,
                        call,
                        "mousedown emitted with no preceding mousemove in "
                        "this function -- move the pointer to the target "
                        "first (or factor the movement call above the press)",
                    )

    @staticmethod
    def _is_movement(call: ast.Call) -> bool:
        if _MOVEMENT_NAME.search(_func_label(call)):
            return True
        return any(value in _MOVEMENT_EVENTS for value in _string_args(call))

    @staticmethod
    def _is_press(call: ast.Call) -> bool:
        if _func_label(call) == "mouse_down":
            return True
        return any(value in _PRESS_EVENTS for value in _string_args(call))


@register
class HardcodedTimestampRule(Rule):
    id = "EVT003"
    name = "hardcoded-timestamp"
    family = "events"
    rationale = (
        "Event timestamps must come from the (quantising) clock; a "
        "literal timestamp breaks the inter-event timing distributions "
        "the Wilcoxon comparisons are computed over."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg == "timestamp" and self._is_literal_number(
                        kw.value
                    ):
                        yield self.finding(
                            ctx,
                            kw.value,
                            "hardcoded event timestamp -- take it from "
                            "clock.event_timestamp()",
                        )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "timestamp"
                        and self._is_literal_number(node.value)
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            "hardcoded event timestamp -- take it from "
                            "clock.event_timestamp()",
                        )

    @staticmethod
    def _is_literal_number(node: ast.AST) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            node = node.operand
        return (
            isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and not isinstance(node.value, bool)
        )
