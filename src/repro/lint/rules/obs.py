"""OBS0xx: observability-export invariants.

The obs layer's whole value rests on byte-stable exports: traces,
ledgers and reports are diffed (and CI-asserted) across runs, so any
JSON serialisation in ``src/repro/obs/`` that omits ``sort_keys=True``
silently reintroduces dict-order dependence -- the exact class of
nondeterminism the layer exists to rule out (OBS001).  A second
invariant is span-end discipline: a ``tracer.start(...)`` whose span
is not closed on *every* exit path leaves the tracer's LIFO stack
wedged -- every later ``end`` raises, and the exported trace carries a
phantom open span whose duration reads zero (OBS002).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

_JSON_WRITERS = frozenset({"json.dump", "json.dumps"})


def _sort_keys_is_true(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "sort_keys":
            return (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            )
        if keyword.arg is None:
            # **kwargs may carry sort_keys; give it the benefit of the
            # doubt rather than flag spuriously.
            return True
    return False


@register
class CanonicalJsonExportRule(Rule):
    id = "OBS001"
    name = "non-canonical-json-export"
    family = "obs"
    scope = "obs"
    rationale = (
        "Exports from the obs layer are compared byte-for-byte across "
        "runs; a json.dump(s) call without sort_keys=True makes the "
        "output depend on dict insertion order."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if ctx.dotted_name(node.func) not in _JSON_WRITERS:
                continue
            if not _sort_keys_is_true(node):
                yield self.finding(
                    ctx,
                    node,
                    "json serialisation in the obs layer must pass "
                    "sort_keys=True (and canonical separators for "
                    "machine-diffed output) to stay byte-stable",
                )


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_NESTED_SCOPE_NODES = _SCOPE_NODES + (ast.Lambda, ast.ClassDef)


def _shallow_walk(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested function/class scopes."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _NESTED_SCOPE_NODES):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_tracer_start(call: ast.Call, ctx: ModuleContext) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr != "start":
        return False
    receiver = ctx.dotted_name(func.value)
    return receiver is not None and "tracer" in receiver.lower()


def _finally_ended_names(scope: ast.AST) -> set:
    """Names ``X`` with an ``<obj>.end(X)`` call in a ``finally`` block."""
    ended = set()
    for node in _shallow_walk(scope):
        if not isinstance(node, ast.Try) or not node.finalbody:
            continue
        for stmt in node.finalbody:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "end"
                    and sub.args
                    and isinstance(sub.args[0], ast.Name)
                ):
                    ended.add(sub.args[0].id)
    return ended


@register
class SpanEndDisciplineRule(Rule):
    id = "OBS002"
    name = "span-not-ended-on-every-path"
    family = "obs"
    scope = "obs"
    rationale = (
        "A tracer.start(...) whose span is not ended on every exit path "
        "wedges the tracer's LIFO stack on the first exception: every "
        "later end() raises and the exported trace is truncated.  Spans "
        "must be closed in a finally block (or taken via the "
        "tracer.span(...) context manager, which does this for you)."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        scopes: list = [ctx.tree]
        scopes.extend(
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, _SCOPE_NODES)
        )
        for scope in scopes:
            yield from self._check_scope(ctx, scope)

    def _check_scope(
        self, ctx: ModuleContext, scope: ast.AST
    ) -> Iterator[Finding]:
        ended = _finally_ended_names(scope)
        # start() calls whose span is bound to a name that some finally
        # block ends are disciplined; every other start() call either
        # discards the span or leaves an exception path that skips end().
        disciplined: set = set()
        for node in _shallow_walk(scope):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id in ended
            ):
                disciplined.add(id(node.value))
                # `span = tracer.start(...) if cond else None` still
                # ends up ended in the guarded finally.
                if isinstance(node.value, ast.IfExp):
                    disciplined.add(id(node.value.body))
                    disciplined.add(id(node.value.orelse))
        for node in _shallow_walk(scope):
            if (
                isinstance(node, ast.Call)
                and _is_tracer_start(node, ctx)
                and id(node) not in disciplined
            ):
                yield self.finding(
                    ctx,
                    node,
                    "span from tracer.start() is not ended on every exit "
                    "path; bind it and call end() in a finally block, or "
                    "use the tracer.span() context manager",
                )
