"""OBS0xx: observability-export invariants.

The obs layer's whole value rests on byte-stable exports: traces,
ledgers and reports are diffed (and CI-asserted) across runs, so any
JSON serialisation in ``src/repro/obs/`` that omits ``sort_keys=True``
silently reintroduces dict-order dependence -- the exact class of
nondeterminism the layer exists to rule out.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

_JSON_WRITERS = frozenset({"json.dump", "json.dumps"})


def _sort_keys_is_true(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "sort_keys":
            return (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            )
        if keyword.arg is None:
            # **kwargs may carry sort_keys; give it the benefit of the
            # doubt rather than flag spuriously.
            return True
    return False


@register
class CanonicalJsonExportRule(Rule):
    id = "OBS001"
    name = "non-canonical-json-export"
    family = "obs"
    scope = "obs"
    rationale = (
        "Exports from the obs layer are compared byte-for-byte across "
        "runs; a json.dump(s) call without sort_keys=True makes the "
        "output depend on dict insertion order."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if ctx.dotted_name(node.func) not in _JSON_WRITERS:
                continue
            if not _sort_keys_is_true(node):
                yield self.finding(
                    ctx,
                    node,
                    "json serialisation in the obs layer must pass "
                    "sort_keys=True (and canonical separators for "
                    "machine-diffed output) to stay byte-stable",
                )
