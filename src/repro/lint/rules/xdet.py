"""XDET1xx: interprocedural determinism taint rules.

The per-module DET rules catch *direct* nondeterminism (a wall-clock
read in the checked function).  These whole-program rules catch the
laundered kind: a visit-, checkpoint- or trace-reachable function that
calls a helper which -- possibly several hops away -- reaches the same
source.  Findings anchor at the call edge (where reachable code invokes
the tainted function) and print the full witness chain, so the fix
site is obvious even when the source is three modules away.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.graph.taint import witness_chain
from repro.lint.registry import ProjectRule, register


class _TaintRule(ProjectRule):
    """Shared machinery; subclasses pick the taint kind and wording."""

    family = "xdet"
    kind = ""
    verb = ""
    remedy = ""

    def check_project(self, project) -> Iterator[Finding]:
        tainted = project.taint(self.kind)
        if not tainted:
            return
        reach = project.reachable()
        for site in project.call_graph.edges:
            if site.caller not in reach or site.callee not in tainted:
                continue
            root, family = reach[site.caller]
            ctx = project.context_for(site.path)
            if ctx is None:
                continue
            chain = witness_chain(tainted, site.callee)
            short_root = root.rsplit(".", 1)[-1]
            yield self._edge_finding(
                ctx,
                site,
                f"call to {site.callee}() transitively {self.verb} "
                f"[{chain}] and is reachable from {family} entry point "
                f"{short_root}() -- {self.remedy}",
            )

    def _edge_finding(self, ctx, site, message: str) -> Finding:
        node = ast.AST()
        node.lineno = site.line
        node.col_offset = site.col - 1
        return self.finding(ctx, node, message)


@register
class TaintedWallClockRule(_TaintRule):
    id = "XDET101"
    name = "reachable-wall-clock"
    kind = "wall-clock"
    verb = "reads the wall clock"
    remedy = "thread the VirtualClock through instead"
    rationale = (
        "A visit/checkpoint/trace path that transitively reads the wall "
        "clock breaks byte-identical resume even when no DET rule fires "
        "in the file itself; the clock must be threaded explicitly."
    )


@register
class TaintedGlobalRngRule(_TaintRule):
    id = "XDET102"
    name = "reachable-global-rng"
    kind = "global-rng"
    verb = "draws from global RNG state"
    remedy = "thread an explicitly seeded generator through instead"
    rationale = (
        "Global random state reached through helpers desynchronises "
        "shards and replays; every reachable draw must come from a "
        "seeded generator passed down the call chain."
    )


@register
class TaintedFsOrderRule(_TaintRule):
    id = "XDET103"
    name = "reachable-fs-order"
    kind = "fs-order"
    verb = "enumerates the filesystem in platform order"
    remedy = "sort the enumeration at the source"
    rationale = (
        "Unsorted directory listings reached from checkpoint/trace "
        "paths make artefacts differ across filesystems; the "
        "enumeration must be sorted where it happens."
    )
