"""SHD00x: shard-safety rules over module-level mutable state.

The ROADMAP's sharded-crawl item will fan visits out over a process
pool.  Workers fork with a *copy* of every module global: state mutated
at visit time diverges silently between shards and the deterministic
merge can never reconcile it.  These rules turn that into a
review-time error:

* SHD001 -- in-place mutation of a module-level mutable from a
  visit-reachable function (error);
* SHD002 -- rebinding a module global (``global x; x = ...``) from a
  visit-reachable function (error);
* SHD003 -- the inventory: module-level mutable state mutated only from
  functions *not* on the visit path (warning).  Serial-only by
  construction today, but every entry is a landmine for the sharding
  PR, so each one must be baselined with a justification.

Import-time mutation (registration decorators running in ``<module>``
code) is exempt everywhere: it replays identically in every worker.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.lint.findings import Finding
from repro.lint.registry import ProjectRule, register


class _ShardRule(ProjectRule):
    family = "shard"

    @staticmethod
    def _split_sites(project) -> Tuple[List, List]:
        """Mutation sites partitioned by visit-reachability of the owner."""
        reach = project.reachable(families=("visit",))
        hot, cold = [], []
        for site in project.mutation_sites:
            (hot if site.owner in reach else cold).append(site)
        return hot, cold

    def _site_finding(self, project, site, message: str) -> Finding:
        ctx = project.context_for(site.path)
        return Finding(
            rule=self.id,
            path=site.path,
            line=site.line,
            col=site.col,
            message=message,
            snippet=ctx.line_text(site.line) if ctx is not None else "",
            severity=self.severity,
        )


@register
class ShardMutationRule(_ShardRule):
    id = "SHD001"
    name = "visit-path-global-mutation"
    rationale = (
        "In-place mutation of a module-level container from a "
        "visit-reachable function diverges between pool workers; the "
        "state must live on a per-crawl object threaded through the "
        "call chain."
    )

    def check_project(self, project) -> Iterator[Finding]:
        hot, _ = self._split_sites(project)
        reach = project.reachable(families=("visit",))
        for site in hot:
            if site.kind != "mutate":
                continue
            root, _ = reach[site.owner]
            short_root = root.rsplit(".", 1)[-1]
            owner = site.owner.rsplit(".", 1)[-1]
            yield self._site_finding(
                project,
                site,
                f"{owner}() mutates module-level {site.target} and is "
                f"reachable from visit entry point {short_root}() -- "
                "shared mutable state breaks process-pool sharding; "
                "move it onto a per-crawl object",
            )


@register
class ShardRebindRule(_ShardRule):
    id = "SHD002"
    name = "visit-path-global-rebind"
    rationale = (
        "Rebinding a module global at visit time (global x; x = ...) is "
        "per-worker memoisation that desynchronises shards; pass the "
        "value explicitly or compute it at import time."
    )

    def check_project(self, project) -> Iterator[Finding]:
        hot, _ = self._split_sites(project)
        reach = project.reachable(families=("visit",))
        for site in hot:
            if site.kind != "rebind":
                continue
            root, _ = reach[site.owner]
            short_root = root.rsplit(".", 1)[-1]
            owner = site.owner.rsplit(".", 1)[-1]
            yield self._site_finding(
                project,
                site,
                f"{owner}() rebinds module global {site.target} and is "
                f"reachable from visit entry point {short_root}() -- "
                "per-worker rebinding desynchronises shards; pass the "
                "value explicitly",
            )


@register
class ShardInventoryRule(_ShardRule):
    id = "SHD003"
    name = "serial-only-global-state"
    severity = "warning"
    rationale = (
        "Module-level mutable state mutated outside the visit path is "
        "safe today but a landmine for the sharded-crawl item; keep the "
        "inventory empty or baseline each entry with a justification."
    )

    def check_project(self, project) -> Iterator[Finding]:
        _, cold = self._split_sites(project)
        grouped: Dict[Tuple[str, str], List] = {}
        for site in cold:
            grouped.setdefault((site.target_module, site.target_name), []).append(
                site
            )
        for (module, name) in sorted(grouped):
            sites = grouped[(module, name)]
            owners = sorted(
                {site.owner.rsplit(".", 1)[-1] for site in sites}
            )
            anchor = project.mutable_globals.get(
                (module, name)
            ) or project.symbols.global_node(module, name)
            ctx = project.contexts.get(module)
            verb = (
                "is rebound at runtime by"
                if all(site.kind == "rebind" for site in sites)
                else "is mutated at runtime by"
            )
            if anchor is not None and ctx is not None:
                yield self.finding(
                    ctx,
                    anchor,
                    f"module-level mutable {name} {verb} "
                    f"{', '.join(f'{o}()' for o in owners)} -- serial-only "
                    "state; baseline with a justification or hoist it "
                    "before the crawl is sharded",
                )
            else:
                yield self._site_finding(
                    project,
                    sites[0],
                    f"module global {module}.{name} is rebound by "
                    f"{', '.join(f'{o}()' for o in owners)} -- serial-only "
                    "state; baseline with a justification or hoist it "
                    "before the crawl is sharded",
                )
