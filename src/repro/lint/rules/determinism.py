"""DET0xx: seed-determinism rules.

The supervisor's checkpoint/resume contract (PR 1) is *byte-identical*
output: a resumed crawl must reproduce the uninterrupted run exactly.
That only holds if no code path reads the wall clock, draws from global
(unseeded) RNG state, or lets hash-order leak into anything returned or
serialised.  These rules make each of those a review-time error instead
of a flaky Wilcoxon statistic.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Wall-clock reads.  ``VirtualClock`` is the only sanctioned time source.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
    }
)

_DATETIME_NOW = frozenset(
    {
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Module-level functions of :mod:`random` that mutate/read the hidden
#: global Mersenne Twister.
_RANDOM_GLOBALS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: ``numpy.random`` module-level functions touching the legacy global
#: ``RandomState``.  ``default_rng`` / ``Generator`` / ``SeedSequence``
#: are the sanctioned, explicitly-seeded API and stay allowed.
_NP_RANDOM_GLOBALS = frozenset(
    {
        "beta",
        "binomial",
        "choice",
        "exponential",
        "get_state",
        "normal",
        "permutation",
        "poisson",
        "rand",
        "randint",
        "randn",
        "random",
        "random_sample",
        "seed",
        "set_state",
        "shuffle",
        "standard_normal",
        "uniform",
    }
)

#: Callables that consume an iterable order-insensitively (or erase
#: order), making set iteration under them harmless.
_ORDER_INSENSITIVE_SINKS = frozenset(
    {"all", "any", "frozenset", "len", "max", "min", "set", "sorted", "sum"}
)

_FS_ENUMERATORS = frozenset(
    {"glob.glob", "glob.iglob", "os.listdir", "os.scandir"}
)
_FS_ENUMERATOR_METHODS = frozenset({"glob", "iterdir", "rglob"})


def _call_name(ctx: ModuleContext, node: ast.Call) -> Optional[str]:
    return ctx.dotted_name(node.func)


# -- shared source detection ------------------------------------------------
#
# The interprocedural taint pass (repro.lint.graph.taint) seeds its
# analysis from the very same source definitions these per-module rules
# flag directly, so the two layers can never disagree about what counts
# as nondeterministic.


def wall_clock_source(ctx: ModuleContext, node: ast.Call) -> Optional[str]:
    """The wall-clock source this call reads, or ``None``."""
    name = _call_name(ctx, node)
    if name in _WALL_CLOCK or name in _DATETIME_NOW:
        return name
    return None


def global_rng_source(ctx: ModuleContext, node: ast.Call) -> Optional[str]:
    """The global-RNG source this call touches, or ``None``."""
    name = _call_name(ctx, node)
    if name is None:
        return None
    if name == "random.SystemRandom":
        return name
    if name == "random.Random" and not node.args:
        return name
    if (
        name.startswith("random.")
        and name.count(".") == 1
        and name.split(".", 1)[1] in _RANDOM_GLOBALS
    ):
        return name
    if name.startswith("numpy.random."):
        attr = name[len("numpy.random.") :]
        if attr in _NP_RANDOM_GLOBALS:
            return name
        if attr == "RandomState" and not node.args:
            return name
    return None


def fs_order_source(ctx: ModuleContext, node: ast.Call) -> Optional[str]:
    """The filesystem-enumeration source this call is, or ``None``.

    A call wrapped directly in ``sorted(...)`` is exempt -- its order is
    re-established before anything can observe it.
    """
    name = _call_name(ctx, node)
    method = node.func.attr if isinstance(node.func, ast.Attribute) else None
    if name not in _FS_ENUMERATORS and method not in _FS_ENUMERATOR_METHODS:
        return None
    parent = ctx.parent(node)
    if isinstance(parent, ast.Call) and ctx.dotted_name(parent.func) == "sorted":
        return None
    return name or f".{method}()"


@register
class WallClockRule(Rule):
    id = "DET001"
    name = "wall-clock-read"
    family = "determinism"
    rationale = (
        "Wall-clock reads differ between a fresh run and a resumed one, "
        "breaking byte-identical checkpoint/resume; use VirtualClock."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = _call_name(ctx, node)
                if name in _WALL_CLOCK:
                    yield self.finding(
                        ctx,
                        node,
                        f"wall-clock read {name}() -- use the simulated "
                        "clock (repro.clock.VirtualClock) instead",
                    )


@register
class DatetimeNowRule(Rule):
    id = "DET002"
    name = "datetime-now"
    family = "determinism"
    rationale = (
        "datetime.now()/today() smuggle wall-clock state into records "
        "and serialised artefacts; derive timestamps from the clock."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = _call_name(ctx, node)
                if name in _DATETIME_NOW:
                    yield self.finding(
                        ctx,
                        node,
                        f"{name}() reads the wall clock -- pass timestamps "
                        "in explicitly or use the simulated clock",
                    )


@register
class GlobalRandomRule(Rule):
    id = "DET003"
    name = "global-random"
    family = "determinism"
    rationale = (
        "The random module's global state (and argless Random()) is "
        "shared and unseeded; every component must draw from an "
        "explicitly seeded generator."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(ctx, node)
            if name is None:
                continue
            if name == "random.SystemRandom":
                yield self.finding(
                    ctx, node, "SystemRandom draws OS entropy and can never "
                    "be replayed -- use a seeded generator"
                )
            elif name == "random.Random" and not node.args:
                yield self.finding(
                    ctx, node, "argless random.Random() seeds from the OS -- "
                    "pass an explicit seed"
                )
            elif (
                name.startswith("random.")
                and name.count(".") == 1
                and name.split(".", 1)[1] in _RANDOM_GLOBALS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() uses the global random state -- draw from an "
                    "explicitly seeded random.Random or numpy Generator",
                )


@register
class NumpyGlobalRandomRule(Rule):
    id = "DET004"
    name = "numpy-global-random"
    family = "determinism"
    rationale = (
        "numpy.random module-level functions share the legacy global "
        "RandomState; use numpy.random.default_rng(seed) streams."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(ctx, node)
            if name is None or not name.startswith("numpy.random."):
                continue
            attr = name[len("numpy.random.") :]
            if attr in _NP_RANDOM_GLOBALS:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() touches numpy's global RandomState -- use "
                    "numpy.random.default_rng(seed)",
                )
            elif attr == "RandomState" and not node.args:
                yield self.finding(
                    ctx,
                    node,
                    "argless numpy.random.RandomState() seeds from the OS "
                    "-- pass an explicit seed",
                )


def _is_set_expr(ctx: ModuleContext, node: ast.AST) -> bool:
    """Whether ``node`` evaluates to a set/frozenset (hash-ordered)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return _call_name(ctx, node) in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(ctx, node.left) or _is_set_expr(ctx, node.right)
    return False


@register
class UnsortedSetIterationRule(Rule):
    id = "DET005"
    name = "unsorted-set-iteration"
    family = "determinism"
    rationale = (
        "Set iteration order follows PYTHONHASHSEED; once it reaches a "
        "returned list, a dict, or serialised output, two identical runs "
        "disagree.  Wrap the set in sorted() (or sink it into another "
        "set, where order is erased)."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and _is_set_expr(ctx, node.iter):
                yield self.finding(
                    ctx,
                    node.iter,
                    "iterating a set in a for loop -- order is hash-"
                    "dependent; wrap it in sorted()",
                )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    if _is_set_expr(ctx, gen.iter) and not self._order_erased(
                        ctx, node
                    ):
                        yield self.finding(
                            ctx,
                            gen.iter,
                            "comprehension iterates a set whose order "
                            "reaches an ordered result -- wrap the set in "
                            "sorted()",
                        )
            elif isinstance(node, ast.Call):
                name = _call_name(ctx, node)
                if (
                    name in ("list", "tuple")
                    and node.args
                    and _is_set_expr(ctx, node.args[0])
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"{name}(set(...)) freezes hash order into a "
                        "sequence -- use sorted(...)",
                    )

    @staticmethod
    def _order_erased(ctx: ModuleContext, comp: ast.AST) -> bool:
        """Whether the comprehension's order cannot be observed."""
        if isinstance(comp, ast.SetComp):
            return True
        if isinstance(comp, ast.DictComp):
            return False  # dicts preserve insertion order into JSON output
        parent = ctx.parent(comp)
        if isinstance(parent, ast.Call) and comp in parent.args:
            return ctx.dotted_name(parent.func) in _ORDER_INSENSITIVE_SINKS
        return False


@register
class FilesystemOrderRule(Rule):
    id = "DET006"
    name = "filesystem-order"
    family = "determinism"
    rationale = (
        "Directory enumeration order is filesystem-dependent; a crawl "
        "checkpoint written on ext4 must resume identically on tmpfs."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            label = fs_order_source(ctx, node)
            if label is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"{label} enumerates the filesystem in platform order "
                    "-- wrap it in sorted()",
                )
