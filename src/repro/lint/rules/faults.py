"""FLT0xx: fault-discipline rules (webdriver / crawl / faults scope).

PR 1's recovery machinery can only classify failures it can *type*: the
supervisor tells crawler-side faults from genuine site reactions by
catching :class:`repro.faults.types.FaultError` subclasses at the hook
points (``get`` / ``find_element`` / ``execute_script`` /
``simulate_visit``).  A ``raise RuntimeError`` or an ``except
Exception`` at those points collapses the taxonomy back into the
undifferentiated blob that biases Table 2 / Fig. 4, which is exactly
the confound Krumnow et al. document for OpenWPM.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: The fault hook points (see repro.faults.types._HOOKS plus the visit
#: driver itself).
HOOK_FUNCTIONS = frozenset(
    {"get", "find_element", "find_elements", "execute_script", "simulate_visit"}
)

#: Exception families a hook point may legitimately raise: the typed
#: fault taxonomy and the Selenium-style errors it derives from.
_ALLOWED_PREFIXES = ("repro.faults", "repro.webdriver.errors")

#: Generic exception types that erase failure classification when raised
#: at a hook point.  (ValueError/TypeError/NotImplementedError signal API
#: misuse, not crawl failure, and stay allowed.)
_UNTYPED_EXCEPTIONS = frozenset(
    {
        "BaseException",
        "ConnectionError",
        "ConnectionResetError",
        "Exception",
        "IOError",
        "OSError",
        "RuntimeError",
        "SystemError",
        "TimeoutError",
    }
)

#: A retry handler must advance a delay of some kind before looping.
_BACKOFF_HINT = re.compile(
    r"backoff|delay|sleep|advance|wait|cooldown", re.IGNORECASE
)

#: Bus subscriber handlers follow the ``on_<event>`` naming convention
#: (docs/EVENT_BUS.md); FLT004 keys on it.
_HANDLER_NAME = re.compile(r"^on_[a-z0-9_]+$")


def _is_broad_handler(ctx: ModuleContext, handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in types:
        if ctx.dotted_name(node) in ("Exception", "BaseException"):
            return True
    return False


@register
class BroadExceptRule(Rule):
    id = "FLT001"
    name = "broad-except"
    family = "faults"
    scope = "faults"
    rationale = (
        "except Exception at the recovery layers swallows the typed "
        "taxonomy: the supervisor can no longer split crawler-side "
        "faults from site reactions."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and _is_broad_handler(
                ctx, node
            ):
                label = (
                    "bare except:" if node.type is None else "except Exception"
                )
                yield self.finding(
                    ctx,
                    node,
                    f"{label} erases failure classification -- catch "
                    "repro.faults.types.FaultError (or a specific "
                    "webdriver error) instead",
                )


@register
class UntypedHookRaiseRule(Rule):
    id = "FLT002"
    name = "untyped-hook-raise"
    family = "faults"
    scope = "faults"
    rationale = (
        "Hook points must raise the typed taxonomy (repro.faults.types) "
        "or the Selenium-style errors it derives from, so retry and "
        "recycling policy can dispatch on the exception type."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if func.name not in HOOK_FUNCTIONS:
                continue
            for node in ast.walk(func):
                if not isinstance(node, ast.Raise):
                    continue
                if node.exc is None:
                    if self._inside_broad_handler(ctx, node):
                        yield self.finding(
                            ctx,
                            node,
                            "bare raise inside a broad handler re-throws an "
                            "unclassified exception from a hook point",
                        )
                    continue
                name = self._raised_name(ctx, node.exc)
                if name is None:
                    continue
                if name.startswith(_ALLOWED_PREFIXES):
                    continue
                if name in _UNTYPED_EXCEPTIONS:
                    yield self.finding(
                        ctx,
                        node,
                        f"hook point {func.name}() raises untyped {name} -- "
                        "raise an exception from repro.faults.types (or "
                        "repro.webdriver.errors)",
                    )

    @staticmethod
    def _raised_name(ctx: ModuleContext, exc: ast.AST) -> Optional[str]:
        if isinstance(exc, ast.Call):
            return ctx.dotted_name(exc.func)
        return ctx.dotted_name(exc)

    @staticmethod
    def _inside_broad_handler(ctx: ModuleContext, node: ast.AST) -> bool:
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.ExceptHandler):
                return _is_broad_handler(ctx, ancestor)
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
        return False


@register
class HandlerDisciplineRule(Rule):
    id = "FLT004"
    name = "handler-discipline"
    family = "faults"
    scope = "bus"
    rationale = (
        "The event bus deliberately never catches handler exceptions "
        "(docs/EVENT_BUS.md): a watchdog/bus subscriber that swallows "
        "an error with a broad except silently converts a crawler "
        "fault into a phantom recovery, and one that re-raises an "
        "untyped error strips the classification the publisher's "
        "except FaultError dispatches on.  Handlers either recover, "
        "leave the event unresolved, or let the typed error propagate."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _HANDLER_NAME.match(func.name):
                continue
            for node in ast.walk(func):
                if isinstance(node, ast.ExceptHandler):
                    if _is_broad_handler(ctx, node) and not self._reraises(
                        node
                    ):
                        label = (
                            "bare except:"
                            if node.type is None
                            else "except Exception"
                        )
                        yield self.finding(
                            ctx,
                            node,
                            f"subscriber handler {func.name}() swallows "
                            f"errors with {label} -- recover explicitly, "
                            "leave the event unresolved, or re-raise",
                        )
                elif isinstance(node, ast.Raise) and node.exc is not None:
                    name = self._raised_name(ctx, node.exc)
                    if name is None or name.startswith(_ALLOWED_PREFIXES):
                        continue
                    if name in _UNTYPED_EXCEPTIONS:
                        yield self.finding(
                            ctx,
                            node,
                            f"subscriber handler {func.name}() raises "
                            f"untyped {name} -- publishers dispatch on "
                            "the typed taxonomy (repro.faults.types)",
                        )

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(
            isinstance(node, ast.Raise) for node in ast.walk(handler)
        )

    @staticmethod
    def _raised_name(ctx: ModuleContext, exc: ast.AST) -> Optional[str]:
        if isinstance(exc, ast.Call):
            return ctx.dotted_name(exc.func)
        return ctx.dotted_name(exc)


@register
class RetryWithoutBackoffRule(Rule):
    id = "FLT003"
    name = "retry-without-backoff"
    family = "faults"
    scope = "faults"
    rationale = (
        "A retry loop that continues without advancing a backoff delay "
        "hammers the failing host and distorts the simulated timeline "
        "the step budgets are accounted on."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for stmt in ast.walk(loop):
                if not isinstance(stmt, ast.Try):
                    continue
                for handler in stmt.handlers:
                    if self._retries_without_backoff(handler):
                        yield self.finding(
                            ctx,
                            handler,
                            "retry handler continues the loop without any "
                            "backoff/delay call -- advance the clock via a "
                            "BackoffPolicy before retrying",
                        )

    @staticmethod
    def _retries_without_backoff(handler: ast.ExceptHandler) -> bool:
        has_continue = any(
            isinstance(node, ast.Continue) for node in ast.walk(handler)
        )
        if not has_continue:
            return False
        for node in ast.walk(handler):
            if isinstance(node, ast.Call):
                func = node.func
                name = (
                    func.attr
                    if isinstance(func, ast.Attribute)
                    else func.id
                    if isinstance(func, ast.Name)
                    else ""
                )
                if _BACKOFF_HINT.search(name):
                    return False
        return True
