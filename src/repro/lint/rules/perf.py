"""PERF0xx: determinism-adjacent performance rules.

One family member so far, born from a real bug: a ``set(...)`` built
inside a comprehension's ``if`` is rebuilt *per element*, turning a
linear filter into O(n^2) -- invisible at unit-test scale, dominant at
the million-site populations the roadmap targets.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

_CONTAINER_BUILDERS = frozenset({"dict", "frozenset", "set"})


def _builds_container(ctx: ModuleContext, node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp, ast.Dict, ast.DictComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and ctx.dotted_name(node.func) in _CONTAINER_BUILDERS
    )


@register
class ContainerInComprehensionConditionRule(Rule):
    id = "PERF001"
    name = "container-built-per-element"
    family = "perf"
    rationale = (
        "A set/dict constructed inside a comprehension condition is "
        "rebuilt for every element; hoist it to a variable before the "
        "comprehension."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                continue
            for gen in node.generators:
                for condition in gen.ifs:
                    for sub in ast.walk(condition):
                        if _builds_container(ctx, sub):
                            yield self.finding(
                                ctx,
                                sub,
                                "container built inside a comprehension "
                                "condition is reconstructed per element -- "
                                "hoist it out of the comprehension",
                            )
