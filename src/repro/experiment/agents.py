"""The experiment's subjects: Selenium, naive, HLISA, and the human.

Each agent implements the same three interaction verbs the tasks need --
click an element, type into an element, scroll by a distance -- through a
different mechanism:

- :class:`SeleniumAgent` uses the (simulated) Selenium ``ActionChains``:
  straight uniform moves, centre clicks, zero dwell, 13,333 cpm typing,
  single-shot programmatic scrolls;
- :class:`NaiveAgent` applies the paper's "naive solutions": plain Bézier
  movement at uniform speed, uniformly random click placement, fixed
  typing delays, metronome scrolling;
- :class:`HLISAAgent` goes through :class:`HLISA_ActionChains`;
- :class:`HumanAgent` is the generative human model, driving the input
  pipeline directly (a human needs no automation framework).
"""

from __future__ import annotations

from typing import Optional, Protocol

import numpy as np

from repro.core.hlisa_action_chains import HLISA_ActionChains
from repro.dom.element import Element
from repro.experiment.session import Session
from repro.geometry import Point
from repro.humans import (
    HumanClicking,
    HumanPointing,
    HumanProfile,
    HumanScrolling,
    HumanTyping,
)
from repro.humans.pointing import fitts_duration_ms
from repro.models.bezier import naive_bezier_path
from repro.models.clicks import uniform_click_point
from repro.webdriver.action_chains import ActionChains


class Agent(Protocol):
    """What a task needs from a subject."""

    name: str
    #: Whether this agent requires a WebDriver-controlled browser.
    automated: bool

    def click_element(self, session: Session, element: Element) -> None: ...

    def type_text(self, session: Session, element: Element, text: str) -> None: ...

    def scroll_by(self, session: Session, dy: float) -> None: ...


class SeleniumAgent:
    """Plain Selenium interaction (the paper's baseline)."""

    name = "selenium"
    automated = True

    def click_element(self, session: Session, element: Element) -> None:
        handle = session.web_element(element)
        ActionChains(session.driver).click(handle).perform()

    def type_text(self, session: Session, element: Element, text: str) -> None:
        handle = session.web_element(element)
        ActionChains(session.driver).send_keys_to_element(handle, text).perform()

    def scroll_by(self, session: Session, dy: float) -> None:
        # One programmatic scroll, arbitrary distance, no wheel events.
        window = session.window
        session.driver.execute_script(
            f"window.scrollTo(0, {window.scroll_y + dy})"
        )


class NaiveAgent:
    """The naive improvements the paper evaluates and rejects.

    Movement: plain Bézier at uniform speed (Fig. 1 C).  Clicks: uniform
    over the element (Fig. 2 bottom-left).  Typing: fixed inter-key delay.
    Scrolling: 57 px ticks at a fixed interval.
    """

    name = "naive"
    automated = True

    def __init__(self, seed: int = 23) -> None:
        self.rng = np.random.default_rng(seed)
        #: Fixed per-key delay (ms): humanly *possible*, but rhythmless.
        self.key_delay_ms = 100.0
        self.scroll_tick_interval_ms = 100.0

    def _walk(self, session: Session, path) -> None:
        if not path:
            return
        moves = []
        previous_t = 0.0
        for t, point in path:
            moves.append((max(t - previous_t, 0.0), point))
            previous_t = t
        session.pipeline.dispatch_batch(moves, repeat_final_forced=True)

    def click_element(self, session: Session, element: Element) -> None:
        target_page = uniform_click_point(element.box, self.rng)
        target = session.window.page_to_client(target_page)
        path = naive_bezier_path(session.pipeline.pointer, target, self.rng)
        self._walk(session, path)
        session.pipeline.mouse_down()
        session.clock.advance(80.0)  # fixed, rhythmless dwell
        session.pipeline.mouse_up()

    def type_text(self, session: Session, element: Element, text: str) -> None:
        from repro.humans.typing import needs_shift

        self.click_element(session, element)
        for char in text:
            shifted = needs_shift(char)
            if shifted:
                # Mechanically correct Shift synthesis (staying within
                # the humanly possible) -- but with the same fixed,
                # rhythmless timing as everything else.
                session.pipeline.key_down("Shift")
                session.clock.advance(self.key_delay_ms / 4.0)
            session.pipeline.key_down(char)
            session.clock.advance(self.key_delay_ms / 2.0)
            session.pipeline.key_up(char)
            if shifted:
                session.clock.advance(self.key_delay_ms / 4.0)
                session.pipeline.key_up("Shift")
                session.clock.advance(self.key_delay_ms / 4.0)
            else:
                session.clock.advance(self.key_delay_ms / 2.0)

    def scroll_by(self, session: Session, dy: float) -> None:
        direction = 1.0 if dy > 0 else -1.0
        remaining = abs(dy)
        while remaining > 0:
            session.pipeline.wheel(direction * 57.0)
            session.clock.advance(self.scroll_tick_interval_ms)
            remaining -= 57.0


class HLISAAgent:
    """HLISA-driven interaction (the paper's contribution)."""

    name = "hlisa"
    automated = True

    def __init__(self, seed: int = 31) -> None:
        self.seed = seed
        self._chain: Optional[HLISA_ActionChains] = None
        self._session: Optional[Session] = None

    def _chain_for(self, session: Session) -> HLISA_ActionChains:
        if self._session is not session:
            self._chain = HLISA_ActionChains(session.driver, seed=self.seed)
            self._session = session
        return self._chain

    def click_element(self, session: Session, element: Element) -> None:
        chain = self._chain_for(session)
        chain.click(session.web_element(element))
        chain.perform()

    def type_text(self, session: Session, element: Element, text: str) -> None:
        chain = self._chain_for(session)
        chain.send_keys_to_element(session.web_element(element), text)
        chain.perform()

    def scroll_by(self, session: Session, dy: float) -> None:
        chain = self._chain_for(session)
        chain.scroll_by(0, dy)
        chain.perform()


class HumanAgent:
    """The generative human model, acting directly on the browser."""

    name = "human"
    automated = False

    def __init__(self, profile: Optional[HumanProfile] = None) -> None:
        self.profile = profile or HumanProfile()
        rng = self.profile.rng()
        self.pointing = HumanPointing(self.profile, rng)
        self.clicking = HumanClicking(self.profile, rng)
        self.typing = HumanTyping(self.profile, rng)
        self.scrolling = HumanScrolling(self.profile, rng)

    def _walk(self, session: Session, path) -> None:
        if not path:
            return
        moves = []
        previous_t = 0.0
        for t, point in path:
            moves.append((max(t - previous_t, 0.0), point))
            previous_t = t
        session.pipeline.dispatch_batch(moves, repeat_final_forced=True)

    def click_element(self, session: Session, element: Element) -> None:
        window = session.window
        start = session.pipeline.pointer
        width = min(element.box.width, element.box.height)
        # Sample this trial's movement duration first so click accuracy
        # can be coupled to it (speed-accuracy trade-off).
        center_client = window.page_to_client(element.box.center)
        duration = self.pointing.duration_ms(start, center_client, width)
        typical = fitts_duration_ms(
            start.distance_to(center_client),
            width,
            self.profile.fitts_a_ms,
            self.profile.fitts_b_ms,
        )
        speed_factor = typical / duration if duration > 0 else 1.0
        target_page = self.clicking.click_point(
            element.box,
            approach_from=window.client_to_page(start),
            speed_factor=speed_factor,
        )
        target = window.page_to_client(target_page)
        path = self.pointing.path(start, target, target_width=width, duration_ms=duration)
        self._walk(session, path)
        session.pipeline.mouse_down()
        session.clock.advance(self.clicking.dwell_ms())
        session.pipeline.mouse_up()

    def type_text(self, session: Session, element: Element, text: str) -> None:
        self.click_element(session, element)
        session.clock.advance(180.0)  # settle before typing
        for dt_ms, kind, key in self.typing.plan(text):
            session.clock.advance(max(dt_ms, 0.0))
            if kind == "down":
                session.pipeline.key_down(key)
            else:
                session.pipeline.key_up(key)

    def scroll_by(self, session: Session, dy: float) -> None:
        for pause_ms, delta in self.scrolling.plan(dy):
            session.clock.advance(pause_ms)
            session.pipeline.wheel(delta)

    def scroll_by_scrollbar(self, session: Session, dy: float) -> None:
        """Scroll by dragging the scrollbar thumb (Appendix D origin).

        The thumb is browser chrome, so the page observes only the
        continuous ``scroll`` events -- no wheel, no mouse events.
        """
        window = session.window
        plan = self.scrolling.plan_scrollbar_drag(dy, window.scroll_y)
        for dt_ms, target_y in plan:
            session.clock.advance(dt_ms)
            window.scroll_to(window.scroll_x, target_y)


class InjectedEventsAgent:
    """The cheapest bot: script-dispatched synthetic events.

    Instead of synthesising OS input, it calls the DOM equivalent of
    ``element.dispatchEvent(new MouseEvent(...))`` -- zero movement, zero
    timing, and every event carries ``isTrusted == false``.  Sits *below*
    even Selenium on the arms-race ladder (Selenium's events are at least
    trusted); the level-1 battery destroys it.
    """

    name = "injected"
    automated = True

    def _dispatch(self, session: Session, element: Element, event_type: str, **kw) -> None:
        from repro.events.event import Event

        box = element.box
        center = box.center if box else None
        element.dispatch_event(
            Event(
                event_type,
                timestamp=session.clock.event_timestamp(),
                target=element,
                target_box=box,
                client_x=center.x if center else 0.0,
                client_y=center.y if center else 0.0,
                page_x=center.x if center else 0.0,
                page_y=center.y if center else 0.0,
                is_trusted=False,
                **kw,
            )
        )

    def click_element(self, session: Session, element: Element) -> None:
        self._dispatch(session, element, "mousedown", button=0)
        self._dispatch(session, element, "mouseup", button=0)
        self._dispatch(session, element, "click", button=0, detail=1)

    def type_text(self, session: Session, element: Element, text: str) -> None:
        session.document.set_focus(element)
        for char in text:
            self._dispatch(session, element, "keydown", key=char)
            self._dispatch(session, element, "keyup", key=char)
            element.value += char  # scripts set .value directly

    def scroll_by(self, session: Session, dy: float) -> None:
        session.window.scroll_by(0, dy)


#: Factories for the four standard subjects, keyed by name.
STANDARD_AGENTS = {
    "selenium": SeleniumAgent,
    "naive": NaiveAgent,
    "hlisa": HLISAAgent,
    "human": HumanAgent,
}
