"""Recording, serialising and replaying interaction sessions.

Two paper hooks:

- Related work: Serwadda & Phoha's statistical attack drives bots with
  *recorded human data* -- the strongest within-session simulator, since
  every distribution and coupling is genuinely human.
- Section 4.2 names the catch: simulators must include "noise instead of
  perfect replayability".  A replayed session is perfect -- and
  perfectly identical across visits, which is what
  :class:`repro.detection.replay.CrossSessionReplayDetector` exploits.

This module provides lossless serialisation of recordings (a portable
dataset format) and :class:`ReplayAgent`, which re-drives the input
pipeline from a recorded session.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.events.event import Event
from repro.events.recorder import EventRecorder

#: Event fields preserved by the dataset format.
_SERIALISED_FIELDS = (
    "type",
    "timestamp",
    "client_x",
    "client_y",
    "page_x",
    "page_y",
    "button",
    "buttons",
    "delta_x",
    "delta_y",
    "key",
    "code",
    "shift_key",
    "ctrl_key",
    "alt_key",
    "meta_key",
    "detail",
    "is_trusted",
)


def serialize_recording(recorder: EventRecorder) -> str:
    """Serialise a recording to a JSON dataset (target refs dropped)."""
    rows: List[Dict] = []
    for event in recorder.events:
        row = {field: getattr(event, field) for field in _SERIALISED_FIELDS}
        if event.target_box is not None:
            box = event.target_box
            row["target_box"] = [box.x, box.y, box.width, box.height]
        rows.append(row)
    return json.dumps({"format": "repro-recording-v1", "events": rows})


def deserialize_recording(payload: str) -> EventRecorder:
    """Load a dataset back into a (detached) recorder."""
    from repro.geometry import Box

    data = json.loads(payload)
    if data.get("format") != "repro-recording-v1":
        raise ValueError("not a repro recording dataset")
    recorder = EventRecorder()
    for row in data["events"]:
        box = row.pop("target_box", None)
        event = Event(**row)
        if box is not None:
            event.target_box = Box(*box)
        recorder.events.append(event)
    return recorder


class ReplayAgent:
    """Drives the input pipeline from a recorded session, verbatim.

    The statistical attack of the paper's related work: because the
    source was human, every timing distribution and motor coupling is
    human, so *within-session* interaction detectors pass it.  Its
    weakness is determinism -- every visit is identical.

    The replay re-issues OS-level input (moves, buttons, wheel, keys)
    with the original inter-event delays; derived events (click,
    dblclick, pointer twins) are re-synthesised by the pipeline.
    """

    name = "replay"
    automated = True

    #: Event types that are *inputs* (the rest are synthesised).
    _INPUT_TYPES = frozenset(
        {"mousemove", "mousedown", "mouseup", "wheel", "keydown", "keyup"}
    )

    def __init__(self, source: EventRecorder) -> None:
        self.source_events = [
            e for e in source.events if e.type in self._INPUT_TYPES
        ]
        if not self.source_events:
            raise ValueError("source recording contains no input events")

    def run(self, session) -> None:
        """Replay the whole recording into ``session``."""
        pipeline = session.pipeline
        clock = session.clock
        previous_t: Optional[float] = None
        for event in self.source_events:
            if previous_t is not None:
                clock.advance(max(event.timestamp - previous_t, 0.0))
            previous_t = event.timestamp
            if event.type == "mousemove":
                pipeline.move_mouse_to(event.client_x, event.client_y, force_event=True)
            elif event.type == "mousedown":
                pipeline.move_mouse_to(event.client_x, event.client_y, force_event=False)
                pipeline.mouse_down(event.button)
            elif event.type == "mouseup":
                pipeline.mouse_up(event.button)
            elif event.type == "wheel":
                pipeline.wheel(event.delta_y, event.delta_x)
            elif event.type == "keydown":
                pipeline.key_down(event.key)
            elif event.type == "keyup":
                pipeline.key_up(event.key)
