"""The recording tasks of Appendix E.

Each task builds a page, asks an agent to perform the interaction, and
returns the recording plus whatever ground truth the analysis needs
(target boxes for clicks, the typed text, the scroll distance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.dom.element import Element
from repro.events.recorder import EventRecorder
from repro.experiment.agents import Agent
from repro.experiment.session import Session
from repro.geometry import Box

#: 100-character sample with sentences, commas and capitals -- exercising
#: every contextual-pause category and the Shift model (Appendix E used
#: "a given text of 100 characters").
TYPING_SAMPLE_TEXT = (
    "The web, as seen by bots, differs. Humans type slowly, pause often, "
    "and press Shift for capitals."
)


@dataclass
class TaskResult:
    """Everything a task produced."""

    agent_name: str
    recorder: EventRecorder
    #: Target boxes, in click order (clicking tasks only).
    target_boxes: List[Box] = field(default_factory=list)
    #: The text the agent was asked to type (typing task only).
    text: str = ""
    #: Requested scroll distance (scroll task only).
    scroll_distance: float = 0.0


def _session_for(agent: Agent, page_height: float = 768.0) -> Session:
    return Session(automated=agent.automated, page_height=page_height)


class PointingTask:
    """Click two distant elements in a given order (Fig. 1's recording).

    "The site instructed the participant to click two distant elements in
    a specific order, so that the interaction starts and ends at similar
    positions."  Repeating the A->B->A cycle yields several long
    movements per run.
    """

    def __init__(self, repetitions: int = 3) -> None:
        self.repetitions = repetitions

    def run(self, agent: Agent) -> TaskResult:
        session = _session_for(agent)
        document = session.document
        left = document.create_element("button", Box(120, 380, 140, 48), id="target-a", text="A")
        right = document.create_element("button", Box(1100, 320, 140, 48), id="target-b", text="B")
        boxes: List[Box] = []
        for _ in range(self.repetitions):
            for element in (left, right):
                agent.click_element(session, element)
                boxes.append(element.box)
                session.clock.advance(300.0)
        return TaskResult(agent.name, session.recorder, target_boxes=boxes)


class MovingClickTask:
    """Click an element that relocates after every click (Fig. 2).

    "We created a moving element to collect data for various different
    angles.  The element relocates every time after it is clicked.  Our
    human participant repeated this task 100 times."
    """

    def __init__(self, clicks: int = 100, seed: int = 97, element_size: float = 90.0) -> None:
        self.clicks = clicks
        self.seed = seed
        self.element_size = element_size

    def run(self, agent: Agent) -> TaskResult:
        session = _session_for(agent)
        document = session.document
        rng = np.random.default_rng(self.seed)
        size = self.element_size
        target = document.create_element(
            "button", Box(600, 350, size, size), id="moving-target", text="click me"
        )
        boxes: List[Box] = []
        for _ in range(self.clicks):
            boxes.append(target.box)
            agent.click_element(session, target)
            session.clock.advance(150.0)
            # Relocate anywhere fully inside the viewport.
            target.box = Box(
                float(rng.uniform(10, session.window.viewport_width - size - 10)),
                float(rng.uniform(10, session.window.viewport_height - size - 10)),
                size,
                size,
            )
        return TaskResult(agent.name, session.recorder, target_boxes=boxes)


class ScrollTask:
    """Scroll a very tall page from top to bottom (Appendix E).

    "We created a page with a sufficient height (30K pixels).  The task
    was to scroll via the mouse wheel from top to bottom at a comfortable
    pace."  (Bot agents scroll however their API scrolls.)
    """

    def __init__(self, page_height: float = 30000.0) -> None:
        self.page_height = page_height

    def run(self, agent: Agent) -> TaskResult:
        session = _session_for(agent, page_height=self.page_height)
        distance = session.window.max_scroll_y
        agent.scroll_by(session, distance)
        return TaskResult(agent.name, session.recorder, scroll_distance=distance)


class BrowsingScenario:
    """A combined session exercising every interaction modality.

    Detector batteries (and profile enrolment) need one recording that
    contains clicks at varied distances, typing, and scrolling -- like a
    real page visit.  The scenario clicks a relocating element many
    times, types a text, then scrolls a long page.
    """

    def __init__(
        self,
        clicks: int = 45,
        text: Optional[str] = None,
        scroll_distance: float = 4000.0,
        seed: int = 1234,
    ) -> None:
        self.clicks = clicks
        self.text = text if text is not None else TYPING_SAMPLE_TEXT
        self.scroll_distance = scroll_distance
        self.seed = seed

    def run(self, agent: Agent) -> TaskResult:
        page_height = 768.0 + self.scroll_distance
        session = _session_for(agent, page_height=page_height)
        document = session.document
        rng = np.random.default_rng(self.seed)
        size_choices = (40.0, 70.0, 110.0, 160.0)
        target = document.create_element(
            "button", Box(640, 360, 110, 110), id="scenario-target", text="go"
        )
        boxes: List[Box] = []
        for _ in range(self.clicks):
            boxes.append(target.box)
            agent.click_element(session, target)
            session.clock.advance(float(rng.uniform(200, 700)))
            size = float(rng.choice(size_choices))
            target.box = Box(
                float(rng.uniform(10, session.window.viewport_width - size - 10)),
                float(rng.uniform(10, session.window.viewport_height - size - 10)),
                size,
                size,
            )
        area = document.create_element(
            "textarea", Box(420, 500, 520, 180), id="scenario-typing"
        )
        agent.type_text(session, area, self.text)
        session.clock.advance(400.0)
        agent.scroll_by(session, self.scroll_distance)
        return TaskResult(
            agent.name,
            session.recorder,
            target_boxes=boxes,
            text=self.text,
            scroll_distance=self.scroll_distance,
        )


class TypingTask:
    """Type a given text into a text area (Appendix E).

    "we took measurements on typing by letting the user type a given text
    of 100 characters", recording key press/release timestamps.
    """

    def __init__(self, text: Optional[str] = None) -> None:
        self.text = text if text is not None else TYPING_SAMPLE_TEXT

    def run(self, agent: Agent) -> TaskResult:
        session = _session_for(agent)
        area = session.document.create_element(
            "textarea", Box(420, 240, 520, 200), id="typing-area"
        )
        agent.type_text(session, area, self.text)
        return TaskResult(agent.name, session.recorder, text=self.text)
