"""One measurement session: browser + recorder (+ driver for bots)."""

from __future__ import annotations

from typing import Optional

from repro.browser.input_pipeline import (
    DEFAULT_DOUBLE_CLICK_INTERVAL_MS,
    InputPipeline,
)
from repro.browser.navigator import NavigatorProfile
from repro.browser.window import Window
from repro.dom.document import Document
from repro.dom.element import Element
from repro.events.recorder import EventRecorder
from repro.events.taxonomy import COVERING_SET_EVENTS
from repro.webdriver.driver import WebDriver
from repro.webdriver.webelement import WebElement


class Session:
    """A fresh browser with the recording "website" attached.

    Parameters
    ----------
    automated:
        ``True`` builds a WebDriver-controlled browser (``navigator.
        webdriver`` true, Selenium's 600 ms double-click environment) and
        exposes :attr:`driver`.  ``False`` models a human's browser: no
        driver, default environment, events produced directly through the
        input pipeline.
    fault_injector:
        Optional :class:`repro.faults.FaultInjector` wired into the
        driver's hook points, so experiment sessions can run under the
        same fault plans as supervised crawls (automated sessions only).
    tracer:
        Optional :class:`repro.obs.Tracer` wired into the driver, so
        experiment sessions produce the same ``webdriver.*`` /
        ``hlisa.perform`` spans as supervised crawls (automated
        sessions only).
    """

    def __init__(
        self,
        *,
        automated: bool,
        viewport_width: float = 1366.0,
        viewport_height: float = 768.0,
        page_height: float = 768.0,
        fault_injector=None,
        tracer=None,
    ) -> None:
        self.document = Document(viewport_width, max(page_height, viewport_height))
        profile = NavigatorProfile(webdriver=automated)
        self.window = Window(
            self.document,
            profile=profile,
            viewport_width=viewport_width,
            viewport_height=viewport_height,
        )
        self.automated = automated
        if automated:
            self.driver: Optional[WebDriver] = WebDriver(
                self.window, fault_injector=fault_injector, tracer=tracer
            )
            self.pipeline = self.driver.pipeline
        else:
            if fault_injector is not None:
                raise ValueError("fault injection requires an automated session")
            if tracer is not None:
                raise ValueError("tracing requires an automated session")
            self.driver = None
            self.pipeline = InputPipeline(
                self.window,
                double_click_interval_ms=DEFAULT_DOUBLE_CLICK_INTERVAL_MS,
            )
            # A human's cursor is wherever their hand left it -- not at
            # the viewport origin where automation parks (Appendix F).
            from repro.geometry import Point

            self.pipeline.pointer = Point(
                viewport_width * 0.47, viewport_height * 0.58
            )
        # Record everything interaction-related, like the Appendix E site.
        # Attached at the window (top of the propagation path) only, so
        # each event is recorded exactly once.  The pointer-event family
        # is recorded alongside the Appendix D covering set: detectors
        # use the mouse/pointer *pairing* as a trust signal.
        self.recorder = EventRecorder(
            COVERING_SET_EVENTS + ("pointermove", "pointerdown", "pointerup")
        ).attach(self.window)

    @property
    def clock(self):
        return self.window.clock

    def web_element(self, element: Element) -> WebElement:
        """Driver-side handle for a DOM element (bot agents only)."""
        if self.driver is None:
            raise RuntimeError("this session has no WebDriver (human session)")
        return WebElement(self.driver, element)
