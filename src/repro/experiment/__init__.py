"""The measurement harness of Appendices D and E.

The paper "built a website that uses JavaScript to record events" and had
each agent (Selenium, a human, naive improvements, HLISA) perform simple
tasks on it:

- :class:`~repro.experiment.tasks.PointingTask` -- click two distant
  elements in order (mouse-movement recording, Fig. 1);
- :class:`~repro.experiment.tasks.MovingClickTask` -- click an element
  that relocates after every click, 100 times (click distribution,
  Fig. 2);
- :class:`~repro.experiment.tasks.ScrollTask` -- scroll a 30,000 px page
  top to bottom;
- :class:`~repro.experiment.tasks.TypingTask` -- type a given 100-character
  text.

:mod:`repro.experiment.agents` provides the four subjects; each runs
against a fresh :class:`~repro.experiment.session.Session` whose recorder
plays the instrumented website.
"""

from repro.experiment.session import Session
from repro.experiment.agents import (
    Agent,
    SeleniumAgent,
    NaiveAgent,
    HLISAAgent,
    HumanAgent,
    STANDARD_AGENTS,
)
from repro.experiment.tasks import (
    PointingTask,
    MovingClickTask,
    ScrollTask,
    TypingTask,
    BrowsingScenario,
    TaskResult,
    TYPING_SAMPLE_TEXT,
)

__all__ = [
    "Session",
    "Agent",
    "SeleniumAgent",
    "NaiveAgent",
    "HLISAAgent",
    "HumanAgent",
    "STANDARD_AGENTS",
    "PointingTask",
    "MovingClickTask",
    "ScrollTask",
    "TypingTask",
    "BrowsingScenario",
    "TaskResult",
    "TYPING_SAMPLE_TEXT",
]
