"""Setup shim: lets ``pip install -e .`` work without the ``wheel``
package (this offline environment lacks it), via the legacy
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
