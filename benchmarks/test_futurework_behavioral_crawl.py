"""Future work made concrete: a crawl against behavioural detectors.

Section 5: "A practical evaluation would be desirable, but such
necessitates detectors."  With the arms-race batteries as the missing
detectors, the blocked-visit rate per interaction style quantifies the
paper's claim that "HLISA significantly raises the bar": Selenium is
blocked everywhere, the naive improvements fall at level-2 sites, HLISA
only at level-3 (consistency-tracking) sites.
"""

from conftest import print_table

from repro.crawl.behavioral import make_behavioral_population, run_behavioral_crawl
from repro.detection.base import DetectionLevel
from repro.experiment.agents import HLISAAgent, NaiveAgent, SeleniumAgent
from repro.armsrace.simulators import ConsistentSimulatorAgent


def run_study():
    agents = {
        "selenium": SeleniumAgent(),
        "naive": NaiveAgent(),
        "hlisa": HLISAAgent(),
        "consistent-sim": ConsistentSimulatorAgent(),
    }
    population = make_behavioral_population(sites_per_level=2)
    return run_behavioral_crawl(agents, population, visits_per_site=2)


def test_futurework_behavioral_crawl(benchmark):
    result = benchmark.pedantic(run_study, rounds=1, iterations=1)
    lines = result.format_table().splitlines()
    lines.append("")
    lines.append("cells = fraction of visits blocked by sites at that level")
    print_table("Future work: crawl vs behavioural detectors", lines)

    L1, L2, L3 = (
        DetectionLevel.ARTIFICIAL,
        DetectionLevel.DEVIATION,
        DetectionLevel.CONSISTENCY,
    )
    # Selenium: blocked everywhere.
    assert result.blocked_rate("selenium", L1) == 1.0
    assert result.blocked_rate("selenium", L3) == 1.0
    # Naive: survives level-1 sites, falls at level 2.
    assert result.blocked_rate("naive", L1) == 0.0
    assert result.blocked_rate("naive", L2) == 1.0
    # HLISA: survives levels 1-2, falls only to consistency tracking.
    assert result.blocked_rate("hlisa", L1) == 0.0
    assert result.blocked_rate("hlisa", L2) == 0.0
    assert result.blocked_rate("hlisa", L3) == 1.0
    # The consistency-complete simulator survives everything fielded.
    for level in (L1, L2, L3):
        assert result.blocked_rate("consistent-sim", level) == 0.0
